#!/usr/bin/env python
"""Deep-learning training I/O study (paper Sec. V-B).

Generates a sharded training dataset on the simulated parallel file
system, then trains for several epochs with shuffled mini-batches (the
DLIO-like workload).  The study shows the three effects the paper
highlights:

1. shuffled training reads are nearly fully random (DXT randomness ~1),
2. random small reads collapse disk throughput versus a sequential
   baseline of the same volume,
3. a client-side cache large enough to hold the dataset absorbs the
   re-reads from epoch 2 onward -- the node-local-staging remedy DL I/O
   papers propose.

Run:  python examples/deep_learning_io.py
"""

from repro.cluster import tiny_cluster
from repro.monitoring import DXTTracer, DarshanProfiler
from repro.pfs import build_pfs
from repro.simulate import run_workload
from repro.workloads import (
    DLIOConfig,
    DLIOWorkload,
    IORConfig,
    IORWorkload,
    OpStreamWorkload,
)

MiB = 1024 * 1024
KiB = 1024


def make_dlio(epochs: int) -> DLIOWorkload:
    return DLIOWorkload(
        DLIOConfig(
            n_samples=512,
            sample_bytes=128 * KiB,
            n_shards=4,
            batch_size=16,
            epochs=epochs,
            compute_per_batch=0.005,
            seed=7,
        ),
        n_ranks=4,
    )


def run_training(read_cache_bytes: int, epochs: int = 2):
    platform = tiny_cluster(seed=7)
    pfs = build_pfs(platform)
    dlio = make_dlio(epochs)
    gen = OpStreamWorkload(
        "dataset-gen", [list(dlio.generation_ops(r)) for r in range(4)]
    )
    run_workload(platform, pfs, gen)
    dxt = DXTTracer()
    profiler = DarshanProfiler(job_name="dlio")
    result = run_workload(
        platform, pfs, dlio, observers=[dxt, profiler],
        read_cache_bytes=read_cache_bytes,
    )
    return result, dxt, profiler.profile(n_ranks=4), dlio, pfs


def main() -> None:
    # --- training without any client cache ---------------------------------
    result, dxt, profile, dlio, pfs = run_training(read_cache_bytes=0)
    shard0 = dlio.shard_path(0)
    randomness = dxt.randomness(shard0, "read")
    seeks = pfs.aggregate_device_stats()
    print(f"training run : {dlio.describe()}")
    print(f"  epoch time : {result.duration:.2f}s, "
          f"read bw {result.read_bandwidth / 1e6:.1f} MB/s")
    print(f"  randomness of shard reads: {randomness:.2f} "
          f"(1.0 = fully random)")
    print(f"  device seek ratio: {seeks['seeks'] / max(1, seeks['ops']):.2f}")

    # --- sequential baseline of the same volume -----------------------------
    platform = tiny_cluster(seed=7)
    pfs2 = build_pfs(platform)
    volume = dlio.bytes_read_per_epoch * 2
    base = IORWorkload(
        IORConfig(block_size=volume // 4, transfer_size=4 * MiB,
                  write=True, read=True),
        n_ranks=4,
    )
    seq = run_workload(platform, pfs2, base)
    print(f"\nsequential baseline ({volume / MiB:.0f} MiB): "
          f"read bw {seq.bytes_read / seq.duration / 1e6:.1f} MB/s")
    slowdown = (seq.bytes_read / seq.duration) / (result.read_bandwidth or 1)
    print(f"  -> shuffled training reads are {slowdown:.1f}x slower")

    # --- a dataset-sized client cache fixes epoch 2+ ------------------------
    cached, _, _, _, _ = run_training(read_cache_bytes=256 * MiB)
    print(f"\nwith a dataset-sized client cache: {cached.duration:.2f}s "
          f"(vs {result.duration:.2f}s uncached, "
          f"{result.duration / cached.duration:.1f}x faster)")

    assert randomness > 0.8
    assert slowdown > 2.0
    assert cached.duration < result.duration
    print("\ndeep_learning_io OK")


if __name__ == "__main__":
    main()
