#!/usr/bin/env python
"""A scheduled day at the center: batch queue + shared storage.

Combines the batch scheduler (FCFS vs EASY backfill) with real workload
bodies running against one shared parallel file system.  Job runtimes are
therefore *I/O-dependent* -- a job slowed by storage contention occupies
its nodes longer and delays the queue, the coupling production centers
live with and simulation studies (Azevedo et al. [37]) model.

Run:  python examples/scheduled_center.py
"""

from repro.cluster import BatchScheduler, tiny_cluster
from repro.pfs import build_pfs
from repro.workloads.registry import make_preset


def run_day(policy: str):
    platform = tiny_cluster(seed=33)
    pfs = build_pfs(platform)
    env = platform.env
    sched = BatchScheduler(env, total_nodes=4, policy=policy)

    def body_for(preset, ranks):
        """Job body: launch the workload's ranks and wait for them.

        (``run_workload`` drives the event loop itself, which a job body
        must not do -- the scheduler owns the clock -- so the ranks are
        launched directly and awaited.)
        """
        setup, main = make_preset(preset, n_ranks=ranks)

        def body_gen():
            from repro.iostack.stack import IOStackBuilder
            from repro.mpi.runtime import MPIRuntime, round_robin_nodes

            for w in setup + [main]:
                nodes = round_robin_nodes(
                    [n.name for n in platform.compute_nodes], w.n_ranks
                )
                rt = MPIRuntime(env, platform.compute_fabric, nodes)
                builder = IOStackBuilder(pfs, rt)
                procs = rt.launch(w.program, io_factory=builder.io_factory)
                yield env.all_of(procs)

        return body_gen

    def mdtest_body(i):
        """Each mdtest job gets its own directory tree (no collisions)."""
        from repro.workloads import MdtestConfig, MdtestWorkload

        w = MdtestWorkload(
            MdtestConfig(files_per_rank=32, dir_prefix=f"/mdtest{i}"), 1
        )

        def body_gen():
            from repro.iostack.stack import IOStackBuilder
            from repro.mpi.runtime import MPIRuntime, round_robin_nodes

            nodes = round_robin_nodes([platform.compute_nodes[0].name], 1)
            rt = MPIRuntime(env, platform.compute_fabric, nodes)
            builder = IOStackBuilder(pfs, rt)
            procs = rt.launch(w.program, io_factory=builder.io_factory)
            yield env.all_of(procs)

        return body_gen

    # The morning's submissions, arriving over time.
    def submissions(env):
        sched.submit("checkpoint", n_nodes=4, runtime_estimate=8.0,
                     body=body_for("checkpoint", 4))
        yield env.timeout(0.5)
        sched.submit("h5bench", n_nodes=4, runtime_estimate=6.0,
                     body=body_for("h5bench", 4))
        yield env.timeout(0.5)
        for i in range(3):
            sched.submit(f"mdtest-{i}", n_nodes=1, runtime_estimate=2.0,
                         body=mdtest_body(i))

    env.process(submissions(env))
    env.run()
    return sched


def main() -> None:
    for policy in ("fcfs", "backfill"):
        sched = run_day(policy)
        print(f"policy={policy}: {sched.jobs_completed} jobs, "
              f"makespan {sched.makespan():.2f}s, "
              f"mean wait {sched.mean_wait():.2f}s")
        for job in sched.log.jobs():
            print(f"  {job.name:<12} submit {job.submit_time:>5.2f} "
                  f"start {job.start_time:>6.2f} end {job.end_time:>6.2f} "
                  f"nodes {job.n_nodes}")
        print()

    fcfs = run_day("fcfs")
    easy = run_day("backfill")
    assert easy.mean_wait() <= fcfs.mean_wait()
    print("scheduled_center OK: backfilling reduces queueing delay on the "
          "same workload mix")


if __name__ == "__main__":
    main()
