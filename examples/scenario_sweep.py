#!/usr/bin/env python
"""Scenario sweep: the classic striping response surface, declaratively.

Takes the ``a3-ior`` preset (a 4-rank IOR job on the tiny platform) and
expands a cartesian grid over OSS count and stripe count -- the sweep
every parallel file system paper runs by hand-written nested loops --
then executes all points through the cached parallel sweep runner and
prints the resulting bandwidth surface.

A second ``run_sweep`` call over the same grid is served entirely from
the on-disk cache (same scenario digests, same source digest), and the
sweep manifest written next to the cache records per-point provenance.

Equivalent CLI:
    repro-io scenario sweep a3-ior n_oss=2,4 stripe_count=1,2,4 --jobs 4

Run:  python examples/scenario_sweep.py
"""

import tempfile
from pathlib import Path

from repro.scenario import expand_grid, get_scenario, load_sweep_manifest, run_sweep

MiB = 1024 * 1024


def main() -> None:
    base = get_scenario("a3-ior", seed=0)
    grid = {"n_oss": [2, 4], "stripe_count": [1, 2, 4]}
    print(f"base scenario: {base.describe()}")
    print(f"grid: {grid} -> {len(expand_grid(base, grid))} points")
    print()

    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "cache"
        results = run_sweep(base, grid, jobs=4, cache_dir=cache_dir)

        print(f"{'point':<36} {'sim time':>9} {'write bw':>12}")
        for r in results:
            duration = r.outcome["duration"]
            bw = r.outcome["bytes_written"] / duration / 1e6
            print(f"{r.point.name:<36} {duration:>8.3f}s {bw:>9.1f} MB/s")
        print()

        # Second pass: everything comes from the cache.
        again = run_sweep(base, grid, jobs=4, cache_dir=cache_dir)
        n_cached = sum(1 for r in again if r.cached)
        assert n_cached == len(again), "second sweep must be fully cached"
        assert [r.outcome for r in again] == [r.outcome for r in results]
        print(f"re-run: {n_cached}/{len(again)} points served from cache")

        manifest = load_sweep_manifest(cache_dir.parent / "sweep-manifest.json")
        assert len(manifest["points"]) == len(results)
        assert all(p["cached"] for p in manifest["points"])
        print(f"sweep manifest: {len(manifest['points'])} point(s), "
              f"source digest {manifest['source_digest'][:16]}")

    # The declared surface should reproduce A3's claim: wider stripes help.
    by_point = {tuple(r.point.overrides.values()): r.outcome for r in results}
    for n_oss in (2, 4):
        s1 = by_point[(n_oss, 1)]
        s4 = by_point[(n_oss, 4)]
        assert s4["duration"] < s1["duration"], "striping must speed up IOR"
    print("\nscenario sweep OK: striping speedup reproduced at every OSS count")


if __name__ == "__main__":
    main()
