#!/usr/bin/env python
"""Quickstart: one full turn of the I/O evaluation cycle (paper Fig. 4).

Builds a simulated cluster with a Lustre-like parallel file system, runs
an IOR-like benchmark on it with Darshan-like profiling and Recorder-like
tracing attached (phase 1), synthesizes a representative workload from the
profile (phase 2), simulates the synthetic workload on a fresh system
(phase 3), and compares the two -- the closed loop the paper's taxonomy is
organised around.

Run:  python examples/quickstart.py
"""

from repro.cluster import tiny_cluster
from repro.core.cycle import EvaluationCycle
from repro.monitoring import DarshanProfiler, RecorderTracer
from repro.pfs import build_pfs
from repro.simulate import run_workload
from repro.survey.figures import fig1_platform
from repro.workloads import IORConfig, IORWorkload

MiB = 1024 * 1024


def main() -> None:
    # --- the system under study -------------------------------------------
    platform = tiny_cluster(seed=42)
    print(fig1_platform(platform))
    print()

    # --- phase 1: measurement with monitoring attached ---------------------
    pfs = build_pfs(platform)
    profiler = DarshanProfiler(job_name="ior-demo")
    tracer = RecorderTracer()
    workload = IORWorkload(
        IORConfig(block_size=8 * MiB, transfer_size=MiB, read=True, stripe_count=-1),
        n_ranks=4,
    )
    print(f"running: {workload.describe()}")
    result = run_workload(platform, pfs, workload, observers=[profiler, tracer])
    print(f"  {result.summary()}")
    print(f"  trace: {len(tracer.records)} records at layers "
          f"{tracer.archive.layers()}")
    print()

    # --- the Darshan-style job profile -------------------------------------
    profile = profiler.profile(n_ranks=workload.n_ranks)
    print(profile.report())
    print()

    # --- phases 2+3, iterated: model, generate, simulate, compare ----------
    cycle = EvaluationCycle(
        platform_factory=lambda: tiny_cluster(seed=42),
        workload_factory=lambda: IORWorkload(
            IORConfig(block_size=8 * MiB, transfer_size=MiB, read=True,
                      stripe_count=-1),
            n_ranks=4,
        ),
        include_think_time=False,
    )
    for report in cycle.run(iterations=2):
        print(report.summary())
    final = cycle.reports[-1]
    assert final.bytes_error < 0.01, "synthetic workload must match volumes"
    print("\nquickstart OK: the model-driven simulation reproduces the "
          f"measurement (bytes err {final.bytes_error:.1%}, "
          f"runtime err {final.duration_error:.1%})")


if __name__ == "__main__":
    main()
