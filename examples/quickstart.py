#!/usr/bin/env python
"""Quickstart: one full turn of the I/O evaluation cycle (paper Fig. 4).

Declares the whole evaluation as a scenario (platform + parallel file
system + I/O stack + workload in one spec), builds it into a running
simulated system, runs the IOR-like benchmark with Darshan-like profiling
and Recorder-like tracing attached (phase 1), synthesizes a
representative workload from the profile (phase 2), simulates the
synthetic workload on a fresh system (phase 3), and compares the two --
the closed loop the paper's taxonomy is organised around.

Run:  python examples/quickstart.py
"""

from repro.core.cycle import EvaluationCycle
from repro.monitoring import DarshanProfiler, RecorderTracer
from repro.scenario import (
    ScenarioSpec,
    WorkloadSpec,
    build,
    build_platform,
    instantiate_workloads,
)
from repro.cluster.platform import tiny_spec
from repro.survey.figures import fig1_platform

MiB = 1024 * 1024


def main() -> None:
    # --- the whole evaluation, declared ------------------------------------
    scenario = ScenarioSpec(
        name="quickstart",
        platform=tiny_spec(),
        seed=42,
        workloads=(
            WorkloadSpec("ior", 4, {"block_size": 8 * MiB, "transfer_size": MiB,
                                    "read": True, "stripe_count": -1}),
        ),
    ).validate()
    print(f"scenario: {scenario.describe()}")
    print(f"digest  : {scenario.digest()[:16]} "
          f"(canonical JSON round-trips: "
          f"{ScenarioSpec.from_json(scenario.to_json()) == scenario})")
    print()

    # --- build it into a running simulated system --------------------------
    harness = build(scenario)
    print(fig1_platform(harness.platform))
    print()

    # --- phase 1: measurement with monitoring attached ---------------------
    profiler = DarshanProfiler(job_name="ior-demo")
    tracer = RecorderTracer()
    (_, workload), = instantiate_workloads(scenario)
    print(f"running: {workload.describe()}")
    result = harness.run(workload, observers=[profiler, tracer])
    print(f"  {result.summary()}")
    print(f"  trace: {len(tracer.records)} records at layers "
          f"{tracer.archive.layers()}")
    print()

    # --- the Darshan-style job profile -------------------------------------
    profile = profiler.profile(n_ranks=workload.n_ranks)
    print(profile.report())
    print()

    # --- phases 2+3, iterated: model, generate, simulate, compare ----------
    cycle = EvaluationCycle(
        platform_factory=lambda: build_platform(scenario),
        workload_factory=lambda: instantiate_workloads(scenario)[0][1],
        include_think_time=False,
    )
    for report in cycle.run(iterations=2):
        print(report.summary())
    final = cycle.reports[-1]
    assert final.bytes_error < 0.01, "synthetic workload must match volumes"
    print("\nquickstart OK: the model-driven simulation reproduces the "
          f"measurement (bytes err {final.bytes_error:.1%}, "
          f"runtime err {final.duration_error:.1%})")


if __name__ == "__main__":
    main()
