#!/usr/bin/env python
"""A mixed-workload HPC center (paper Sec. V + Patel et al. [53]).

Simulates a day at a center whose job mix has shifted: traditional
checkpoint/IOR jobs share the file system with deep-learning training,
analytics and workflow jobs.  Server-side statistics sample the storage
cluster throughout (the GUIDE/LMT view), and the run answers the paper's
headline question -- is the storage system still write-dominated? -- along
with the interference question for co-scheduled jobs.

Run:  python examples/mixed_center_simulation.py
"""

from repro.cluster import medium_cluster
from repro.monitoring import ServerStatsCollector
from repro.pfs import build_pfs
from repro.pfs.interference import SlowdownReport
from repro.simulate import run_workload
from repro.simulate.execsim import ExperimentHarness
from repro.workloads import (
    AnalyticsConfig,
    AnalyticsWorkload,
    CheckpointConfig,
    CheckpointWorkload,
    DLIOConfig,
    DLIOWorkload,
    IORConfig,
    IORWorkload,
    OpStreamWorkload,
    montage_like_workflow,
)
from repro.workloads.workflow import workflow_bootstrap_ops

MiB = 1024 * 1024
KiB = 1024


def main() -> None:
    platform = medium_cluster(seed=9)
    pfs = build_pfs(platform)
    stats = ServerStatsCollector(pfs, interval=0.5)
    stats.start()

    # --- the job mix -----------------------------------------------------------
    dlio = DLIOWorkload(
        DLIOConfig(n_samples=512, sample_bytes=128 * KiB, n_shards=8,
                   batch_size=32, epochs=6, compute_per_batch=0.01, seed=9),
        n_ranks=8,
    )
    analytics = AnalyticsWorkload(
        AnalyticsConfig(input_bytes=128 * MiB, compute_per_mb=0.001), n_ranks=8
    )
    wf = montage_like_workflow(n_inputs=16, n_ranks=8, input_bytes=2 * MiB)
    jobs = [
        ("checkpoint", CheckpointWorkload(
            CheckpointConfig(bytes_per_rank=16 * MiB, steps=3,
                             compute_seconds=0.5, fsync=False), 8)),
        ("ior-wr+rd", IORWorkload(
            IORConfig(block_size=16 * MiB, transfer_size=4 * MiB,
                      stripe_count=-1, read=True), 8)),
        ("dlio-gen", OpStreamWorkload(
            "dlio-gen", [list(dlio.generation_ops(r)) for r in range(8)])),
        ("dlio-train", dlio),
        ("analytics-gen", OpStreamWorkload(
            "ana-gen", [list(analytics.generation_ops(r)) for r in range(8)])),
        ("analytics", analytics),
        ("wf-boot", OpStreamWorkload(
            "wf-boot", [list(workflow_bootstrap_ops(wf, 2 * MiB, 16))])),
        ("montage", wf),
    ]

    print(f"{'job':<14} {'seconds':>8} {'GiB W':>7} {'GiB R':>7} {'meta':>6}")
    for name, workload in jobs:
        r = run_workload(platform, pfs, workload)
        print(f"{name:<14} {r.duration:>8.2f} {r.bytes_written / 2**30:>7.3f} "
              f"{r.bytes_read / 2**30:>7.3f} {r.meta_ops:>6}")

    # --- the center-wide verdict -------------------------------------------------
    read = pfs.total_bytes_read()
    written = pfs.total_bytes_written()
    share = read / (read + written)
    print(f"\ncenter-wide traffic: {read / 2**30:.2f} GiB read, "
          f"{written / 2**30:.2f} GiB written -> read share {share:.0%}")
    print(f"OSS load imbalance (max/mean ops): {stats.load_imbalance('oss'):.2f}")
    print(f"peak OSS queue depth: {stats.peak_queue_length('oss')}")

    # --- interference between two co-scheduled jobs -------------------------------
    def job(path):
        return IORWorkload(
            IORConfig(block_size=16 * MiB, transfer_size=4 * MiB,
                      stripe_count=-1, test_file=path), 4)

    harness_alone = ExperimentHarness.fresh(lambda: medium_cluster(seed=9))
    alone = harness_alone.run(job("/alone"))
    harness_both = ExperimentHarness.fresh(lambda: medium_cluster(seed=9))
    both = harness_both.run_concurrently([job("/a"), job("/b")])
    report = SlowdownReport(
        alone={"a": alone.duration, "b": alone.duration},
        together={"a": both[0].duration, "b": both[1].duration},
    )
    print("\nco-scheduling two identical IOR jobs:")
    print(report.summary())

    assert share > 0.4, "the emerging mix should no longer be write-dominated"
    assert report.interference_detected(1.2)
    print("\nmixed_center_simulation OK: reads rival writes and interference "
          "is visible -- the paper's Sec. V landscape")


if __name__ == "__main__":
    main()
