#!/usr/bin/env python
"""Burst-buffer placement study (paper Sec. II; Khetawat et al. [33]).

A facility-ingest workload (detector frames arriving in real time, Sec.
V-A) and a checkpoint burst are absorbed (a) directly by the disk-backed
parallel file system and (b) by the I/O-node burst buffer draining in the
background.  The study sweeps the drain bandwidth to find the point where
the buffer stops helping -- the sizing question burst-buffer placement
papers simulate.

Run:  python examples/burst_buffer_study.py
"""

from repro.cluster import BurstBuffer, tiny_cluster
from repro.pfs import build_pfs
from repro.simulate import run_workload
from repro.workloads import CheckpointConfig, CheckpointWorkload

MiB = 1024 * 1024


def direct_checkpoint(burst_mib: int) -> float:
    """Application-visible seconds to checkpoint straight to the PFS."""
    platform = tiny_cluster(seed=3)
    pfs = build_pfs(platform)
    w = CheckpointWorkload(
        CheckpointConfig(bytes_per_rank=burst_mib * MiB // 4, steps=1,
                         compute_seconds=0.0, fsync=False),
        n_ranks=4,
    )
    return run_workload(platform, pfs, w).duration


def buffered_checkpoint(burst_mib: int, drain_rate: float):
    """(absorb seconds, drain-complete seconds) through the burst buffer."""
    platform = tiny_cluster(seed=3)
    env = platform.env
    bb = BurstBuffer(env, "bb", capacity_bytes=2 * burst_mib * MiB)
    bb.device.seek_time = 0.0
    bb.device.op_overhead = 0.0

    def drain_fn(nbytes):
        yield env.timeout(nbytes / drain_rate)

    bb.set_drain_target(drain_fn)
    done = {}

    def writer(env, rank):
        yield from bb.write(burst_mib * MiB / 4)
        done[rank] = env.now

    for rank in range(4):
        env.process(writer(env, rank))
    env.run()
    return max(done.values()), env.now


def main() -> None:
    burst_mib = 128
    direct = direct_checkpoint(burst_mib)
    print(f"checkpoint burst: {burst_mib} MiB over 4 ranks")
    print(f"direct to PFS   : {direct:.3f}s application-visible\n")

    print(f"{'drain MB/s':>10} {'absorb s':>9} {'drain done s':>12} {'speedup':>8}")
    speedups = {}
    for drain_mb in (50, 150, 500, 2000):
        absorb, drained = buffered_checkpoint(burst_mib, drain_mb * 1e6)
        speedup = direct / absorb
        speedups[drain_mb] = speedup
        print(f"{drain_mb:>10} {absorb:>9.3f} {drained:>12.3f} {speedup:>8.1f}x")

    print("\nobservations:")
    print(" - the application unblocks at SSD speed regardless of drain rate")
    print("   (the buffer has headroom for this burst), so the app-visible")
    print("   speedup is roughly constant;")
    print(" - the drain-complete time falls as drain bandwidth grows: slow")
    print("   drains leave data at risk in the staging tier for longer,")
    print("   which is the placement trade-off [33] studies.")

    assert all(s > 2 for s in speedups.values())
    _, slow_drain = buffered_checkpoint(burst_mib, 50e6)
    _, fast_drain = buffered_checkpoint(burst_mib, 2000e6)
    assert fast_drain < slow_drain
    print("\nburst_buffer_study OK")


if __name__ == "__main__":
    main()
