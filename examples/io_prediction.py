#!/usr/bin/env python
"""I/O performance prediction (paper Sec. IV-B-2).

Builds a training set by sweeping IOR configurations on the simulator
(configuration features -> measured runtime), then compares a linear
baseline against the from-scratch MLP and random forest -- reproducing the
surveyed finding (Schmid & Kunkel [56], Sun et al. [57]) that learned
models beat linear models on the non-linear I/O response surface.
Finally, it predicts two configurations the models never saw.

Run:  python examples/io_prediction.py
"""

import numpy as np

from repro.cluster import tiny_cluster
from repro.modeling import PerformancePredictor, workload_features
from repro.pfs import build_pfs
from repro.simulate import run_workload
from repro.workloads import IORConfig, IORWorkload

MiB = 1024 * 1024
KiB = 1024


def measure(n_ranks, transfer, stripe, random_offsets, seed=0) -> float:
    platform = tiny_cluster(seed=seed)
    pfs = build_pfs(platform)
    cfg = IORConfig(
        block_size=4 * MiB, transfer_size=transfer, stripe_count=stripe,
        random_offsets=random_offsets,
    )
    return run_workload(platform, pfs, IORWorkload(cfg, n_ranks)).duration


def main() -> None:
    # --- build the dataset by sweeping the simulator -----------------------
    X, y = [], []
    configs = []
    for n_ranks in (1, 2, 4):
        for transfer in (64 * KiB, 256 * KiB, MiB, 4 * MiB):
            for stripe in (1, 2, 4):
                for rnd in (False, True):
                    t = measure(n_ranks, transfer, stripe, rnd)
                    X.append(workload_features(
                        n_ranks, transfer, 4 * MiB, stripe_count=stripe,
                        random_offsets=rnd,
                    ))
                    y.append(t)
                    configs.append((n_ranks, transfer, stripe, rnd))
    X, y = np.array(X), np.array(y)
    print(f"training set: {len(y)} simulated IOR configurations, "
          f"runtimes {y.min():.3f}s .. {y.max():.3f}s")

    # --- compare model families ---------------------------------------------
    predictor = PerformancePredictor(seed=1, test_fraction=0.25)
    cmp = predictor.compare(X, y, mlp_epochs=500, n_trees=50)
    print()
    print(cmp.summary())
    print(f"\nbest model: {cmp.best()}")

    # --- predict unseen configurations --------------------------------------
    print("\npredicting unseen configurations with the best model:")
    for n_ranks, transfer, stripe, rnd in ((3, 512 * KiB, 2, False),
                                           (4, 128 * KiB, 4, True)):
        feats = workload_features(
            n_ranks, transfer, 4 * MiB, stripe_count=stripe, random_offsets=rnd
        )
        predicted = float(predictor.predict(cmp.best(), [feats])[0])
        actual = measure(n_ranks, transfer, stripe, rnd)
        err = abs(predicted - actual) / actual
        print(f"  ranks={n_ranks} t={transfer // KiB}KiB stripe={stripe} "
              f"random={rnd}: predicted {predicted:.3f}s, "
              f"actual {actual:.3f}s (err {err:.0%})")

    assert cmp.learned_beats_linear()
    print("\nio_prediction OK: learned models beat the linear baseline, "
          "as the surveyed work reports")


if __name__ == "__main__":
    main()
