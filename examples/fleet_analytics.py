#!/usr/bin/env python
"""Fleet-level I/O analytics (IOMiner [49] / tf-Darshan [24] style).

Profiles a fleet of heterogeneous jobs on one simulated center, then runs
the analyses the monitoring literature builds on top of such logs:

* IOMiner-style mining: top talkers, small-access offenders,
  metadata-heavy jobs, platform read/write balance;
* tf-Darshan-style ML slicing: per-epoch read time and data-stall
  fraction for the DL training job, cold vs warm cache;
* periodicity detection on the checkpoint job's write bursts;
* Omnisc'IO-style online prediction of the checkpoint stream.

Run:  python examples/fleet_analytics.py
"""

from repro.cluster import tiny_cluster
from repro.modeling.patterns import OpPredictor
from repro.modeling.periodicity import detect_period
from repro.monitoring import (
    DXTTracer,
    DarshanProfiler,
    MLIOProfiler,
    ProfileMiner,
)
from repro.pfs import build_pfs
from repro.simulate import run_workload
from repro.workloads import (
    CheckpointConfig,
    CheckpointWorkload,
    DLIOConfig,
    DLIOWorkload,
    MdtestConfig,
    MdtestWorkload,
    OpStreamWorkload,
)

MiB = 1024 * 1024
KiB = 1024


def main() -> None:
    platform = tiny_cluster(seed=21)
    pfs = build_pfs(platform)
    miner = ProfileMiner()

    # --- job 1: periodic checkpointing, with DXT tracing -------------------
    ckpt = CheckpointWorkload(
        CheckpointConfig(bytes_per_rank=8 * MiB, steps=6, compute_seconds=4.0,
                         fsync=False),
        n_ranks=4,
    )
    p1 = DarshanProfiler(job_name="checkpoint")
    dxt = DXTTracer()
    run_workload(platform, pfs, ckpt, observers=[p1, dxt])
    miner.add(p1.profile(n_ranks=4))

    # --- job 2: metadata storm ----------------------------------------------
    md = MdtestWorkload(MdtestConfig(files_per_rank=32), n_ranks=2)
    p2 = DarshanProfiler(job_name="mdtest")
    run_workload(platform, pfs, md, observers=[p2])
    miner.add(p2.profile(n_ranks=2))

    # --- job 3: DL training, with the ML-aware profiler ----------------------
    dlio = DLIOWorkload(
        DLIOConfig(n_samples=256, sample_bytes=64 * KiB, n_shards=4,
                   batch_size=16, epochs=2, compute_per_batch=0.01, seed=21),
        n_ranks=4,
    )
    gen = OpStreamWorkload("gen", [list(dlio.generation_ops(r)) for r in range(4)])
    run_workload(platform, pfs, gen)
    p3 = DarshanProfiler(job_name="dlio")
    ml = MLIOProfiler()
    run_workload(platform, pfs, dlio, observers=[p3, ml],
                 read_cache_bytes=64 * MiB)
    miner.add(p3.profile(n_ranks=4))

    # --- the fleet view ---------------------------------------------------------
    print(miner.report())
    print()

    # --- ML slicing ---------------------------------------------------------------
    print("DL training, per-epoch view (dataset-sized client cache):")
    print(ml.report())
    trend = ml.epoch_speedup_trend()
    print(f"epoch-over-epoch read speedup: {trend:.1f}x (cache warming)\n")

    # --- periodicity of the checkpoint job ----------------------------------------
    times = [s.start for s in dxt.segments() if s.kind == "write"]
    est = detect_period(times)
    print(f"checkpoint write-burst period: {est.period:.1f}s "
          f"(confidence {est.confidence:.2f}, {est.n_events} events)")

    # --- online prediction of a steady append stream --------------------------------
    # A proxy app appending to one file per phase is the predictable case
    # Omnisc'IO exploits (checkpoints rotating file names are the hard one).
    from repro.workloads import Phase, PhasedProxyApp

    steady = PhasedProxyApp(
        [Phase(0.5, write_bytes=4 * MiB, transfer_size=MiB) for _ in range(8)],
        n_ranks=1, name="steady",
    )
    predictor = OpPredictor(order=3)
    sym_acc, exact_acc = predictor.evaluate(list(steady.ops(0)))
    print(f"next-op prediction on a steady append stream: "
          f"{sym_acc:.0%} op-class, {exact_acc:.0%} exact-offset")

    assert miner.top_talkers(1, by="meta")[0].job_name == "mdtest"
    small = {p.job_name for p in miner.small_access_jobs(threshold=128 * KiB)}
    assert "dlio" in small and "checkpoint" not in small
    assert trend > 2.0
    assert est.is_periodic and 3.0 < est.period < 8.0
    assert sym_acc > 0.5
    print("\nfleet_analytics OK")


if __name__ == "__main__":
    main()
