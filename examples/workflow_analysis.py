#!/usr/bin/env python
"""Data-intensive workflow analysis (paper Sec. V-C).

Runs a Montage-like mosaic workflow and a traditional checkpoint job on
the same simulated center, with the full monitoring stack attached --
Darshan-like profiling per job, FSMonitor-like metadata events,
server-side sampling, and a Slurm-like scheduler log -- then prints the
UMAMI-style end-to-end panel joining them all.  The panel shows the
paper's contrast: workflows are metadata-intensive and small-transaction,
checkpoints are bandwidth-intensive.

Run:  python examples/workflow_analysis.py
"""

from repro.cluster import tiny_cluster
from repro.monitoring import EndToEndMonitor
from repro.pfs import build_pfs
from repro.simulate import run_workload
from repro.workloads import (
    CheckpointConfig,
    CheckpointWorkload,
    OpStreamWorkload,
    montage_like_workflow,
)
from repro.workloads.workflow import workflow_bootstrap_ops

MiB = 1024 * 1024


def main() -> None:
    platform = tiny_cluster(seed=11)
    pfs = build_pfs(platform)
    e2e = EndToEndMonitor(pfs, sample_interval=0.2)
    e2e.start()

    # --- job 1: a traditional checkpoint application ------------------------
    ckpt = CheckpointWorkload(
        CheckpointConfig(bytes_per_rank=16 * MiB, steps=3, compute_seconds=0.5,
                         fsync=False),
        n_ranks=4,
    )
    p1 = e2e.new_job_profiler("checkpoint", user="astro", n_nodes=4, n_ranks=4)
    run_workload(platform, pfs, ckpt, observers=[p1])
    e2e.finish_job(p1, n_ranks=4)

    # --- job 2: the Montage-like workflow -----------------------------------
    wf = montage_like_workflow(n_inputs=12, n_ranks=4, input_bytes=2 * MiB)
    boot = OpStreamWorkload("boot", [list(workflow_bootstrap_ops(wf, 2 * MiB, 12))])
    run_workload(platform, pfs, boot)
    print(wf.describe())
    print("generations:", [len(g) for g in wf.generations])
    p2 = e2e.new_job_profiler("montage", user="astro", n_nodes=4, n_ranks=4)
    run_workload(platform, pfs, wf, observers=[p2])
    e2e.finish_job(p2, n_ranks=4)

    # --- the end-to-end panel ------------------------------------------------
    report = e2e.report()
    print()
    print(report.panel())
    print()

    ckpt_row = report.row_for(1)
    wf_row = report.row_for(2)
    md_per_gib_ckpt = ckpt_row.metadata_events / max(1e-9, ckpt_row.bytes_written / 2**30)
    md_per_gib_wf = wf_row.metadata_events / max(
        1e-9, (wf_row.bytes_written + wf_row.bytes_read) / 2**30
    )
    print(f"metadata events per GiB moved: checkpoint {md_per_gib_ckpt:.0f}, "
          f"workflow {md_per_gib_wf:.0f}")
    print("hot directories:", e2e.fsmonitor.hot_directories(top=3))
    print(f"metadata event burstiness (cv): {e2e.fsmonitor.burstiness():.2f}")

    assert md_per_gib_wf > md_per_gib_ckpt * 3
    print("\nworkflow_analysis OK: the workflow is metadata-intensive, "
          "exactly as Sec. V-C describes")


if __name__ == "__main__":
    main()
