#!/usr/bin/env python
"""The full record-and-replay pipeline (paper Sec. IV-A/B, [15]-[17]).

1. **Record**: trace a checkpoint application with the multi-level tracer.
2. **Compress**: fold the trace's repetition (Hao et al. [15] style) and
   report the ratio.
3. **Extrapolate**: fit traces gathered at 2/4/8 ranks and predict the
   16-rank run (ScalaIOExtrap [16], [17] style).
4. **Replay & verify**: replay the extrapolated workload on a larger
   simulated cluster and compare against directly simulating 16 ranks --
   the "verify the correctness of the projected extrapolation" step.

Run:  python examples/trace_replay_pipeline.py
"""

from repro.cluster import medium_cluster, tiny_cluster
from repro.modeling import ReplayModel, TraceExtrapolator, compress_ops
from repro.monitoring import RecorderTracer, save_trace
from repro.pfs import build_pfs
from repro.simulate import run_workload
from repro.workloads import CheckpointConfig, CheckpointWorkload, IORConfig, IORWorkload

MiB = 1024 * 1024
KiB = 1024


def main() -> None:
    # --- 1. record -----------------------------------------------------------
    workload = CheckpointWorkload(
        CheckpointConfig(bytes_per_rank=16 * MiB, steps=5, transfer_size=512 * KiB,
                         compute_seconds=0.4, file_per_process=False, fsync=False),
        n_ranks=4,
    )
    platform = tiny_cluster(seed=5)
    pfs = build_pfs(platform)
    tracer = RecorderTracer()
    original = run_workload(platform, pfs, workload, observers=[tracer])
    print(f"recorded {len(tracer.records)} records from: {workload.describe()}")
    print(f"  original runtime {original.duration:.2f}s")
    import tempfile, os

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "checkpoint.trace.jsonl.gz")
        n = save_trace(tracer.records, path)
        print(f"  trace archived: {n} records -> {os.path.getsize(path)} bytes gz")

    # --- 2. compress -----------------------------------------------------------
    model = ReplayModel.from_records(tracer.records, name="ckpt-replay")
    print(f"\ncompressed replay model: {model.original_ops} ops -> "
          f"{model.compressed_size} nodes ({model.compression_ratio:.1f}:1)")

    # --- 3. extrapolate ----------------------------------------------------------
    def data_ops(n):
        w = IORWorkload(IORConfig(block_size=4 * MiB, transfer_size=MiB, segments=2), n)
        return [[op for op in w.ops(r) if op.kind.is_data] for r in range(n)]

    ex = TraceExtrapolator().fit({n: data_ops(n) for n in (2, 4, 8)})
    predicted16 = ex.generate(16)
    print(f"\nextrapolated 2/4/8-rank IOR traces to 16 ranks "
          f"(exact fit: {ex.is_exact()})")

    # --- 4. replay & verify on a larger machine -----------------------------------
    big = medium_cluster(seed=5)
    big_pfs = build_pfs(big)
    from repro.ops import IOOp, OpKind
    from repro.workloads import OpStreamWorkload

    setup = OpStreamWorkload(
        "setup", [[IOOp(OpKind.CREATE, "/ior.data", meta={"stripe_count": -1})]]
    )
    run_workload(big, big_pfs, setup)
    replayed = run_workload(big, big_pfs, predicted16)

    big2 = medium_cluster(seed=5)
    big2_pfs = build_pfs(big2)
    direct = run_workload(
        big2,
        big2_pfs,
        IORWorkload(IORConfig(block_size=4 * MiB, transfer_size=MiB, segments=2,
                              stripe_count=-1), 16),
    )
    err = abs(replayed.duration - direct.duration) / direct.duration
    print(f"replayed extrapolation on the medium cluster: "
          f"{replayed.duration:.3f}s vs direct 16-rank run {direct.duration:.3f}s "
          f"(error {err:.0%})")

    assert model.compression_ratio > 5
    assert ex.is_exact()
    assert replayed.bytes_written == direct.bytes_written
    print("\ntrace_replay_pipeline OK")


if __name__ == "__main__":
    main()
