"""Benchmarks A1-A3: ablations of DESIGN.md's design choices."""

from repro.experiments import run_a1, run_a2, run_a3, run_a4, run_a5


def test_pdes_determinism(run_experiment):
    """A1: conservative PDES == sequential DES, with real parallelism."""
    run_experiment(run_a1)


def test_profile_synthesis_fidelity(run_experiment):
    """A2: profile-synthesized workloads approximate the original (IOWA)."""
    run_experiment(run_a2)


def test_striping_sweep(run_experiment):
    """A3: bandwidth grows with stripe width and transfer size."""
    run_experiment(run_a3)


def test_timewarp_determinism(run_experiment):
    """A4: Time Warp optimistic execution == sequential execution."""
    run_experiment(run_a4)


def test_writeback_coalescing(run_experiment):
    """A5: the client write-back cache coalesces small writes."""
    run_experiment(run_a5)
