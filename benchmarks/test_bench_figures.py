"""Benchmarks E1-E4: regenerate every figure of the paper.

The paper has no numbered tables; its four figures are regenerated from
the live implementation and validated structurally (see
``repro.experiments.figures`` for what each validation covers).
"""

from repro.experiments import run_e1, run_e2, run_e3, run_e4


def test_fig1_platform_render(run_experiment):
    """E1 / Fig. 1: HPC system with a center-wide parallel file system."""
    run_experiment(run_e1)


def test_fig2_stack_render(run_experiment):
    """E2 / Fig. 2: the layered I/O architecture, rendered and exercised."""
    run_experiment(run_e2)


def test_fig3_distribution(run_experiment):
    """E3 / Fig. 3: distribution of the 51 surveyed articles."""
    run_experiment(run_e3)


def test_fig4_cycle(run_experiment):
    """E4 / Fig. 4: the iterative evaluation cycle, executed end to end."""
    run_experiment(run_e4)
