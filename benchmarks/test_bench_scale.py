"""Large-scenario benchmarks: parallel DES engines vs the sequential fast path.

The scenario is the :mod:`repro.simulate.scalemodel` bulk-synchronous SPMD
write workload -- at full scale 100k ranks over 64 islands for 10 rounds,
which the sequential fast path simulates with ~4.2 million events.  Every
arm must produce a bit-identical result digest; the benchmark's point is
how long each engine takes to get there.

Size is controlled by the ``--scale`` option (``benchmarks/conftest.py``),
a multiplier on the rank counts.  The default (0.05, i.e. 5000 ranks)
keeps a plain ``pytest benchmarks/test_bench_scale.py`` under a minute;
CI smoke uses the same value.  The committed ``BENCH_PR6.json`` numbers
come from ``check_regression.py --tier scale`` at ``--scale 1.0``.
"""

import time

import pytest

from repro.des.cohort import HAVE_NUMPY

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="scale model needs numpy")

RANKS = 100_000
ISLANDS = 64
ROUNDS = 10
# Pinned partition count (cpu_count() on a one-core CI box would collapse
# the partitioned arms to a single partition with nothing to exchange).
WORKERS = 4


@pytest.fixture(scope="module")
def config(scale):
    from repro.simulate.scalemodel import ScaleConfig

    ranks = max(2, int(RANKS * scale))
    return ScaleConfig(
        ranks=ranks, islands=min(ISLANDS, ranks), rounds=ROUNDS, seed=0
    )


def _once(benchmark, fn):
    """Deterministic simulation: one timed round measures everything."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def test_sequential_fast_path(benchmark, config, scale):
    from repro.simulate.scalemodel import run_scale

    result = _once(benchmark, lambda: run_scale(config, engine="sequential"))
    # Per rank and round: compute timeout, link admission, jitter timeout,
    # barrier arrival -- the event volume the cohort arms collapse.  At
    # --scale 1.0 this asserts the >= 2M-event tier the scale claim is
    # made on.
    assert result.events >= 4 * config.ranks * config.rounds
    if config.ranks >= RANKS:
        assert result.events >= 2_000_000


def test_cohort_sequential(benchmark, config):
    from repro.simulate.scalemodel import run_cohort_sequential

    result = _once(benchmark, lambda: run_cohort_sequential(config))
    # The whole point of cohorts: events per island-round, not per rank.
    assert result.events < 10 * config.islands * config.rounds


def test_conservative(benchmark, config):
    from repro.simulate.scalemodel import run_cohort

    result = _once(benchmark, lambda: run_cohort(config, engine="conservative"))
    assert result.stats["windows"] > 0


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_partitioned(benchmark, config, backend):
    from repro.simulate.scalemodel import run_cohort

    workers = min(WORKERS, config.islands)
    result = _once(
        benchmark,
        lambda: run_cohort(
            config, engine="partitioned", backend=backend, workers=workers
        ),
    )
    if workers > 1:
        assert result.stats["exchanged"] > 0  # halos crossed partitions


def test_all_arms_bit_identical(config):
    from repro.simulate.scalemodel import (
        run_cohort,
        run_cohort_sequential,
        run_scale,
    )

    digests = {
        run_scale(config, engine="sequential").digest,
        run_cohort_sequential(config).digest,
        run_cohort(config, engine="conservative").digest,
        run_cohort(
            config, engine="partitioned", backend="thread",
            workers=min(WORKERS, config.islands),
        ).digest,
    }
    assert len(digests) == 1


def test_partitioned_beats_sequential_at_scale(config, scale):
    """The PR's headline claim, asserted directly when run big enough.

    Below 10k ranks the margin is real but thin enough for a loaded host
    to blur, so the assertion only arms at --scale >= 0.1.
    """
    from repro.simulate.scalemodel import run_cohort, run_scale

    if scale < 0.1:
        pytest.skip("crossover margin too thin below --scale 0.1")
    workers = min(WORKERS, config.islands)

    def partitioned():
        return run_cohort(
            config, engine="partitioned", backend="thread", workers=workers
        )

    partitioned()  # warm pools
    start = time.perf_counter()
    seq = run_scale(config, engine="sequential")
    seq_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    par = partitioned()
    par_elapsed = time.perf_counter() - start
    assert par.digest == seq.digest
    assert par_elapsed * 2.0 <= seq_elapsed
