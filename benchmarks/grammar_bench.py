#!/usr/bin/env python
"""Grammar sampling / synthesis throughput benchmark.

Two costs matter for the grammar layer being usable as a sweep axis:

* **sampling** must be cheap enough to sit inside scenario build
  (``kind="grammar"`` samples at build time, once per sweep point);
* **synthesis** is interactive-scale, not build-scale -- a beam search
  re-simulating candidate derivations -- so it gets a generous bound,
  but a bound nonetheless, to catch accidental quadratic blowups in the
  distance metric or the beam bookkeeping.

Usage::

    PYTHONPATH=src python benchmarks/grammar_bench.py           # report + gate
    PYTHONPATH=src python benchmarks/grammar_bench.py --smoke   # fast
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.modeling.trace_distance import trace_distance  # noqa: E402
from repro.wgen.grammar import default_grammar, sample  # noqa: E402
from repro.wgen.synth import (  # noqa: E402
    derivation_ops,
    normalize_ops,
    synthesize,
)

# Loose wall-clock gates (seconds, per call): an order of magnitude above
# current medians on a laptop-class host, so only real regressions trip.
SAMPLE_BOUND = 0.05
DISTANCE_BOUND = 0.25
SYNTH_BOUND = 60.0


def bench_sampling(grammar, n: int):
    times = []
    for seed in range(n):
        t0 = time.perf_counter()
        d = sample(grammar, seed=seed)
        times.append(time.perf_counter() - t0)
        assert d.choices  # keep the work honest
    return times


def bench_distance(grammar, n: int):
    streams = [
        normalize_ops(derivation_ops(sample(grammar, seed=s)))
        for s in range(n)
    ]
    times = []
    for i in range(n):
        t0 = time.perf_counter()
        trace_distance(streams[i], streams[(i + 1) % n])
        times.append(time.perf_counter() - t0)
    return times


def bench_synthesis(grammar, n: int):
    times = []
    for seed in range(n):
        target = derivation_ops(sample(grammar, seed=seed))
        t0 = time.perf_counter()
        result = synthesize(target, grammar=grammar)
        times.append(time.perf_counter() - t0)
        assert result.n_candidates > 0
    return times


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="minimal iteration counts (CI)")
    args = ap.parse_args(argv)

    n_sample = 10 if args.smoke else 50
    n_synth = 2 if args.smoke else 5
    grammar = default_grammar()

    failures = []
    for label, times, bound in (
        ("sample", bench_sampling(grammar, n_sample), SAMPLE_BOUND),
        ("distance", bench_distance(grammar, n_sample), DISTANCE_BOUND),
        ("synthesize", bench_synthesis(grammar, n_synth), SYNTH_BOUND),
    ):
        med = statistics.median(times)
        worst = max(times)
        verdict = "ok" if med <= bound else "REGRESSION"
        print(f"{label:<11} median {med * 1e3:8.2f} ms  "
              f"max {worst * 1e3:8.2f} ms  bound {bound * 1e3:8.1f} ms  "
              f"[{verdict}]")
        if med > bound:
            failures.append(label)

    if failures:
        print(f"FAIL: {', '.join(failures)} exceeded bounds", file=sys.stderr)
        return 1
    print("grammar benchmark gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
