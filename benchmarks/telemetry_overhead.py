#!/usr/bin/env python
"""Telemetry-off overhead gate for the DES event loop.

PR 2 added self-telemetry hooks to the engine's hot path
(``Environment.run`` routes through an instrumented loop when
``repro.telemetry`` is enabled).  The disabled cost must stay one boolean
check: this gate times the same ``event_loop_throughput`` workload as
``benchmarks/check_regression.py`` with telemetry **disabled** and fails
when it falls outside ``--tolerance`` of the committed reference timing
(``BENCH_BASELINE.json``'s ``reference_min``, which is aggregated over
several harness invocations to ride out host noise; ``BENCH_PR1.json``'s
single-run ``min_seconds`` is only a fallback).

The distributed-telemetry PR added a second class of hooks: DES-timeline
probes (``repro.telemetry.timeseries``) installed by ``scenario.build``
plus simulation-time cohort series on the engine's batch paths.  All of
them hide behind the same one-attribute ``TELEMETRY.active`` check, so a
second gate (``scenario_probe_path``) times a full ``run_scenario`` of
the ``tiny`` preset with telemetry disabled and fails on regression the
same way.

For context (never gated -- the slowdown is the *point* of the feature,
only its disabled cost is a bug) the report also times both workloads
with telemetry enabled and prints the enabled/disabled ratio.

Usage::

    PYTHONPATH=src python benchmarks/telemetry_overhead.py           # gate
    PYTHONPATH=src python benchmarks/telemetry_overhead.py --smoke   # fast
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
PR1_REPORT = REPO_ROOT / "BENCH_PR1.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_BASELINE.json"

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(REPO_ROOT / "src"))

BENCH_NAME = "event_loop_throughput"
PROBE_BENCH_NAME = "scenario_probe_path"


def _scenario_probe_path(scale: float) -> None:
    """One full scenario build+run -- the path that installs probes.

    With telemetry disabled this must cost exactly one attribute check in
    ``build()`` plus the already-gated cohort branches; the probe process
    is never created.
    """
    from repro.scenario import get_scenario, run_scenario

    run = run_scenario(get_scenario("tiny"))
    assert run.results


def _event_loop(scale: float) -> None:
    """The exact workload of check_regression's event_loop_throughput."""
    from repro.des import Environment

    n = max(1, int(10_000 * scale))
    env = Environment()

    def ticker(env):
        for _ in range(n):
            yield env.timeout(0.001)

    env.process(ticker(env))
    env.run()
    assert env.events_processed >= n


def time_loop(rounds: int, scale: float, fn=_event_loop) -> Dict[str, float]:
    for _ in range(3):  # warmup
        fn(scale)
    times = []
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        fn(scale)
        times.append(time.perf_counter() - start)
        gc.enable()
    return {"median": statistics.median(times), "min": min(times)}


def reference_seconds(name: str = BENCH_NAME) -> Optional[float]:
    """Reference min for a gated workload.

    Prefers the baseline's noise-aware ``reference_min`` (aggregated over
    several harness invocations) over ``BENCH_PR1.json``'s single-run min,
    which can sample the fast end of the host's noise distribution.
    """
    if BASELINE_PATH.exists():
        with open(BASELINE_PATH, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        ref = (baseline.get("reference_min") or {}).get(name)
        if ref is not None:
            return ref
    if PR1_REPORT.exists():
        with open(PR1_REPORT, "r", encoding="utf-8") as fh:
            report = json.load(fh)
        mins = report.get("min_seconds") or {}
        if name in mins:
            return mins[name]
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed slowdown vs the PR 1 reference")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload, 1 round, no pass/fail gate")
    args = parser.parse_args(argv)

    rounds, scale = args.rounds, args.scale
    if args.smoke:
        rounds, scale = 1, 0.02

    from repro import telemetry

    gated = not args.smoke and scale == 1.0
    failures = 0
    for name, fn in ((BENCH_NAME, _event_loop),
                     (PROBE_BENCH_NAME, _scenario_probe_path)):
        if telemetry.enabled():  # the gate measures the *disabled* fast path
            telemetry.disable()
        off = time_loop(rounds, scale, fn)

        telemetry.enable()
        try:
            on = time_loop(rounds, scale, fn)
        finally:
            telemetry.disable()
            telemetry.reset()

        ratio = on["min"] / off["min"] if off["min"] > 0 else float("inf")
        print(f"[{name}]")
        print(f"  telemetry off : {off['min'] * 1e3:8.3f} ms (min of {rounds})")
        print(f"  telemetry on  : {on['min'] * 1e3:8.3f} ms "
              f"({ratio:.2f}x, informational)")

        ref = reference_seconds(name) if gated else None
        if ref is not None:
            slowdown = off["min"] / ref
            print(f"  reference     : {ref * 1e3:8.3f} ms -> disabled-path "
                  f"slowdown {slowdown:.2f}x (tolerance {args.tolerance:.0%})")
            if off["min"] > ref * (1.0 + args.tolerance):
                print(f"FAIL: disabled-telemetry {name} regressed beyond "
                      "tolerance", file=sys.stderr)
                failures += 1
        elif gated:
            print(f"no reference timing for {name}; gate skipped",
                  file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
