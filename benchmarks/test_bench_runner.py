"""Benchmarks of the parallel cached experiment runner.

These measure the runner's two fast paths -- sequential dispatch overhead
and warm-cache lookup -- plus a one-shot comparison of sequential vs
process-pool fan-out over the full experiment suite.  Fan-out wall time is
recorded in ``extra_info`` rather than asserted: on a single-CPU host the
pool adds fork overhead and cannot win, while on multi-core hosts it
should approach ``sequential / ncpu``.
"""

import os

from repro.experiments.runner import run_experiments, source_digest

# A cheap, representative subset so a benchmark round stays sub-second.
CHEAP_IDS = ["A1", "C5", "E2"]


def test_runner_sequential_dispatch(benchmark, tmp_path):
    """Cold-cache sequential run of a cheap subset (dispatch + simulate)."""
    digest = source_digest()

    def run():
        return run_experiments(
            CHEAP_IDS, seeds=(0,), jobs=1, use_cache=False,
            cache_dir=tmp_path, digest=digest,
        )

    results = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert [r.experiment_id for r in results] == CHEAP_IDS
    assert not any(r.cached for r in results)


def test_runner_warm_cache_lookup(benchmark, tmp_path):
    """Warm-cache run of the same subset: pure lookup, no simulation."""
    digest = source_digest()
    run_experiments(CHEAP_IDS, seeds=(0,), jobs=1, use_cache=True,
                    cache_dir=tmp_path, digest=digest)

    def run():
        return run_experiments(
            CHEAP_IDS, seeds=(0,), jobs=1, use_cache=True,
            cache_dir=tmp_path, digest=digest,
        )

    results = benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
    assert all(r.cached for r in results)


def test_runner_parallel_fanout(benchmark, tmp_path):
    """One-shot: full suite with a process pool; sequential time in extra_info."""
    import time

    digest = source_digest()
    t0 = time.perf_counter()
    seq = run_experiments(None, seeds=(0,), jobs=1, use_cache=False,
                          cache_dir=tmp_path, digest=digest)
    sequential_s = time.perf_counter() - t0

    def run():
        return run_experiments(None, seeds=(0,), jobs=4, use_cache=False,
                               cache_dir=tmp_path, digest=digest)

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["sequential_seconds"] = round(sequential_s, 3)
    benchmark.extra_info["ncpu"] = os.cpu_count()
    assert [r.payload for r in results] == [r.payload for r in seq]
