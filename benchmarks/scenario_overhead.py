#!/usr/bin/env python
"""Scenario-layer overhead gate for harness construction.

The declarative scenario layer (``repro.scenario``) sits between every
experiment and the simulator: ``build(get_scenario(...))`` must cost the
same as wiring the platform + file system + harness by hand, plus only
the spec lookup/validation itself.  This gate times both paths on the
``tiny`` preset, interleaved round by round to ride out host noise, and
fails when the declarative path's median exceeds the manual path's by
more than ``--tolerance`` (a few percent locally; CI uses a relaxed
bound because shared runners jitter).

Usage::

    PYTHONPATH=src python benchmarks/scenario_overhead.py             # gate
    PYTHONPATH=src python benchmarks/scenario_overhead.py --smoke     # fast
"""

from __future__ import annotations

import argparse
import gc
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster.platform import platform_from_spec  # noqa: E402
from repro.pfs.filesystem import DEVICE_CLASSES, ParallelFileSystem  # noqa: E402
from repro.scenario import build, get_scenario  # noqa: E402
from repro.simulate.execsim import ExperimentHarness  # noqa: E402

# The representative platform: the fixed per-spec cost (validation, the
# registry lookup) must vanish against a realistic harness construction.
PRESET = "medium"


def build_declarative() -> ExperimentHarness:
    """The scenario path every experiment now takes."""
    return build(get_scenario(PRESET))


def build_manual() -> ExperimentHarness:
    """The hand-wired equivalent (what the experiments did pre-refactor)."""
    spec = get_scenario(PRESET)
    platform = platform_from_spec(spec.platform, seed=spec.seed)
    pfs = ParallelFileSystem(
        platform,
        stripe_size=spec.storage.stripe_size,
        default_stripe_count=spec.storage.default_stripe_count,
        max_rpc=spec.storage.max_rpc,
        device_cls=DEVICE_CLASSES[spec.storage.device],
        alloc_policy=spec.storage.alloc_policy,
    )
    return ExperimentHarness(platform=platform, pfs=pfs,
                             stack_defaults=spec.stack.kwargs())


def measure(rounds: int):
    for _ in range(5):  # warmup both paths
        build_declarative()
        build_manual()
    t_scenario, t_manual = [], []
    for i in range(rounds):
        gc.collect()
        gc.disable()
        # Alternate which path goes first: the build right after a
        # gc.collect pays allocator warm-up, and it must not always be
        # the same side.
        order = ((build_manual, t_manual), (build_declarative, t_scenario))
        if i % 2:
            order = order[::-1]
        for fn, sink in order:
            start = time.perf_counter()
            fn()
            sink.append(time.perf_counter() - start)
        gc.enable()
    # The minimum is the noise-free floor of a microbenchmark; medians of
    # sub-millisecond constructions still carry scheduler jitter.
    return min(t_scenario), min(t_manual)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=200,
                        help="timed rounds per path (default: 200)")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="max allowed relative overhead (default: 0.05)")
    parser.add_argument("--smoke", action="store_true",
                        help="few rounds, loose tolerance (CI smoke)")
    args = parser.parse_args()
    rounds = 30 if args.smoke else args.rounds
    tolerance = max(args.tolerance, 0.25) if args.smoke else args.tolerance

    scenario_s, manual_s = measure(rounds)
    overhead = (scenario_s - manual_s) / manual_s
    print(f"scenario build ({PRESET}): best of {rounds} = {scenario_s * 1e3:.3f} ms")
    print(f"manual build   ({PRESET}): best of {rounds} = {manual_s * 1e3:.3f} ms")
    print(f"relative overhead: {overhead:+.2%} (tolerance {tolerance:.0%})")

    if overhead > tolerance:
        print(f"FAIL: declarative layer costs {overhead:.2%} over hand-wiring")
        return 1
    print("OK: scenario layer adds no meaningful construction cost")
    return 0


if __name__ == "__main__":
    sys.exit(main())
