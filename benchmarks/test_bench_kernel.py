"""Microbenchmarks of the simulation substrate itself.

These time the components everything else is built on -- the event loop,
the fair-share link, the PFS data path, and the trace compressor -- so
performance regressions in the substrate are visible independently of the
reproduction experiments.
"""

from repro.cluster import tiny_cluster
from repro.des import Environment, FairShareLink
from repro.modeling import compress_ops
from repro.ops import IOOp, OpKind
from repro.pfs import build_pfs
from repro.simulate import run_workload
from repro.workloads import IORConfig, IORWorkload

MiB = 1024 * 1024
KiB = 1024


def test_event_loop_throughput(benchmark):
    """Raw engine speed: 10k timeout events."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(10_000):
                yield env.timeout(0.001)

        env.process(ticker(env))
        env.run()
        return env.events_processed

    events = benchmark(run)
    assert events >= 10_000


def test_fair_share_link_many_flows(benchmark):
    """Processor-sharing link with 200 overlapping transfers."""

    def run():
        env = Environment()
        link = FairShareLink(env, rate=1e9)

        def sender(env, i):
            yield env.timeout(i * 1e-4)
            yield link.transfer(1e6)

        for i in range(200):
            env.process(sender(env, i))
        env.run()
        return link.bytes_transferred

    moved = benchmark(run)
    assert moved == 200 * 1e6


def test_pfs_write_path(benchmark):
    """End-to-end PFS data path: 4-rank IOR write on the tiny cluster."""

    def run():
        platform = tiny_cluster()
        pfs = build_pfs(platform)
        w = IORWorkload(IORConfig(block_size=4 * MiB, transfer_size=MiB), 4)
        return run_workload(platform, pfs, w).bytes_written

    written = benchmark(run)
    assert written == 16 * MiB


def test_trace_compressor_speed(benchmark):
    """Compressing a 5k-op repetitive stream."""
    ops = []
    for step in range(50):
        ops.append(IOOp(OpKind.COMPUTE, duration=1.0))
        for i in range(100):
            ops.append(IOOp(OpKind.WRITE, "/f", offset=i * KiB, nbytes=KiB))
        ops.append(IOOp(OpKind.BARRIER))

    ct = benchmark(compress_ops, ops)
    assert ct.ratio > 100
