#!/usr/bin/env python
"""Benchmark regression gate: kernel microbenchmarks and the scale tier.

``--tier kernel`` (the default) times the simulation-substrate
microbenchmarks (the same workloads as ``benchmarks/test_bench_kernel.py``,
without the pytest-benchmark dependency), writes per-benchmark median
seconds to ``BENCH_PR1.json``, and exits nonzero when any benchmark
regressed more than ``--tolerance`` (default 25%) against the committed
reference in ``benchmarks/BENCH_BASELINE.json``.

The kernel baseline file has three timing sets:

* ``seed``          -- the pre-optimization engine (PR 1's starting point),
                       kept so speedup-vs-seed stays visible in every report;
* ``reference``     -- the optimized engine's medians, for context;
* ``reference_min`` -- the optimized engine's per-benchmark min, which the
                       regression gate compares against (min-vs-min is robust
                       to scheduler noise on shared hosts).

``--tier scale`` times the large-scenario arms of
:mod:`repro.simulate.scalemodel` -- the 100k-rank bulk-synchronous write
workload under the sequential fast path (one coroutine per rank, millions
of events) and the vectorized cohort model on every executor (sequential,
conservative, partitioned serial/thread/process) -- verifies all arms
produce bit-identical result digests, sweeps rank counts for the
parallel-vs-sequential crossover, writes ``BENCH_PR6.json``, and gates
against ``benchmarks/BENCH_SCALE_BASELINE.json``.  At full scale the gate
additionally requires the partitioned-thread arm to beat the sequential
fast path by at least ``SCALE_MIN_SPEEDUP``x.

``--tier service`` boots an in-process run service (:mod:`repro.service`)
on an ephemeral port, populates the store with one cold submission, then
drives a 1000-tenant warm storm and a 64-tenant dedup storm through the
multi-tenant load generator.  It writes ``BENCH_PR8.json`` and gates on
the service's own guarantees -- warm storm at a 100% store-hit ratio with
zero failed requests, the dedup storm computing *exactly once*, a clean
``store verify`` -- plus p50/p99 latency against
``benchmarks/BENCH_SERVICE_BASELINE.json``.  ``--tier all`` runs all
three tiers.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py               # kernel gate
    PYTHONPATH=src python benchmarks/check_regression.py --tier scale  # scale gate
    PYTHONPATH=src python benchmarks/check_regression.py --tier scale --scale 0.05 --smoke

``--smoke`` shrinks the workloads to one timing round and skips the
pass/fail gate so the test suite can exercise the harness in milliseconds
(see ``tests/benchmarks/test_check_regression.py``); an explicit
``--scale`` still wins over the smoke default.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_BASELINE.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_PR1.json"
SCALE_BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_SCALE_BASELINE.json"
SCALE_OUTPUT_PATH = REPO_ROOT / "BENCH_PR6.json"
SERVICE_BASELINE_PATH = (
    Path(__file__).resolve().parent / "BENCH_SERVICE_BASELINE.json"
)
SERVICE_OUTPUT_PATH = REPO_ROOT / "BENCH_PR8.json"

try:  # allow running without PYTHONPATH=src, but never shadow an
    import repro  # noqa: F401  # already-importable repro (e.g. a worktree)
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(REPO_ROOT / "src"))

MiB = 1024 * 1024
KiB = 1024


# -- benchmark workloads (mirror benchmarks/test_bench_kernel.py) ------------

def bench_event_loop_throughput(scale: float = 1.0) -> None:
    from repro.des import Environment

    n = max(1, int(10_000 * scale))
    env = Environment()

    def ticker(env):
        for _ in range(n):
            yield env.timeout(0.001)

    env.process(ticker(env))
    env.run()
    assert env.events_processed >= n


def bench_fair_share_link_many_flows(scale: float = 1.0) -> None:
    from repro.des import Environment, FairShareLink

    n = max(2, int(200 * scale))
    env = Environment()
    link = FairShareLink(env, rate=1e9)

    def sender(env, i):
        yield env.timeout(i * 1e-4)
        yield link.transfer(1e6)

    for i in range(n):
        env.process(sender(env, i))
    env.run()
    assert link.bytes_transferred == n * 1e6


def bench_pfs_write_path(scale: float = 1.0) -> None:
    from repro.cluster import tiny_cluster
    from repro.pfs import build_pfs
    from repro.simulate import run_workload
    from repro.workloads import IORConfig, IORWorkload

    block = max(1, int(4 * scale)) * MiB
    platform = tiny_cluster()
    pfs = build_pfs(platform)
    w = IORWorkload(IORConfig(block_size=block, transfer_size=MiB), 4)
    result = run_workload(platform, pfs, w)
    assert result.bytes_written == 4 * block


def bench_trace_compressor_speed(scale: float = 1.0) -> None:
    from repro.modeling import compress_ops
    from repro.ops import IOOp, OpKind

    steps = max(1, int(50 * scale))
    ops = []
    for _ in range(steps):
        ops.append(IOOp(OpKind.COMPUTE, duration=1.0))
        for i in range(100):
            ops.append(IOOp(OpKind.WRITE, "/f", offset=i * KiB, nbytes=KiB))
        ops.append(IOOp(OpKind.BARRIER))
    compress_ops(ops)


BENCHMARKS: Dict[str, Callable[[float], None]] = {
    "event_loop_throughput": bench_event_loop_throughput,
    "fair_share_link_many_flows": bench_fair_share_link_many_flows,
    "pfs_write_path": bench_pfs_write_path,
    "trace_compressor_speed": bench_trace_compressor_speed,
}


# -- scale tier (large-scenario parallel-vs-sequential) ----------------------

#: Full-scale scenario shape: 100k ranks over 64 islands, 10 rounds.  The
#: sequential fast path simulates this with ~4.2 million events.
SCALE_RANKS = 100_000
SCALE_ISLANDS = 64
SCALE_ROUNDS = 10
#: Rank counts swept for the parallel-vs-sequential crossover (each is
#: multiplied by ``--scale``; the last point doubles as the headline run).
SCALE_SWEEP = (1_000, 4_000, 16_000, 50_000, SCALE_RANKS)
#: Gate: at full scale the partitioned-thread arm must beat the
#: sequential fast path by at least this factor.
SCALE_MIN_SPEEDUP = 2.0
#: Arms longer than this (seconds) are timed once instead of ``rounds``
#: times -- at 100k ranks the sequential fast path alone runs tens of
#: seconds, and repeating it five times would buy noise rejection nobody
#: needs at that magnitude.
SCALE_SINGLE_RUN_THRESHOLD = 2.0
#: Partition/worker count for the partitioned arms.  Pinned (not
#: ``cpu_count()``) so the measured topology -- 8 partitions of 8 islands,
#: halos crossing at the boundaries -- is the same on every host; on a
#: single-core container the default would collapse to one partition and
#: measure nothing.
SCALE_WORKERS = 8


def scale_config(scale: float = 1.0, ranks: int = SCALE_RANKS):
    """The swept scenario at ``ranks * scale`` ranks (islands clamped)."""
    from repro.simulate.scalemodel import ScaleConfig

    n = max(2, int(ranks * scale))
    return ScaleConfig(
        ranks=n,
        islands=min(SCALE_ISLANDS, n),
        rounds=SCALE_ROUNDS,
        seed=0,
    )


def _scale_arms() -> Dict[str, Callable]:
    """name -> callable(config) for every engine arm, slowest first."""
    from repro.simulate.scalemodel import (
        run_cohort,
        run_cohort_sequential,
        run_scale,
    )

    def partitioned(backend):
        def run(c):
            return run_cohort(c, engine="partitioned", backend=backend,
                              workers=min(SCALE_WORKERS, c.islands))
        return run

    return {
        "sequential_fast_path": lambda c: run_scale(c, engine="sequential"),
        "cohort_sequential": run_cohort_sequential,
        "conservative": lambda c: run_cohort(c, engine="conservative"),
        "partitioned_serial": partitioned("serial"),
        "partitioned_thread": partitioned("thread"),
        "partitioned_process": partitioned("process"),
    }


def _time_arm(fn, rounds: int, threshold: float = SCALE_SINGLE_RUN_THRESHOLD):
    """Time ``fn()`` with the collector paused, as in :func:`run_benchmarks`.

    Returns ``({"median": s, "min": s}, last_result)``.  Arms whose first
    run exceeds ``threshold`` seconds are not repeated (see
    ``SCALE_SINGLE_RUN_THRESHOLD``).
    """
    gc_was_enabled = gc.isenabled()
    times, result = [], None
    try:
        while True:
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - start)
            gc.enable()
            if len(times) >= rounds or times[0] >= threshold:
                break
    finally:
        if gc_was_enabled:
            gc.enable()
    return {"median": statistics.median(times), "min": min(times)}, result


def run_scale_arms(rounds: int, scale: float) -> Dict[str, Dict]:
    """Time every engine arm on the headline config.

    Returns ``{name: {"median", "min", "events", "digest", "stats"}}``.
    """
    config = scale_config(scale)
    arms = _scale_arms()
    # Warmup on a miniature config: imports, numpy caches, thread pools,
    # and the process backend's first worker spawn.
    warm = scale_config(1.0, ranks=min(256, config.ranks))
    for fn in arms.values():
        fn(warm)
    out: Dict[str, Dict] = {}
    for name, fn in arms.items():
        timing, res = _time_arm(lambda: fn(config), rounds)
        out[name] = {
            **timing,
            "events": res.events,
            "digest": res.digest,
            "stats": dict(res.stats),
        }
    return out


def run_crossover_sweep(scale: float, full_arms: Dict[str, Dict]) -> Dict:
    """Sweep rank counts; find where each parallel backend starts winning.

    Each sweep point times the sequential fast path against the
    partitioned thread and process backends (single run below
    ``SCALE_SINGLE_RUN_THRESHOLD`` repeats, min-of-3 for the fast ones).
    The headline point's timings are reused from ``full_arms`` rather
    than re-measured.
    """
    arms = _scale_arms()
    sweep = []
    seen = set()
    for base_ranks in SCALE_SWEEP:
        config = scale_config(scale, ranks=base_ranks)
        if config.ranks in seen:
            continue
        seen.add(config.ranks)
        if base_ranks == SCALE_RANKS:
            point = {
                "ranks": config.ranks,
                "sequential_fast_path":
                    full_arms["sequential_fast_path"]["min"],
                "partitioned_thread": full_arms["partitioned_thread"]["min"],
                "partitioned_process": full_arms["partitioned_process"]["min"],
            }
        else:
            point = {"ranks": config.ranks}
            for name in ("sequential_fast_path", "partitioned_thread",
                         "partitioned_process"):
                timing, _ = _time_arm(
                    lambda: arms[name](config), rounds=3, threshold=0.5
                )
                point[name] = timing["min"]
        sweep.append(point)
    sweep.sort(key=lambda p: p["ranks"])

    def first_win(name: str):
        for point in sweep:
            if point[name] < point["sequential_fast_path"]:
                return point["ranks"]
        return None

    return {
        "sweep": sweep,
        "crossover_ranks_thread": first_win("partitioned_thread"),
        "crossover_ranks_process": first_win("partitioned_process"),
    }


# -- service tier (multi-tenant run service) ---------------------------------

#: Headline load: 1000 tenants hammering the warm path over 8 sockets.
SERVICE_TENANTS = 1_000
SERVICE_CONNECTIONS = 8
SERVICE_WORKERS = 2
#: Concurrent identical submissions in the dedup storm (must compute once).
SERVICE_DEDUP_TENANTS = 64
#: Pinned source digest for bench runs: cache keys must not depend on the
#: working tree, or a dirty checkout would silently turn the warm storm
#: into a cold one and gate on compute latency instead of service latency.
SERVICE_SOURCE_DIGEST = "bench" + "0" * 59


def run_service_bench(
    tenants: int, connections: int, workers: int = SERVICE_WORKERS
):
    """Boot an in-process service and drive the three load phases.

    Returns ``(cold, warm, dedup, verify_problems, journal)`` where the
    first three are :func:`repro.service.loadgen.run_load` reports,
    ``verify_problems`` is the result of ``store.verify()`` after all
    load, and ``journal`` summarizes write-ahead journal activity --
    including how many records the warm storm appended, which must be
    zero (warm-only jobs are never journaled, so crash durability adds
    no fsyncs to the gated warm path).
    """
    import asyncio
    import tempfile

    from repro.service import RunService, ServiceConfig
    from repro.service.loadgen import run_load

    async def drive():
        with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as tmp:
            service = RunService(ServiceConfig(
                store_dir=Path(tmp) / "store",
                workers=workers,
                queue_limit=max(4096, tenants),
                tenant_quota=max(64, tenants),
                source_digest=SERVICE_SOURCE_DIGEST,
            ))
            host, port = await service.start()
            try:
                # Phase 1 (cold): one tenant populates the store.
                cold = await run_load(
                    host, port, tenants=1, connections=1, scenario="tiny",
                )
                if service._journal is not None:
                    # Flush cold-phase stragglers (complete/land records
                    # are appended after the client is answered) so the
                    # warm-phase delta measures the warm storm alone.
                    await service._journal.commit()
                    warm_journal_before = dict(service._journal.stats)
                else:
                    warm_journal_before = None
                # Phase 2 (warm storm): every tenant submits the now-cached
                # scenario; the service must answer all of it from the store.
                warm = await run_load(
                    host, port, tenants=tenants, connections=connections,
                    scenario="tiny",
                )
                if service._journal is not None:
                    await service._journal.commit()  # settle any stragglers
                    journal = {
                        "enabled": True,
                        "stats": dict(service._journal.stats),
                        "warm_records": (
                            service._journal.stats["records"]
                            - warm_journal_before["records"]
                        ),
                        "warm_fsync_batches": (
                            service._journal.stats["fsync_batches"]
                            - warm_journal_before["fsync_batches"]
                        ),
                    }
                else:
                    journal = {"enabled": False}
                # Phase 3 (dedup storm): concurrent identical *fresh*
                # submissions (a seed nobody has computed) must coalesce
                # onto exactly one computation.
                dedup = await run_load(
                    host, port,
                    tenants=min(SERVICE_DEDUP_TENANTS, tenants),
                    connections=connections,
                    scenario="tiny", seed=990_001,
                )
                verify = service.store.verify()
            finally:
                await service.stop()
            return cold, warm, dedup, verify, journal

    return asyncio.run(drive())


def _service_main(args, rounds: int, scale: float) -> int:
    tenants = max(2, int(SERVICE_TENANTS * scale))
    connections = min(SERVICE_CONNECTIONS, tenants)

    baseline = {}
    if args.service_baseline.exists():
        with open(args.service_baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)

    cold, warm, dedup, verify, journal = run_service_bench(
        tenants, connections
    )

    latency_ms = {k: v * 1e3 for k, v in warm["latency"].items()}
    gated = not args.smoke and scale == 1.0

    # Correctness gates hold at every scale: a service that recomputes
    # cached work or loses requests is wrong, not slow.
    gate_failures = []
    if verify:
        gate_failures.append(
            f"store verify found {len(verify)} problem(s) after load"
        )
    for phase_name, phase in (("cold", cold), ("warm", warm),
                              ("dedup", dedup)):
        if phase["requests_failed"]:
            gate_failures.append(
                f"{phase_name} phase: {phase['requests_failed']} of "
                f"{phase['requests']} request(s) failed"
            )
    if warm["hit_ratio"] != 1.0:
        ratio = warm["hit_ratio"]
        gate_failures.append(
            f"warm storm hit ratio {ratio:.1%}, expected 100%"
        )
    computed = dedup["server_delta"].get("computed", 0)
    if computed != 1:
        gate_failures.append(
            f"dedup storm ran {computed} computation(s), expected exactly 1"
        )
    # Durability must be on and free on the warm path: the bench service
    # runs with the journal enabled, yet warm-only jobs append nothing,
    # so the 100%-hit storm performs zero journal writes or fsyncs.
    if not journal.get("enabled"):
        gate_failures.append(
            "service bench ran without the write-ahead journal"
        )
    elif journal["warm_records"] != 0:
        gate_failures.append(
            f"warm storm appended {journal['warm_records']} journal "
            f"record(s) ({journal['warm_fsync_batches']} fsync batch(es)); "
            f"the warm path must stay journal-free"
        )
    regressions = compare(
        {"p50_ms": latency_ms["p50"], "p99_ms": latency_ms["p99"]},
        baseline.get("reference_ms"), args.service_tolerance,
    ) if gated else {}

    report = {
        "tier": "service",
        "scale": scale,
        "smoke": args.smoke,
        "tenants": tenants,
        "connections": connections,
        "workers": SERVICE_WORKERS,
        "cold": cold,
        "warm": warm,
        "dedup": dedup,
        "latency_ms": latency_ms,
        "throughput_rps": warm["throughput_rps"],
        "hit_ratio": warm["hit_ratio"],
        "journal": journal,
        "store_verify_problems": len(verify),
        "baseline_reference_ms": baseline.get("reference_ms"),
        "tolerance": args.service_tolerance,
        "regressions": regressions,
        "gate_failures": gate_failures,
        "ok": not regressions and not gate_failures,
    }
    args.service_output.parent.mkdir(parents=True, exist_ok=True)
    with open(args.service_output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")

    print(f"service tier: {tenants} tenant(s) over {connections} "
          f"connection(s), {SERVICE_WORKERS} worker(s)")
    print(f"warm storm : {warm['requests']} requests, "
          f"{warm['throughput_rps']:8.0f} req/s, "
          f"p50 {latency_ms['p50']:6.2f} ms, p99 {latency_ms['p99']:6.2f} ms, "
          f"hit ratio {warm['hit_ratio']:.0%}")
    print(f"dedup storm: {dedup['requests']} concurrent identical "
          f"submissions -> {computed} computation(s), "
          f"{dedup['server_delta'].get('coalesced', 0)} coalesced, "
          f"{dedup['server_delta'].get('warm_hits', 0)} warm")
    if journal.get("enabled"):
        print(f"journal    : {journal['stats']['records']} record(s), "
              f"{journal['stats']['fsync_batches']} fsync batch(es) total; "
              f"warm storm appended {journal['warm_records']}")
    for name, row in regressions.items():
        print(f"{name}: REGRESSED {row['slowdown']:.2f}x "
              f"({row['current']:.2f} vs {row['reference']:.2f} ms)")
    print(f"report written to {args.service_output}")
    for failure in gate_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if regressions:
        print(f"FAIL: {len(regressions)} latency percentile(s) regressed "
              f"more than {args.service_tolerance:.0%}", file=sys.stderr)
    return 1 if (regressions or gate_failures) else 0


# -- harness -----------------------------------------------------------------

def run_benchmarks(
    rounds: int = 5, scale: float = 1.0
) -> Dict[str, Dict[str, float]]:
    """Time each benchmark over ``rounds`` runs.

    Returns ``{name: {"median": s, "min": s}}``.  The median is the headline
    statistic; the *min* feeds the regression gate because it is the least
    noise-contaminated estimator of true cost on a shared host (scheduler
    preemption only ever adds time).  The collector is paused during each
    timed run (and run between them): on this scale, cyclic-GC pauses
    triggered by allocation counts dominate run-to-run variance and would
    gate on collector luck, not engine speed.
    """
    stats: Dict[str, Dict[str, float]] = {}
    gc_was_enabled = gc.isenabled()
    try:
        for name, fn in BENCHMARKS.items():
            for _ in range(3):  # warmup: imports, allocator arenas, caches
                fn(scale)
            times = []
            for _ in range(rounds):
                gc.collect()
                gc.disable()
                start = time.perf_counter()
                fn(scale)
                times.append(time.perf_counter() - start)
                gc.enable()
            stats[name] = {"median": statistics.median(times), "min": min(times)}
    finally:
        if gc_was_enabled:
            gc.enable()
    return stats


def compare(
    current: Dict[str, float],
    reference: Optional[Dict[str, float]],
    tolerance: float,
) -> Dict[str, Dict[str, float]]:
    """Benchmarks whose current stat exceeds reference * (1 + tolerance)."""
    if not reference:
        return {}
    regressions = {}
    for name, cur in current.items():
        ref = reference.get(name)
        if ref is not None and cur > ref * (1.0 + tolerance):
            regressions[name] = {"current": cur, "reference": ref,
                                 "slowdown": cur / ref}
    return regressions


def speedups(
    current: Dict[str, float], seed: Optional[Dict[str, float]]
) -> Dict[str, float]:
    if not seed:
        return {}
    return {
        name: seed[name] / cur
        for name, cur in current.items()
        if name in seed and cur > 0
    }


BASELINE_REF = "bench/baseline"
REPORT_REF = "bench/latest"


def load_baseline(path: Path, store_dir: Optional[Path]) -> Dict:
    """Resolve the baseline: run store first, committed file as fallback.

    With ``--store``, the gate reads its reference timings from the
    content-addressed run store (ref ``bench/baseline``).  A store that
    does not hold one yet is seeded from the committed baseline file --
    the one-shot migration -- so subsequent invocations are pure store
    reads and the baseline is addressable/diffable like every other
    artifact (``repro-io store show bench/baseline``).
    """
    if store_dir is not None:
        from repro.store import RunArtifact, RunStore, StoreError

        store = RunStore(store_dir)
        try:
            entry = store.get_ref(BASELINE_REF)
            if entry is not None:
                return dict(store.get(entry["digest"]).payload)
        except StoreError as exc:
            print(f"store baseline unreadable ({exc}); falling back to file",
                  file=sys.stderr)
        if path.exists():
            with open(path, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
            digest = store.put(RunArtifact.from_bench(baseline))
            store.set_ref(BASELINE_REF, digest,
                          meta={"source": str(path)})
            return baseline
        return {}
    if path.exists():
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    return {}


def _kernel_main(args, rounds: int, scale: float) -> int:
    baseline = load_baseline(args.baseline, args.store)

    stats = run_benchmarks(rounds=rounds, scale=scale)
    medians = {name: s["median"] for name, s in stats.items()}
    mins = {name: s["min"] for name, s in stats.items()}
    gated = not args.smoke and scale == 1.0
    regressions = compare(mins, baseline.get("reference_min"), args.tolerance) \
        if gated else {}
    vs_seed = speedups(medians, baseline.get("seed")) if gated else {}

    report = {
        "rounds": rounds,
        "scale": scale,
        "smoke": args.smoke,
        "median_seconds": medians,
        "min_seconds": mins,
        "baseline_seed_seconds": baseline.get("seed"),
        "baseline_reference_seconds": baseline.get("reference"),
        "baseline_reference_min_seconds": baseline.get("reference_min"),
        "speedup_vs_seed": vs_seed,
        "tolerance": args.tolerance,
        "regressions": regressions,
        "ok": not regressions,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    if args.store is not None:
        from repro.store import RunArtifact, RunStore

        store = RunStore(args.store)
        digest = store.put(RunArtifact.from_bench(report))
        store.set_ref(REPORT_REF, digest, meta={"smoke": args.smoke})
        print(f"report stored as {digest[:12]} ({REPORT_REF})")

    width = max(len(n) for n in medians)
    for name, cur in medians.items():
        line = f"{name:<{width}}  {cur * 1e3:8.3f} ms"
        if name in vs_seed:
            line += f"  ({vs_seed[name]:4.2f}x vs seed)"
        if name in regressions:
            line += f"  REGRESSED {regressions[name]['slowdown']:.2f}x"
        print(line)
    print(f"report written to {args.output}")
    if regressions:
        print(f"FAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.tolerance:.0%}", file=sys.stderr)
        return 1
    return 0


def _scale_main(args, rounds: int, scale: float) -> int:
    try:
        from repro.des.cohort import HAVE_NUMPY
    except ImportError:  # pragma: no cover
        HAVE_NUMPY = False
    if not HAVE_NUMPY:  # pragma: no cover
        print("scale tier skipped: numpy unavailable", file=sys.stderr)
        return 0

    baseline = {}
    if args.scale_baseline.exists():
        with open(args.scale_baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)

    config = scale_config(scale)
    arms = run_scale_arms(rounds, scale)
    crossover = run_crossover_sweep(scale, arms)

    digests = {a["digest"] for a in arms.values()}
    medians = {name: a["median"] for name, a in arms.items()}
    mins = {name: a["min"] for name, a in arms.items()}
    seq = mins["sequential_fast_path"]
    speedup_vs_sequential = {
        name: seq / t for name, t in mins.items() if t > 0
    }

    gated = not args.smoke and scale == 1.0
    regressions = compare(mins, baseline.get("reference_min"),
                          args.scale_tolerance) if gated else {}
    gate_failures = []
    if len(digests) != 1:
        # Equivalence is non-negotiable at any scale: a parallel engine
        # that returns different answers is wrong, not slow.
        gate_failures.append(
            f"engine arms disagree: {len(digests)} distinct digests"
        )
    if gated:
        thread_speedup = speedup_vs_sequential.get("partitioned_thread", 0.0)
        if thread_speedup < SCALE_MIN_SPEEDUP:
            gate_failures.append(
                f"partitioned_thread speedup {thread_speedup:.2f}x is below "
                f"the required {SCALE_MIN_SPEEDUP:.1f}x"
            )

    report = {
        "tier": "scale",
        "rounds": rounds,
        "scale": scale,
        "smoke": args.smoke,
        "config": {
            "ranks": config.ranks,
            "islands": config.islands,
            "rounds": config.rounds,
            "seed": config.seed,
        },
        "arms": arms,
        "digest": next(iter(digests)) if len(digests) == 1 else None,
        "median_seconds": medians,
        "min_seconds": mins,
        "speedup_vs_sequential": speedup_vs_sequential,
        "crossover": crossover,
        "baseline_reference_min_seconds": baseline.get("reference_min"),
        "tolerance": args.scale_tolerance,
        "regressions": regressions,
        "gate_failures": gate_failures,
        "ok": not regressions and not gate_failures,
    }
    args.scale_output.parent.mkdir(parents=True, exist_ok=True)
    with open(args.scale_output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")

    width = max(len(n) for n in mins)
    print(f"scale tier: {config.ranks} ranks x {config.islands} islands "
          f"x {config.rounds} rounds "
          f"({arms['sequential_fast_path']['events']} sequential events)")
    for name, cur in mins.items():
        line = f"{name:<{width}}  {cur * 1e3:10.3f} ms"
        if name != "sequential_fast_path":
            line += f"  ({speedup_vs_sequential[name]:7.2f}x vs sequential)"
        if name in regressions:
            line += f"  REGRESSED {regressions[name]['slowdown']:.2f}x"
        print(line)
    for backend in ("thread", "process"):
        ranks = crossover[f"crossover_ranks_{backend}"]
        print(f"crossover ({backend} backend): "
              + (f"parallel wins from {ranks} ranks" if ranks
                 else "sequential fast path wins everywhere swept"))
    print(f"report written to {args.scale_output}")
    for failure in gate_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if regressions:
        print(f"FAIL: {len(regressions)} scale arm(s) regressed more than "
              f"{args.scale_tolerance:.0%}", file=sys.stderr)
    return 1 if (regressions or gate_failures) else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tier", choices=("kernel", "scale", "service",
                                           "all"),
                        default="kernel",
                        help="which benchmark tier(s) to run")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds per benchmark (median is kept)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload size multiplier (default 1.0; "
                        "--smoke defaults it to 0.02 instead)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="kernel tier: allowed slowdown vs the reference "
                        "(0.25 = 25%%)")
    parser.add_argument("--scale-tolerance", type=float, default=1.0,
                        help="scale tier: allowed slowdown vs the reference. "
                        "Looser than the kernel gate by design: wall times "
                        "on this tier swing ~1.5x with host load, so the "
                        "absolute-time gate only catches order-of-magnitude "
                        "regressions (a cohort arm falling back to scalar is "
                        "~600x); the digest-equality and minimum-speedup "
                        "gates are noise-immune and stay strict")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("--output", type=Path, default=OUTPUT_PATH)
    parser.add_argument("--scale-baseline", type=Path,
                        default=SCALE_BASELINE_PATH,
                        help="committed reference timings for the scale tier")
    parser.add_argument("--scale-output", type=Path, default=SCALE_OUTPUT_PATH,
                        help="scale-tier report path")
    parser.add_argument("--service-baseline", type=Path,
                        default=SERVICE_BASELINE_PATH,
                        help="committed reference latencies for the "
                        "service tier")
    parser.add_argument("--service-output", type=Path,
                        default=SERVICE_OUTPUT_PATH,
                        help="service-tier report path")
    parser.add_argument("--service-tolerance", type=float, default=1.5,
                        help="service tier: allowed p50/p99 slowdown vs the "
                        "reference.  Loose by design -- warm-path latencies "
                        "are sub-millisecond and swing with host load; the "
                        "hit-ratio and compute-exactly-once gates are "
                        "noise-immune and stay strict")
    parser.add_argument(
        "--store", type=Path, default=None, metavar="DIR",
        help="read the kernel baseline from (and record the report into) "
        "the content-addressed run store rooted here, seeding it from "
        "--baseline on first use (e.g. results/store)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads, 1 round, no pass/fail gate")
    args = parser.parse_args(argv)

    rounds, scale = args.rounds, args.scale
    if args.smoke:
        rounds = 1
        if scale is None:
            scale = 0.02
    elif scale is None:
        scale = 1.0

    rc = 0
    if args.tier in ("kernel", "all"):
        rc |= _kernel_main(args, rounds, scale)
    if args.tier in ("scale", "all"):
        rc |= _scale_main(args, rounds, scale)
    if args.tier in ("service", "all"):
        rc |= _service_main(args, rounds, scale)
    return rc


if __name__ == "__main__":
    sys.exit(main())
