#!/usr/bin/env python
"""Kernel microbenchmark regression gate.

Times the simulation-substrate microbenchmarks (the same workloads as
``benchmarks/test_bench_kernel.py``, without the pytest-benchmark
dependency), writes per-benchmark median seconds to ``BENCH_PR1.json``, and
exits nonzero when any benchmark regressed more than ``--tolerance``
(default 25%) against the committed reference in
``benchmarks/BENCH_BASELINE.json``.

The baseline file has three timing sets:

* ``seed``          -- the pre-optimization engine (PR 1's starting point),
                       kept so speedup-vs-seed stays visible in every report;
* ``reference``     -- the optimized engine's medians, for context;
* ``reference_min`` -- the optimized engine's per-benchmark min, which the
                       regression gate compares against (min-vs-min is robust
                       to scheduler noise on shared hosts).

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py          # full gate
    PYTHONPATH=src python benchmarks/check_regression.py --smoke  # machinery only

``--smoke`` shrinks the workloads and skips the pass/fail gate so the test
suite can exercise the harness in milliseconds (see
``tests/benchmarks/test_check_regression.py``).
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_BASELINE.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_PR1.json"

try:  # allow running without PYTHONPATH=src, but never shadow an
    import repro  # noqa: F401  # already-importable repro (e.g. a worktree)
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(REPO_ROOT / "src"))

MiB = 1024 * 1024
KiB = 1024


# -- benchmark workloads (mirror benchmarks/test_bench_kernel.py) ------------

def bench_event_loop_throughput(scale: float = 1.0) -> None:
    from repro.des import Environment

    n = max(1, int(10_000 * scale))
    env = Environment()

    def ticker(env):
        for _ in range(n):
            yield env.timeout(0.001)

    env.process(ticker(env))
    env.run()
    assert env.events_processed >= n


def bench_fair_share_link_many_flows(scale: float = 1.0) -> None:
    from repro.des import Environment, FairShareLink

    n = max(2, int(200 * scale))
    env = Environment()
    link = FairShareLink(env, rate=1e9)

    def sender(env, i):
        yield env.timeout(i * 1e-4)
        yield link.transfer(1e6)

    for i in range(n):
        env.process(sender(env, i))
    env.run()
    assert link.bytes_transferred == n * 1e6


def bench_pfs_write_path(scale: float = 1.0) -> None:
    from repro.cluster import tiny_cluster
    from repro.pfs import build_pfs
    from repro.simulate import run_workload
    from repro.workloads import IORConfig, IORWorkload

    block = max(1, int(4 * scale)) * MiB
    platform = tiny_cluster()
    pfs = build_pfs(platform)
    w = IORWorkload(IORConfig(block_size=block, transfer_size=MiB), 4)
    result = run_workload(platform, pfs, w)
    assert result.bytes_written == 4 * block


def bench_trace_compressor_speed(scale: float = 1.0) -> None:
    from repro.modeling import compress_ops
    from repro.ops import IOOp, OpKind

    steps = max(1, int(50 * scale))
    ops = []
    for _ in range(steps):
        ops.append(IOOp(OpKind.COMPUTE, duration=1.0))
        for i in range(100):
            ops.append(IOOp(OpKind.WRITE, "/f", offset=i * KiB, nbytes=KiB))
        ops.append(IOOp(OpKind.BARRIER))
    compress_ops(ops)


BENCHMARKS: Dict[str, Callable[[float], None]] = {
    "event_loop_throughput": bench_event_loop_throughput,
    "fair_share_link_many_flows": bench_fair_share_link_many_flows,
    "pfs_write_path": bench_pfs_write_path,
    "trace_compressor_speed": bench_trace_compressor_speed,
}


# -- harness -----------------------------------------------------------------

def run_benchmarks(
    rounds: int = 5, scale: float = 1.0
) -> Dict[str, Dict[str, float]]:
    """Time each benchmark over ``rounds`` runs.

    Returns ``{name: {"median": s, "min": s}}``.  The median is the headline
    statistic; the *min* feeds the regression gate because it is the least
    noise-contaminated estimator of true cost on a shared host (scheduler
    preemption only ever adds time).  The collector is paused during each
    timed run (and run between them): on this scale, cyclic-GC pauses
    triggered by allocation counts dominate run-to-run variance and would
    gate on collector luck, not engine speed.
    """
    stats: Dict[str, Dict[str, float]] = {}
    gc_was_enabled = gc.isenabled()
    try:
        for name, fn in BENCHMARKS.items():
            for _ in range(3):  # warmup: imports, allocator arenas, caches
                fn(scale)
            times = []
            for _ in range(rounds):
                gc.collect()
                gc.disable()
                start = time.perf_counter()
                fn(scale)
                times.append(time.perf_counter() - start)
                gc.enable()
            stats[name] = {"median": statistics.median(times), "min": min(times)}
    finally:
        if gc_was_enabled:
            gc.enable()
    return stats


def compare(
    current: Dict[str, float],
    reference: Optional[Dict[str, float]],
    tolerance: float,
) -> Dict[str, Dict[str, float]]:
    """Benchmarks whose current stat exceeds reference * (1 + tolerance)."""
    if not reference:
        return {}
    regressions = {}
    for name, cur in current.items():
        ref = reference.get(name)
        if ref is not None and cur > ref * (1.0 + tolerance):
            regressions[name] = {"current": cur, "reference": ref,
                                 "slowdown": cur / ref}
    return regressions


def speedups(
    current: Dict[str, float], seed: Optional[Dict[str, float]]
) -> Dict[str, float]:
    if not seed:
        return {}
    return {
        name: seed[name] / cur
        for name, cur in current.items()
        if name in seed and cur > 0
    }


BASELINE_REF = "bench/baseline"
REPORT_REF = "bench/latest"


def load_baseline(path: Path, store_dir: Optional[Path]) -> Dict:
    """Resolve the baseline: run store first, committed file as fallback.

    With ``--store``, the gate reads its reference timings from the
    content-addressed run store (ref ``bench/baseline``).  A store that
    does not hold one yet is seeded from the committed baseline file --
    the one-shot migration -- so subsequent invocations are pure store
    reads and the baseline is addressable/diffable like every other
    artifact (``repro-io store show bench/baseline``).
    """
    if store_dir is not None:
        from repro.store import RunArtifact, RunStore, StoreError

        store = RunStore(store_dir)
        try:
            entry = store.get_ref(BASELINE_REF)
            if entry is not None:
                return dict(store.get(entry["digest"]).payload)
        except StoreError as exc:
            print(f"store baseline unreadable ({exc}); falling back to file",
                  file=sys.stderr)
        if path.exists():
            with open(path, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
            digest = store.put(RunArtifact.from_bench(baseline))
            store.set_ref(BASELINE_REF, digest,
                          meta={"source": str(path)})
            return baseline
        return {}
    if path.exists():
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    return {}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds per benchmark (median is kept)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed slowdown vs the reference (0.25 = 25%%)")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("--output", type=Path, default=OUTPUT_PATH)
    parser.add_argument(
        "--store", type=Path, default=None, metavar="DIR",
        help="read the baseline from (and record the report into) the "
        "content-addressed run store rooted here, seeding it from "
        "--baseline on first use (e.g. results/store)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads, 1 round, no pass/fail gate")
    args = parser.parse_args(argv)

    rounds, scale = args.rounds, args.scale
    if args.smoke:
        rounds, scale = 1, 0.02

    baseline = load_baseline(args.baseline, args.store)

    stats = run_benchmarks(rounds=rounds, scale=scale)
    medians = {name: s["median"] for name, s in stats.items()}
    mins = {name: s["min"] for name, s in stats.items()}
    gated = not args.smoke and scale == 1.0
    regressions = compare(mins, baseline.get("reference_min"), args.tolerance) \
        if gated else {}
    vs_seed = speedups(medians, baseline.get("seed")) if gated else {}

    report = {
        "rounds": rounds,
        "scale": scale,
        "smoke": args.smoke,
        "median_seconds": medians,
        "min_seconds": mins,
        "baseline_seed_seconds": baseline.get("seed"),
        "baseline_reference_seconds": baseline.get("reference"),
        "baseline_reference_min_seconds": baseline.get("reference_min"),
        "speedup_vs_seed": vs_seed,
        "tolerance": args.tolerance,
        "regressions": regressions,
        "ok": not regressions,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    if args.store is not None:
        from repro.store import RunArtifact, RunStore

        store = RunStore(args.store)
        digest = store.put(RunArtifact.from_bench(report))
        store.set_ref(REPORT_REF, digest, meta={"smoke": args.smoke})
        print(f"report stored as {digest[:12]} ({REPORT_REF})")

    width = max(len(n) for n in medians)
    for name, cur in medians.items():
        line = f"{name:<{width}}  {cur * 1e3:8.3f} ms"
        if name in vs_seed:
            line += f"  ({vs_seed[name]:4.2f}x vs seed)"
        if name in regressions:
            line += f"  REGRESSED {regressions[name]['slowdown']:.2f}x"
        print(line)
    print(f"report written to {args.output}")
    if regressions:
        print(f"FAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.tolerance:.0%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
