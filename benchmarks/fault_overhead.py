#!/usr/bin/env python
"""Disarmed fault-path overhead gate for the PFS write path.

PR 4 added fault injection and client resilience (per-RPC timeout, retry,
failover) to the data path.  When a scenario declares no faults and no
resilience knobs, the client must take the original RPC body behind a
single boolean check (``PFSClient._resilient``) -- structurally under 2%
of a data RPC.  This gate times the same ``pfs_write_path`` workload as
``benchmarks/check_regression.py`` with resilience **disarmed** and fails
when it falls outside ``--tolerance`` of the committed reference timing
(``BENCH_BASELINE.json``'s noise-aware ``reference_min``), exactly like
the telemetry-off gate.

For context (never gated -- paying for retries under faults is the point
of the feature, only the fault-free cost is a bug) the report also times
the loop with resilience enabled (timeout armed, no faults firing) and
with a fault timeline armed, and prints both ratios.

Usage::

    PYTHONPATH=src python benchmarks/fault_overhead.py           # gate
    PYTHONPATH=src python benchmarks/fault_overhead.py --smoke   # fast
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_BASELINE.json"

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(REPO_ROOT / "src"))

BENCH_NAME = "pfs_write_path"
MiB = 1024 * 1024


def _write_path(scale: float, mode: str) -> None:
    """The exact workload of check_regression's pfs_write_path, in one of
    three configurations: resilience disarmed (the gated default path),
    resilience enabled with no faults, or a fault timeline armed."""
    from repro.cluster import tiny_cluster
    from repro.pfs import build_pfs
    from repro.simulate import run_workload
    from repro.workloads import IORConfig, IORWorkload

    block = max(1, int(4 * scale)) * MiB
    platform = tiny_cluster()
    pfs = build_pfs(platform)
    kwargs = {}
    if mode in ("resilient", "armed"):
        kwargs = dict(rpc_timeout=30.0, rpc_retries=4)
    if mode == "armed":
        from repro.faults import FaultEventSpec, FaultInjector, FaultSpec

        # A short slowdown early in the run: arming machinery plus one
        # inject/revert cycle, without turning the run into a retry storm.
        FaultInjector(platform, pfs, FaultSpec((
            FaultEventSpec(kind="ost_slowdown", target=0, start=0.0,
                           duration=0.005, factor=2.0),
        ))).arm()
    w = IORWorkload(IORConfig(block_size=block, transfer_size=MiB), 4)
    result = run_workload(platform, pfs, w, **kwargs)
    assert result.bytes_written == 4 * block


def time_mode(mode: str, rounds: int, scale: float) -> Dict[str, float]:
    for _ in range(3):  # warmup
        _write_path(scale, mode)
    times = []
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        _write_path(scale, mode)
        times.append(time.perf_counter() - start)
        gc.enable()
    return {"median": statistics.median(times), "min": min(times)}


def reference_seconds() -> Optional[float]:
    """Noise-aware reference min for the write path from the baseline."""
    if BASELINE_PATH.exists():
        with open(BASELINE_PATH, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        return (baseline.get("reference_min") or {}).get(BENCH_NAME)
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed slowdown vs the committed reference "
                        "(host noise dominates the <2%% structural cost)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload, 1 round, no pass/fail gate")
    args = parser.parse_args(argv)

    rounds, scale = args.rounds, args.scale
    if args.smoke:
        rounds, scale = 1, 0.25

    disarmed = time_mode("disarmed", rounds, scale)
    resilient = time_mode("resilient", rounds, scale)
    armed = time_mode("armed", rounds, scale)

    r_ratio = resilient["min"] / disarmed["min"] if disarmed["min"] else float("inf")
    a_ratio = armed["min"] / disarmed["min"] if disarmed["min"] else float("inf")
    print(f"resilience disarmed : {disarmed['min'] * 1e3:8.3f} ms (min of {rounds})")
    print(f"resilience enabled  : {resilient['min'] * 1e3:8.3f} ms "
          f"({r_ratio:.2f}x, informational)")
    print(f"faults armed        : {armed['min'] * 1e3:8.3f} ms "
          f"({a_ratio:.2f}x, informational)")

    gated = not args.smoke and scale == 1.0
    ref = reference_seconds() if gated else None
    if ref is not None:
        slowdown = disarmed["min"] / ref
        print(f"committed reference : {ref * 1e3:8.3f} ms -> disarmed-path "
              f"slowdown {slowdown:.2f}x (tolerance {args.tolerance:.0%})")
        if disarmed["min"] > ref * (1.0 + args.tolerance):
            print("FAIL: fault-free PFS write path regressed beyond "
                  "tolerance", file=sys.stderr)
            return 1
    elif gated:
        print("no committed reference timing found; gate skipped",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
