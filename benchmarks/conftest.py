"""Shared benchmark fixtures.

Every reproduction benchmark runs its experiment exactly once inside
``benchmark.pedantic`` (the experiments are deterministic simulations;
repeating them measures nothing new and would multiply wall time), asserts
the paper's claim is supported, and prints the record so the bench output
doubles as the EXPERIMENTS evidence.
"""

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run one experiment under pytest-benchmark and assert its verdict."""

    def _run(fn, **kwargs):
        record = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
        )
        print()
        print(record.summary())
        assert record.supported, f"{record.id} claim not supported: {record.measured}"
        return record

    return _run
