"""Shared benchmark fixtures.

Every reproduction benchmark runs its experiment exactly once inside
``benchmark.pedantic`` (the experiments are deterministic simulations;
repeating them measures nothing new and would multiply wall time), asserts
the paper's claim is supported, and prints the record so the bench output
doubles as the EXPERIMENTS evidence.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--scale", type=float, default=0.05,
        help="size multiplier for the scale-tier benchmarks "
        "(1.0 = the full 100k-rank scenario)",
    )


@pytest.fixture(scope="module")
def scale(request):
    """Rank-count multiplier for ``test_bench_scale.py``."""
    return request.config.getoption("--scale")


@pytest.fixture
def run_experiment(benchmark):
    """Run one experiment under pytest-benchmark and assert its verdict."""

    def _run(fn, **kwargs):
        record = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
        )
        print()
        print(record.summary())
        assert record.supported, f"{record.id} claim not supported: {record.measured}"
        return record

    return _run
