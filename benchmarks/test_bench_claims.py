"""Benchmarks C1-C10: the paper's quantitative claims.

Each bench reruns the claim experiment on the simulated substrate and
asserts the *shape* of the paper's statement (who wins, roughly by how
much, in which direction); absolute numbers are not expected to match the
authors' testbeds.  Paper-vs-measured values are recorded in
EXPERIMENTS.md.
"""

from repro.experiments import (
    run_c1,
    run_c2,
    run_c3,
    run_c4,
    run_c5,
    run_c6,
    run_c7,
    run_c8,
    run_c9,
    run_c10,
)


def test_compute_storage_gap(run_experiment):
    """C1: compute outgrows storage bandwidth generation over generation."""
    run_experiment(run_c1)


def test_read_write_mix(run_experiment):
    """C2: emerging workloads flip storage from write- to read-dominance
    (Patel et al. [53])."""
    run_experiment(run_c2)


def test_dl_random_small_reads(run_experiment):
    """C3: shuffled DL training reads collapse PFS throughput ([71])."""
    run_experiment(run_c3)


def test_workflow_metadata_intensity(run_experiment):
    """C4: workflows are metadata-intensive, small-transaction ([73])."""
    run_experiment(run_c4)


def test_burst_buffer_absorption(run_experiment):
    """C5: a burst buffer absorbs checkpoint bursts at SSD speed ([33])."""
    run_experiment(run_c5)


def test_ml_beats_linear(run_experiment):
    """C6: learned models predict I/O time better than linear models
    (Schmid & Kunkel [56], Sun et al. [57])."""
    run_experiment(run_c6)


def test_trace_compression(run_experiment):
    """C7: repetitive traces compress drastically with exact replay
    (Hao et al. [15])."""
    run_experiment(run_c7)


def test_trace_extrapolation(run_experiment):
    """C8: small-scale traces extrapolate to larger scales
    (ScalaIOExtrap [16], [17])."""
    run_experiment(run_c8)


def test_collective_vs_independent(run_experiment):
    """C9: collective two-phase I/O beats independent strided writes."""
    run_experiment(run_c9)


def test_interference(run_experiment):
    """C10: co-scheduled jobs interfere through shared storage ([40])."""
    run_experiment(run_c10)
