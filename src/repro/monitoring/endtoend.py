"""End-to-end I/O monitoring and correlation.

Paper Sec. IV-A-2: "recent work has proposed to develop all-encompassing
and cohesive monitoring systems which can capture *end-to-end I/O
behavior* of jobs at each step along their I/O path" (UMAMI [44], TOKIO
[42], Yang et al. [45]).

The :class:`EndToEndMonitor` bundles the job-level profiler, the
server-side sampler, the metadata event monitor and the scheduler log for
one experiment, and produces an :class:`EndToEndReport` that joins them:
per-job I/O metrics side by side with the storage-system state during the
job's time window -- the UMAMI "metrics panel".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.monitoring.fsmonitor import FSMonitor
from repro.monitoring.profiler import DarshanProfiler, JobProfile
from repro.monitoring.scheduler_log import JobRecord, SchedulerLog
from repro.monitoring.server_stats import ServerStatsCollector
from repro.pfs.filesystem import ParallelFileSystem


@dataclass
class JobWindowMetrics:
    """One job's row in the end-to-end panel."""

    job_id: int
    name: str
    duration: float
    bytes_written: int
    bytes_read: int
    io_fraction: float
    concurrent_jobs: int
    mean_oss_utilization: float
    peak_oss_queue: int
    metadata_events: int


@dataclass
class EndToEndReport:
    """Joined view over all monitoring sources for one experiment."""

    rows: List[JobWindowMetrics] = field(default_factory=list)

    def row_for(self, job_id: int) -> JobWindowMetrics:
        for row in self.rows:
            if row.job_id == job_id:
                return row
        raise KeyError(f"no row for job {job_id}")

    def correlation(self, x_field: str, y_field: str) -> float:
        """Pearson correlation between two panel columns across jobs."""
        if len(self.rows) < 2:
            raise ValueError("need at least two jobs to correlate")
        x = np.array([getattr(r, x_field) for r in self.rows], dtype=float)
        y = np.array([getattr(r, y_field) for r in self.rows], dtype=float)
        if x.std() == 0 or y.std() == 0:
            return 0.0
        return float(np.corrcoef(x, y)[0, 1])

    def panel(self) -> str:
        """UMAMI-style text panel."""
        header = (
            f"{'job':>4} {'name':<16} {'dur(s)':>8} {'GiB W':>8} {'GiB R':>8} "
            f"{'io%':>5} {'co-jobs':>7} {'ossU':>5} {'peakQ':>5} {'mdEv':>6}"
        )
        lines = [header, "-" * len(header)]
        for r in self.rows:
            lines.append(
                f"{r.job_id:>4} {r.name:<16.16} {r.duration:>8.2f} "
                f"{r.bytes_written / 2**30:>8.3f} {r.bytes_read / 2**30:>8.3f} "
                f"{r.io_fraction:>5.1%} {r.concurrent_jobs:>7} "
                f"{r.mean_oss_utilization:>5.2f} {r.peak_oss_queue:>5} "
                f"{r.metadata_events:>6}"
            )
        return "\n".join(lines)


class EndToEndMonitor:
    """All monitoring sources for one experiment, wired together.

    Usage::

        e2e = EndToEndMonitor(pfs)
        e2e.start()
        profiler = e2e.new_job_profiler("ior")       # pass as run observer
        result = run_workload(..., observers=[profiler])
        e2e.finish_job(profiler, result)             # close the job record
        report = e2e.report()
    """

    def __init__(self, pfs: ParallelFileSystem, sample_interval: float = 0.5):
        self.pfs = pfs
        self.server_stats = ServerStatsCollector(pfs, interval=sample_interval)
        self.fsmonitor = FSMonitor(pfs)
        self.scheduler = SchedulerLog()
        self._profiles: Dict[int, JobProfile] = {}
        self._active: Dict[int, DarshanProfiler] = {}
        self._job_windows: Dict[int, tuple] = {}

    def start(self) -> None:
        self.server_stats.start()

    def new_job_profiler(
        self, name: str, user: str = "user", n_nodes: int = 1, n_ranks: int = 1
    ) -> DarshanProfiler:
        """Open a job record and return its profiler (use as observer)."""
        now = self.pfs.env.now
        job = self.scheduler.submit(
            name=name, user=user, n_nodes=n_nodes, n_ranks=n_ranks, submit_time=now
        )
        profiler = DarshanProfiler(job_name=name)
        profiler.job_id = job.job_id  # type: ignore[attr-defined]
        self._active[job.job_id] = profiler
        return profiler

    def finish_job(self, profiler: DarshanProfiler, n_ranks: Optional[int] = None) -> JobProfile:
        """Close the job's scheduler record and store its profile."""
        job_id = getattr(profiler, "job_id", None)
        if job_id is None or job_id not in self._active:
            raise ValueError("profiler was not created by new_job_profiler")
        now = self.pfs.env.now
        self.scheduler.complete(job_id, end_time=now)
        job = self.scheduler.job(job_id)
        profile = profiler.profile(n_ranks=n_ranks)
        self._profiles[job_id] = profile
        self._job_windows[job_id] = (job.start_time, now)
        del self._active[job_id]
        return profile

    # -- the join -------------------------------------------------------------------
    def report(self) -> EndToEndReport:
        report = EndToEndReport()
        for job_id, profile in sorted(self._profiles.items()):
            t0, t1 = self._job_windows[job_id]
            job = self.scheduler.job(job_id)
            oss_samples = [
                s
                for s in self.server_stats.samples
                if s.kind == "oss" and t0 <= s.time <= t1
            ]
            mean_util = (
                float(np.mean([s.utilization for s in oss_samples]))
                if oss_samples
                else 0.0
            )
            peak_q = max((s.queue_length for s in oss_samples), default=0)
            md_events = sum(1 for e in self.fsmonitor.events if t0 <= e.time <= t1)
            report.rows.append(
                JobWindowMetrics(
                    job_id=job_id,
                    name=job.name,
                    duration=t1 - t0,
                    bytes_written=profile.job.bytes_written,
                    bytes_read=profile.job.bytes_read,
                    io_fraction=profile.io_fraction(),
                    concurrent_jobs=len(self.scheduler.concurrent_with(job_id)),
                    mean_oss_utilization=mean_util,
                    peak_oss_queue=peak_q,
                    metadata_events=md_events,
                )
            )
        return report
