"""Cross-job I/O log mining (IOMiner-like).

Wang et al.'s IOMiner [49] is a "large-scale analytics framework for
gaining knowledge from I/O logs": it mines fleets of Darshan logs for
platform-level insight -- who moves the bytes, which jobs are small-file
offenders, whether the platform is read- or write-dominated.  The
:class:`ProfileMiner` does the same over collections of
:class:`~repro.monitoring.profiler.JobProfile` objects, answering exactly
the questions the paper's Sec. V raises at fleet scale.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.monitoring.profiler import JobProfile
from repro.ops import SIZE_BUCKETS


class ProfileMiner:
    """Queries over a fleet of job profiles."""

    def __init__(self, profiles: Sequence[JobProfile] = ()):
        self.profiles: List[JobProfile] = list(profiles)

    def add(self, profile: JobProfile) -> None:
        self.profiles.append(profile)

    def __len__(self) -> int:
        return len(self.profiles)

    def _require_nonempty(self) -> None:
        if not self.profiles:
            raise ValueError("no profiles to mine")

    # -- fleet-level aggregates ---------------------------------------------------
    def total_bytes(self) -> Dict[str, int]:
        self._require_nonempty()
        return {
            "read": sum(p.job.bytes_read for p in self.profiles),
            "written": sum(p.job.bytes_written for p in self.profiles),
        }

    def platform_read_share(self) -> float:
        """Fraction of fleet traffic that is reads (the Patel question)."""
        totals = self.total_bytes()
        moved = totals["read"] + totals["written"]
        if moved == 0:
            return 0.0
        return totals["read"] / moved

    def write_intensive_fraction(self) -> float:
        """Fraction of *jobs* that write more than they read."""
        self._require_nonempty()
        return sum(1 for p in self.profiles if p.job.write_intensive()) / len(
            self.profiles
        )

    def aggregate_size_histogram(self, direction: str = "read") -> List[int]:
        """Fleet-wide access-size histogram (Darshan bucket layout)."""
        self._require_nonempty()
        out = [0] * (len(SIZE_BUCKETS) + 1)
        for p in self.profiles:
            hist = (
                p.job.read_size_hist if direction == "read" else p.job.write_size_hist
            )
            for i, v in enumerate(hist):
                out[i] += v
        return out

    # -- rankings and screens --------------------------------------------------------
    def top_talkers(self, n: int = 5, by: str = "bytes") -> List[JobProfile]:
        """Jobs moving the most data (or doing the most metadata)."""
        self._require_nonempty()
        if by == "bytes":
            key: Callable = lambda p: p.job.bytes_read + p.job.bytes_written
        elif by == "meta":
            key = lambda p: p.job.meta_ops
        elif by == "io_time":
            key = lambda p: p.job.io_time
        else:
            raise ValueError(f"unknown ranking {by!r}")
        return sorted(self.profiles, key=key, reverse=True)[:n]

    def small_access_jobs(self, threshold: int = 64 * 1024) -> List[JobProfile]:
        """Jobs whose average data access is below ``threshold`` bytes.

        The small-transaction offenders that stress parallel file systems
        (Sec. V's emerging-workload signature).
        """
        self._require_nonempty()
        out = []
        for p in self.profiles:
            ops = p.job.reads + p.job.writes
            if ops == 0:
                continue
            avg = (p.job.bytes_read + p.job.bytes_written) / ops
            if avg < threshold:
                out.append(p)
        return out

    def metadata_heavy_jobs(self, ops_per_mib: float = 1.0) -> List[JobProfile]:
        """Jobs exceeding ``ops_per_mib`` metadata ops per MiB moved."""
        self._require_nonempty()
        out = []
        for p in self.profiles:
            moved = (p.job.bytes_read + p.job.bytes_written) / 2**20
            if moved == 0:
                if p.job.meta_ops > 0:
                    out.append(p)
                continue
            if p.job.meta_ops / moved > ops_per_mib:
                out.append(p)
        return out

    def correlate(self, x_metric: str, y_metric: str) -> float:
        """Pearson correlation between two per-job metrics.

        Metrics: ``duration``, ``bytes``, ``meta_ops``, ``io_time``,
        ``n_ranks``.
        """
        self._require_nonempty()
        if len(self.profiles) < 2:
            raise ValueError("need at least two profiles to correlate")

        def value(p: JobProfile, metric: str) -> float:
            if metric == "duration":
                return p.duration
            if metric == "bytes":
                return float(p.job.bytes_read + p.job.bytes_written)
            if metric == "meta_ops":
                return float(p.job.meta_ops)
            if metric == "io_time":
                return p.job.io_time
            if metric == "n_ranks":
                return float(p.n_ranks)
            raise ValueError(f"unknown metric {metric!r}")

        x = np.array([value(p, x_metric) for p in self.profiles])
        y = np.array([value(p, y_metric) for p in self.profiles])
        if x.std() == 0 or y.std() == 0:
            return 0.0
        return float(np.corrcoef(x, y)[0, 1])

    def report(self) -> str:
        self._require_nonempty()
        totals = self.total_bytes()
        lines = [
            f"fleet: {len(self.profiles)} jobs, "
            f"{totals['read'] / 2**30:.2f} GiB read / "
            f"{totals['written'] / 2**30:.2f} GiB written "
            f"(read share {self.platform_read_share():.0%})",
            f"write-intensive jobs: {self.write_intensive_fraction():.0%}",
            "top talkers by bytes:",
        ]
        for p in self.top_talkers(3):
            moved = (p.job.bytes_read + p.job.bytes_written) / 2**20
            lines.append(f"  {p.job_name:<20} {moved:>10.1f} MiB, "
                         f"{p.job.meta_ops} meta ops")
        offenders = self.small_access_jobs()
        lines.append(
            f"small-access jobs (<64 KiB avg): "
            f"{', '.join(p.job_name for p in offenders) or 'none'}"
        )
        return "\n".join(lines)
