"""Recorder-like multi-level tracer.

Recorder [25], [26] captures "I/O calls at multiple layers of the I/O
stack" -- HDF5, MPI-IO and POSIX -- so analysts can see how one high-level
operation decomposes down the stack.  The :class:`RecorderTracer` simply
collects every record from every layer it is attached to (attach it via
:meth:`repro.iostack.stack.RankIO.add_observer`, which wires all layers at
once); :class:`TraceArchive` provides the query and persistence surface.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional

from repro.ops import IORecord, OpKind


class TraceArchive:
    """An ordered collection of trace records with query helpers."""

    def __init__(self, records: Optional[Iterable[IORecord]] = None):
        self.records: List[IORecord] = list(records or [])

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def append(self, rec: IORecord) -> None:
        self.records.append(rec)

    # -- queries ----------------------------------------------------------------
    def layers(self) -> List[str]:
        return sorted({r.layer for r in self.records})

    def ranks(self) -> List[int]:
        return sorted({r.rank for r in self.records})

    def at_layer(self, layer: str) -> "TraceArchive":
        return TraceArchive(r for r in self.records if r.layer == layer)

    def for_rank(self, rank: int) -> "TraceArchive":
        return TraceArchive(r for r in self.records if r.rank == rank)

    def for_path(self, path: str) -> "TraceArchive":
        return TraceArchive(r for r in self.records if r.path == path)

    def data_ops(self) -> "TraceArchive":
        return TraceArchive(r for r in self.records if r.kind.is_data)

    def sorted_by_time(self) -> "TraceArchive":
        return TraceArchive(sorted(self.records, key=lambda r: (r.start, r.rank)))

    def op_histogram(self) -> Dict[str, int]:
        return dict(Counter(f"{r.layer}:{r.kind.value}" for r in self.records))

    def duration(self) -> float:
        if not self.records:
            return 0.0
        return max(r.end for r in self.records) - min(r.start for r in self.records)

    def bytes_moved(self) -> int:
        return sum(r.nbytes for r in self.records if r.kind.is_data)

    def amplification(self, top: str, bottom: str) -> float:
        """Bytes at the ``bottom`` layer per byte at the ``top`` layer.

        >1 means the stack amplified traffic (e.g. chunked HDF5 reads or
        data sieving's read-modify-write); <1 means it coalesced (e.g.
        collective buffering deduplicating overlapping requests).
        """
        top_bytes = self.at_layer(top).bytes_moved()
        bottom_bytes = self.at_layer(bottom).bytes_moved()
        if top_bytes == 0:
            raise ValueError(f"no data traffic at layer {top!r}")
        return bottom_bytes / top_bytes

    def summary(self) -> str:
        lines = [
            f"trace: {len(self.records)} records, {self.duration():.3f}s, "
            f"layers {self.layers()}, ranks {len(self.ranks())}"
        ]
        for key, count in sorted(self.op_histogram().items()):
            lines.append(f"  {key}: {count}")
        return "\n".join(lines)


class RecorderTracer:
    """Observer that archives every record it sees (all layers).

    Also assigns a monotonically increasing capture index so that
    same-timestamp records keep their observation order.
    """

    def __init__(self):
        self.archive = TraceArchive()
        self._seq = 0

    def __call__(self, rec: IORecord) -> None:
        rec.extra.setdefault("seq", self._seq)
        self._seq += 1
        self.archive.append(rec)

    def __len__(self) -> int:
        return len(self.archive)

    @property
    def records(self) -> List[IORecord]:
        return self.archive.records
