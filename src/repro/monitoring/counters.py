"""Darshan-style counter sets.

Darshan [22] characterises a job with per-(rank, file) counter records --
operation counts, byte totals, access-size histograms, sequentiality
measures, and timing aggregates.  :class:`FileCounters` mirrors that
record; :class:`JobCounters` is the job-level roll-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.ops import IORecord, OpKind, SIZE_BUCKETS, size_bucket


@dataclass
class FileCounters:
    """Counters for one (rank, file) pair."""

    path: str
    rank: int
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    meta_ops: int = 0
    opens: int = 0
    stats_calls: int = 0
    fsyncs: int = 0
    #: Consecutive accesses (offset == previous end): Darshan's SEQ/CONSEC.
    seq_reads: int = 0
    seq_writes: int = 0
    #: Access-size histograms, one bucket list per direction.
    read_size_hist: list = field(default_factory=lambda: [0] * (len(SIZE_BUCKETS) + 1))
    write_size_hist: list = field(default_factory=lambda: [0] * (len(SIZE_BUCKETS) + 1))
    max_byte_read: int = 0
    max_byte_written: int = 0
    read_time: float = 0.0
    write_time: float = 0.0
    meta_time: float = 0.0
    first_op_time: Optional[float] = None
    last_op_time: float = 0.0
    #: Stripe layout captured from OPEN records (Darshan's Lustre module
    #: records the same); lets profile-driven synthesis recreate layouts.
    stripe_count: Optional[int] = None
    stripe_size: Optional[int] = None
    _last_read_end: Optional[int] = None
    _last_write_end: Optional[int] = None

    def observe(self, rec: IORecord) -> None:
        """Fold one observed operation into the counters."""
        if self.first_op_time is None:
            self.first_op_time = rec.start
        self.last_op_time = max(self.last_op_time, rec.end)
        if rec.kind == OpKind.READ:
            self.reads += 1
            self.bytes_read += rec.nbytes
            self.read_time += rec.duration
            self.read_size_hist[size_bucket(rec.nbytes)] += 1
            self.max_byte_read = max(self.max_byte_read, rec.offset + rec.nbytes)
            if self._last_read_end is not None and rec.offset == self._last_read_end:
                self.seq_reads += 1
            self._last_read_end = rec.offset + rec.nbytes
        elif rec.kind == OpKind.WRITE:
            self.writes += 1
            self.bytes_written += rec.nbytes
            self.write_time += rec.duration
            self.write_size_hist[size_bucket(rec.nbytes)] += 1
            self.max_byte_written = max(self.max_byte_written, rec.offset + rec.nbytes)
            if self._last_write_end is not None and rec.offset == self._last_write_end:
                self.seq_writes += 1
            self._last_write_end = rec.offset + rec.nbytes
        else:
            self.meta_ops += 1
            self.meta_time += rec.duration
            if rec.kind == OpKind.OPEN or rec.kind == OpKind.CREATE:
                self.opens += 1
                if "stripe_count" in rec.extra:
                    self.stripe_count = rec.extra["stripe_count"]
                    self.stripe_size = rec.extra.get("stripe_size")
            elif rec.kind == OpKind.STAT:
                self.stats_calls += 1
            elif rec.kind == OpKind.FSYNC:
                self.fsyncs += 1

    # -- derived metrics ------------------------------------------------------
    @property
    def total_ops(self) -> int:
        return self.reads + self.writes + self.meta_ops

    def seq_read_fraction(self) -> float:
        """Fraction of reads that continued the previous one."""
        return self.seq_reads / self.reads if self.reads else 0.0

    def seq_write_fraction(self) -> float:
        return self.seq_writes / self.writes if self.writes else 0.0

    def avg_read_size(self) -> float:
        return self.bytes_read / self.reads if self.reads else 0.0

    def avg_write_size(self) -> float:
        return self.bytes_written / self.writes if self.writes else 0.0

    def to_dict(self) -> Dict[str, Any]:
        d = {
            k: v
            for k, v in self.__dict__.items()
            if not k.startswith("_")
        }
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FileCounters":
        fc = cls(path=d["path"], rank=d["rank"])
        for k, v in d.items():
            if hasattr(fc, k):
                setattr(fc, k, v)
        return fc


@dataclass
class JobCounters:
    """Job-level roll-up over every (rank, file) record."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    meta_ops: int = 0
    read_time: float = 0.0
    write_time: float = 0.0
    meta_time: float = 0.0
    files_accessed: int = 0
    read_size_hist: list = field(default_factory=lambda: [0] * (len(SIZE_BUCKETS) + 1))
    write_size_hist: list = field(default_factory=lambda: [0] * (len(SIZE_BUCKETS) + 1))

    def fold(self, fc: FileCounters) -> None:
        self.reads += fc.reads
        self.writes += fc.writes
        self.bytes_read += fc.bytes_read
        self.bytes_written += fc.bytes_written
        self.meta_ops += fc.meta_ops
        self.read_time += fc.read_time
        self.write_time += fc.write_time
        self.meta_time += fc.meta_time
        self.files_accessed += 1
        for i, v in enumerate(fc.read_size_hist):
            self.read_size_hist[i] += v
        for i, v in enumerate(fc.write_size_hist):
            self.write_size_hist[i] += v

    @property
    def io_time(self) -> float:
        return self.read_time + self.write_time + self.meta_time

    def read_write_ratio(self) -> float:
        """Bytes read per byte written (inf for read-only jobs)."""
        if self.bytes_written == 0:
            return float("inf") if self.bytes_read else 0.0
        return self.bytes_read / self.bytes_written

    def write_intensive(self) -> bool:
        """The traditional assumption the paper challenges (Sec. V)."""
        return self.bytes_written > self.bytes_read
