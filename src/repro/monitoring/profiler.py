"""Darshan-like job-level I/O profiler.

Attach a :class:`DarshanProfiler` as an observer on a workload run (it is a
callable accepting :class:`~repro.ops.IORecord`); afterwards,
:meth:`DarshanProfiler.profile` yields the :class:`JobProfile` -- per-file
counters plus the job roll-up -- which is the input to
profile-driven workload synthesis (:mod:`repro.wgen.from_profile`) and to
the statistics/modeling phase (paper Fig. 4's arrow from phase 1 to 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.monitoring.counters import FileCounters, JobCounters
from repro.ops import IORecord, SIZE_BUCKETS


@dataclass
class JobProfile:
    """The output of one profiled job."""

    job_name: str
    n_ranks: int
    duration: float
    per_file: Dict[Tuple[str, int], FileCounters]
    job: JobCounters

    # -- queries ---------------------------------------------------------------
    def files(self) -> List[str]:
        return sorted({path for path, _ in self.per_file})

    def counters_for_file(self, path: str) -> FileCounters:
        """Counters for ``path`` summed over ranks."""
        total = FileCounters(path=path, rank=-1)
        found = False
        for (p, _), fc in self.per_file.items():
            if p != path:
                continue
            found = True
            total.reads += fc.reads
            total.writes += fc.writes
            total.bytes_read += fc.bytes_read
            total.bytes_written += fc.bytes_written
            total.meta_ops += fc.meta_ops
            total.seq_reads += fc.seq_reads
            total.seq_writes += fc.seq_writes
            total.max_byte_read = max(total.max_byte_read, fc.max_byte_read)
            total.max_byte_written = max(total.max_byte_written, fc.max_byte_written)
            for i, v in enumerate(fc.read_size_hist):
                total.read_size_hist[i] += v
            for i, v in enumerate(fc.write_size_hist):
                total.write_size_hist[i] += v
        if not found:
            raise KeyError(f"no counters for {path!r}")
        return total

    def io_fraction(self) -> float:
        """Fraction of job wall time spent in I/O (summed over ranks)."""
        if self.duration <= 0 or self.n_ranks <= 0:
            return 0.0
        return min(1.0, self.job.io_time / (self.duration * self.n_ranks))

    def dominant_access_size(self, direction: str = "write") -> int:
        """Upper bound (bytes) of the busiest access-size bucket."""
        hist = (
            self.job.write_size_hist if direction == "write" else self.job.read_size_hist
        )
        if not any(hist):
            return 0
        idx = max(range(len(hist)), key=lambda i: hist[i])
        return SIZE_BUCKETS[idx] if idx < len(SIZE_BUCKETS) else SIZE_BUCKETS[-1] * 10

    def report(self) -> str:
        """darshan-parser-style text report."""
        j = self.job
        lines = [
            f"# job: {self.job_name}  ranks: {self.n_ranks}  runtime: {self.duration:.3f}s",
            f"# files accessed: {j.files_accessed}",
            f"# total bytes: read {j.bytes_read}  written {j.bytes_written}",
            f"# total ops: read {j.reads}  write {j.writes}  meta {j.meta_ops}",
            f"# I/O time: read {j.read_time:.3f}s  write {j.write_time:.3f}s  "
            f"meta {j.meta_time:.3f}s  ({self.io_fraction():.1%} of job)",
            "#",
            "# per-file (summed over ranks):",
        ]
        for path in self.files():
            fc = self.counters_for_file(path)
            lines.append(
                f"  {path}: R {fc.reads} ops/{fc.bytes_read} B "
                f"(seq {fc.seq_read_fraction():.0%}), "
                f"W {fc.writes} ops/{fc.bytes_written} B "
                f"(seq {fc.seq_write_fraction():.0%}), meta {fc.meta_ops}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_name": self.job_name,
            "n_ranks": self.n_ranks,
            "duration": self.duration,
            "records": [fc.to_dict() for fc in self.per_file.values()],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "JobProfile":
        per_file: Dict[Tuple[str, int], FileCounters] = {}
        job = JobCounters()
        for rec in d["records"]:
            fc = FileCounters.from_dict(rec)
            per_file[(fc.path, fc.rank)] = fc
            job.fold(fc)
        return cls(
            job_name=d["job_name"],
            n_ranks=d["n_ranks"],
            duration=d["duration"],
            per_file=per_file,
            job=job,
        )


class DarshanProfiler:
    """Accumulates counters from observed records.

    Parameters
    ----------
    job_name:
        Label stored in the profile.
    layer:
        Which stack layer to profile (``"posix"`` matches Darshan's
        default POSIX module; Darshan's MPI-IO module corresponds to
        ``"mpiio"``).
    """

    def __init__(self, job_name: str = "job", layer: str = "posix"):
        self.job_name = job_name
        self.layer = layer
        self._per_file: Dict[Tuple[str, int], FileCounters] = {}
        self._t_first: Optional[float] = None
        self._t_last: float = 0.0
        self.records_seen = 0

    def __call__(self, rec: IORecord) -> None:
        """Observer entry point: feed one record."""
        if rec.layer != self.layer:
            return
        self.records_seen += 1
        if self._t_first is None:
            self._t_first = rec.start
        self._t_last = max(self._t_last, rec.end)
        key = (rec.path, rec.rank)
        fc = self._per_file.get(key)
        if fc is None:
            fc = FileCounters(path=rec.path, rank=rec.rank)
            self._per_file[key] = fc
        fc.observe(rec)

    def profile(self, n_ranks: Optional[int] = None) -> JobProfile:
        """Finalise and return the job profile."""
        job = JobCounters()
        for fc in self._per_file.values():
            job.fold(fc)
        ranks = n_ranks
        if ranks is None:
            ranks = (
                max((r for _, r in self._per_file), default=-1) + 1
            ) or 1
        duration = (self._t_last - self._t_first) if self._t_first is not None else 0.0
        return JobProfile(
            job_name=self.job_name,
            n_ranks=ranks,
            duration=duration,
            per_file=dict(self._per_file),
            job=job,
        )
