"""Server-side statistics collection.

Paper Sec. IV-A-2: "storage and system administrators can collect
additional *server-side statistics* of the file system, e.g., load on the
servers and storage devices".  The :class:`ServerStatsCollector` runs a
sampling process inside the simulation that periodically records per-server
queue lengths, utilisation and byte counters -- the data source for
storage-system-level analyses (Patel et al. [53], Paul et al. [54]) and
for the end-to-end correlation of :mod:`repro.monitoring.endtoend`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.pfs.filesystem import ParallelFileSystem


@dataclass(frozen=True)
class ServerSample:
    """One sampling instant for one server."""

    time: float
    server: str
    kind: str  # "mds" | "oss"
    queue_length: int
    in_service: int
    utilization: float
    bytes_read: int
    bytes_written: int
    ops: int


class ServerStatsCollector:
    """Periodic sampler over a file system's servers.

    Parameters
    ----------
    pfs:
        The file system to observe.
    interval:
        Sampling period in simulated seconds.

    Start with :meth:`start` (spawns the sampling process); samples
    accumulate until the simulation ends.
    """

    def __init__(self, pfs: ParallelFileSystem, interval: float = 1.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.pfs = pfs
        self.interval = interval
        self.samples: List[ServerSample] = []
        self._started = False

    def start(self) -> None:
        """Spawn the sampling process (idempotent)."""
        if self._started:
            return
        self._started = True
        self.pfs.env.process(self._sample_loop())

    def _take_sample(self) -> None:
        now = self.pfs.env.now
        for mds, node in self.pfs.mds_servers:
            self.samples.append(
                ServerSample(
                    time=now,
                    server=node,
                    kind="mds",
                    queue_length=mds.queue_length,
                    in_service=mds.in_service,
                    utilization=mds.utilization(),
                    bytes_read=0,
                    bytes_written=0,
                    ops=mds.total_ops,
                )
            )
        for oss, node in self.pfs.oss_servers:
            self.samples.append(
                ServerSample(
                    time=now,
                    server=node,
                    kind="oss",
                    queue_length=oss.queue_length,
                    in_service=oss.in_service,
                    utilization=oss.utilization(),
                    bytes_read=oss.stats.bytes_read,
                    bytes_written=oss.stats.bytes_written,
                    ops=oss.stats.ops,
                )
            )

    def _sample_loop(self):
        while True:
            self._take_sample()
            yield self.pfs.env.timeout(self.interval)

    # -- analysis ------------------------------------------------------------------
    def for_server(self, server: str) -> List[ServerSample]:
        return [s for s in self.samples if s.server == server]

    def servers(self) -> List[str]:
        return sorted({s.server for s in self.samples})

    def timeline(self, server: str, field: str) -> np.ndarray:
        """(time, value) array of one field for one server."""
        rows = [(s.time, getattr(s, field)) for s in self.for_server(server)]
        return np.array(rows, dtype=float)

    def throughput_timeline(self, server: str) -> np.ndarray:
        """(time, bytes/second) computed from cumulative byte counters."""
        rows = self.for_server(server)
        if len(rows) < 2:
            return np.zeros((0, 2))
        out = []
        for a, b in zip(rows, rows[1:]):
            dt = b.time - a.time
            if dt <= 0:
                continue
            moved = (b.bytes_read + b.bytes_written) - (a.bytes_read + a.bytes_written)
            out.append((b.time, moved / dt))
        return np.array(out)

    def peak_queue_length(self, kind: Optional[str] = None) -> int:
        relevant = [s for s in self.samples if kind is None or s.kind == kind]
        return max((s.queue_length for s in relevant), default=0)

    def mean_utilization(self, server: str) -> float:
        rows = self.for_server(server)
        if not rows:
            return 0.0
        return float(np.mean([s.utilization for s in rows]))

    def load_imbalance(self, kind: str = "oss") -> float:
        """max/mean of final per-server op counts (1.0 = perfectly balanced).

        The metric I/O load-balancing work (Paul et al. [29], iez [46])
        optimises.
        """
        finals = {}
        for s in self.samples:
            if s.kind == kind:
                finals[s.server] = s.ops
        if not finals:
            return 1.0
        values = np.array(list(finals.values()), dtype=float)
        if values.mean() == 0:
            return 1.0
        return float(values.max() / values.mean())
