"""Access-pattern feature extraction from op streams and traces.

The paper's feedback loop (Fig. 4) feeds monitoring output back into
evaluation-tool input; this module is the monitoring-side half of that
edge.  :func:`access_features` reduces any operation stream -- intended
ops (:class:`~repro.ops.IOOp`), observed trace records
(:class:`~repro.ops.IORecord`, timing dropped) or a whole
:class:`~repro.monitoring.tracer.TraceArchive` -- to a fixed, order-
insensitive feature vector: op-kind mix, read/write volumes, a
Darshan-style transfer-size histogram, sequentiality, file-population
shape and rank balance.  :func:`repro.modeling.trace_distance` compares
two such vectors (plus loop structure) and
:mod:`repro.wgen.synth` searches the workload grammar by that distance.

Every feature is a float and the dict always contains exactly
:data:`FEATURE_NAMES`, so vectors from different traces line up
positionally for modeling code.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Union

from repro.ops import IOOp, IORecord, OpKind, SIZE_BUCKETS, size_bucket

#: Fixed key set of :func:`access_features`, in output order.
FEATURE_NAMES = (
    [f"mix_{kind.value}" for kind in OpKind]
    + ["read_fraction", "meta_fraction", "bytes_read", "bytes_written",
       "read_write_byte_ratio"]
    + [f"size_hist_{i}" for i in range(len(SIZE_BUCKETS) + 1)]
    + ["sequential_fraction", "mean_transfer", "n_files", "fpp_fraction",
       "rank_balance_cv", "ops_per_rank"]
)


def _as_ops(stream: Iterable[Union[IOOp, IORecord]]) -> List[IOOp]:
    ops: List[IOOp] = []
    for item in stream:
        if isinstance(item, IORecord):
            ops.append(item.to_op())
        elif isinstance(item, IOOp):
            ops.append(item)
        else:
            raise TypeError(
                f"expected IOOp or IORecord, got {type(item).__name__}"
            )
    return ops


def access_features(stream: Iterable[Union[IOOp, IORecord]]) -> Dict[str, float]:
    """Reduce an op/record stream to a fixed access-pattern feature vector.

    Accepts any iterable of :class:`IOOp` and/or :class:`IORecord` (mixed
    is fine; records are projected to ops, dropping timing).  An empty
    stream yields the all-zero vector.  Fractions are in [0, 1]; byte
    totals are raw; ``rank_balance_cv`` is the coefficient of variation
    of per-rank op counts (0 = perfectly balanced).
    """
    ops = _as_ops(stream)
    features = {name: 0.0 for name in FEATURE_NAMES}
    if not ops:
        return features

    n = len(ops)
    kind_counts: Dict[OpKind, int] = defaultdict(int)
    rank_counts: Dict[int, int] = defaultdict(int)
    size_hist = [0] * (len(SIZE_BUCKETS) + 1)
    bytes_read = 0
    bytes_written = 0
    n_data = 0
    n_meta = 0
    n_sequential = 0
    transfer_total = 0
    files = set()
    # Per-(path, kind) cursor: a data op is "sequential" when it starts
    # exactly where that stream's previous op on the file ended.
    cursors: Dict[tuple, int] = {}

    for op in ops:
        kind_counts[op.kind] += 1
        rank_counts[op.rank] += 1
        if op.path:
            files.add(op.path)
        if op.kind.is_metadata:
            n_meta += 1
        if op.kind.is_data:
            n_data += 1
            transfer_total += op.nbytes
            size_hist[size_bucket(op.nbytes)] += 1
            if op.kind is OpKind.READ:
                bytes_read += op.nbytes
            else:
                bytes_written += op.nbytes
            key = (op.path, op.kind, op.rank)
            if cursors.get(key) == op.offset:
                n_sequential += 1
            cursors[key] = op.offset + op.nbytes

    for kind in OpKind:
        features[f"mix_{kind.value}"] = kind_counts.get(kind, 0) / n
    n_reads = kind_counts.get(OpKind.READ, 0)
    features["read_fraction"] = n_reads / n_data if n_data else 0.0
    features["meta_fraction"] = n_meta / n
    features["bytes_read"] = float(bytes_read)
    features["bytes_written"] = float(bytes_written)
    total_bytes = bytes_read + bytes_written
    features["read_write_byte_ratio"] = (
        bytes_read / total_bytes if total_bytes else 0.0
    )
    for i, count in enumerate(size_hist):
        features[f"size_hist_{i}"] = count / n_data if n_data else 0.0
    features["sequential_fraction"] = n_sequential / n_data if n_data else 0.0
    features["mean_transfer"] = transfer_total / n_data if n_data else 0.0
    features["n_files"] = float(len(files))
    # File-per-process paths carry the compiler's ".<rank>" suffix (or any
    # per-rank numbering); count files touched by exactly one rank.
    by_file_ranks: Dict[str, set] = defaultdict(set)
    for op in ops:
        if op.path and not op.kind.is_marker:
            by_file_ranks[op.path].add(op.rank)
    if by_file_ranks:
        private = sum(1 for ranks in by_file_ranks.values() if len(ranks) == 1)
        features["fpp_fraction"] = private / len(by_file_ranks)
    counts = list(rank_counts.values())
    mean = sum(counts) / len(counts)
    if mean > 0 and len(counts) > 1:
        var = sum((c - mean) ** 2 for c in counts) / len(counts)
        features["rank_balance_cv"] = (var ** 0.5) / mean
    features["ops_per_rank"] = mean
    return features


def archive_features(archive) -> Dict[str, float]:
    """Features of every record in a :class:`TraceArchive` (all layers)."""
    return access_features(archive.records)
