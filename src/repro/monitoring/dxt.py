"""DXT-style extended tracing.

Darshan eXtended Tracing [23] augments Darshan's counters with the exact
(offset, length, start, end) segment of every read and write.  The
:class:`DXTTracer` collects those segments per (rank, file); they feed
fine-grained analyses -- access-pattern plots, per-rank timelines, offset
heat maps -- that plain counters cannot support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ops import IORecord, OpKind


@dataclass(frozen=True)
class DXTSegment:
    """One traced data access."""

    rank: int
    path: str
    kind: str  # "read" | "write"
    offset: int
    nbytes: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def bandwidth(self) -> float:
        return self.nbytes / self.duration if self.duration > 0 else 0.0


class DXTTracer:
    """Collects per-segment data-access traces at one stack layer."""

    def __init__(self, layer: str = "posix"):
        self.layer = layer
        self._segments: Dict[Tuple[str, int], List[DXTSegment]] = {}

    def __call__(self, rec: IORecord) -> None:
        if rec.layer != self.layer or not rec.kind.is_data:
            return
        seg = DXTSegment(
            rank=rec.rank,
            path=rec.path,
            kind=rec.kind.value,
            offset=rec.offset,
            nbytes=rec.nbytes,
            start=rec.start,
            end=rec.end,
        )
        self._segments.setdefault((rec.path, rec.rank), []).append(seg)

    # -- queries -----------------------------------------------------------------
    @property
    def n_segments(self) -> int:
        return sum(len(v) for v in self._segments.values())

    def segments(self, path: str = None, rank: int = None) -> List[DXTSegment]:
        """Segments filtered by path and/or rank, in start-time order."""
        out: List[DXTSegment] = []
        for (p, r), segs in self._segments.items():
            if path is not None and p != path:
                continue
            if rank is not None and r != rank:
                continue
            out.extend(segs)
        out.sort(key=lambda s: (s.start, s.rank, s.offset))
        return out

    def offsets_array(self, path: str, kind: str = "read") -> np.ndarray:
        """Offsets of all accesses of one kind to one file (analysis input)."""
        return np.array(
            [s.offset for s in self.segments(path=path) if s.kind == kind],
            dtype=np.int64,
        )

    def randomness(self, path: str, kind: str = "read") -> float:
        """Fraction of accesses that did not continue the previous one.

        0.0 = perfectly sequential stream, ~1.0 = fully random.  Computed
        per rank and averaged, since each rank's stream is independent.
        """
        fractions: List[float] = []
        ranks = {r for (p, r) in self._segments if p == path}
        for rank in ranks:
            segs = [s for s in self.segments(path=path, rank=rank) if s.kind == kind]
            if len(segs) < 2:
                continue
            jumps = sum(
                1
                for a, b in zip(segs, segs[1:])
                if b.offset != a.offset + a.nbytes
            )
            fractions.append(jumps / (len(segs) - 1))
        return float(np.mean(fractions)) if fractions else 0.0

    def heatmap(
        self, dt: float = 0.1, kind: Optional[str] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-(rank, time-bin) bytes-moved matrix (Darshan's HEATMAP module).

        Returns ``(ranks, bin_start_times, matrix)`` where
        ``matrix[i, j]`` is the bytes rank ``ranks[i]`` moved in bin ``j``
        (optionally restricted to ``kind`` = "read"/"write").  The heatmap
        is the standard visual for spotting rank imbalance and I/O phases.
        """
        segs = [s for s in self.segments() if kind is None or s.kind == kind]
        if not segs:
            return np.array([], dtype=int), np.array([]), np.zeros((0, 0))
        ranks = np.array(sorted({s.rank for s in segs}), dtype=int)
        rank_idx = {r: i for i, r in enumerate(ranks)}
        t0 = min(s.start for s in segs)
        t1 = max(s.end for s in segs)
        n_bins = max(1, int(np.ceil((t1 - t0) / dt)))
        matrix = np.zeros((len(ranks), n_bins))
        for s in segs:
            b0 = int((s.start - t0) / dt)
            b1 = min(int((s.end - t0) / dt), n_bins - 1)
            span = b1 - b0 + 1
            matrix[rank_idx[s.rank], b0 : b1 + 1] += s.nbytes / span
        times = t0 + dt * np.arange(n_bins)
        return ranks, times, matrix

    def rank_imbalance(self, kind: Optional[str] = None) -> float:
        """max/mean of per-rank byte totals (1.0 = perfectly balanced)."""
        segs = [s for s in self.segments() if kind is None or s.kind == kind]
        if not segs:
            return 1.0
        totals: dict = {}
        for s in segs:
            totals[s.rank] = totals.get(s.rank, 0) + s.nbytes
        values = np.array(list(totals.values()), dtype=float)
        if values.mean() == 0:
            return 1.0
        return float(values.max() / values.mean())

    def bandwidth_timeline(self, dt: float = 0.1) -> Tuple[np.ndarray, np.ndarray]:
        """(bin_start_times, bytes_moved_per_bin) over the whole trace."""
        segs = self.segments()
        if not segs:
            return np.array([]), np.array([])
        t0 = min(s.start for s in segs)
        t1 = max(s.end for s in segs)
        n_bins = max(1, int(np.ceil((t1 - t0) / dt)))
        bins = np.zeros(n_bins)
        for s in segs:
            # Spread the segment's bytes uniformly over its duration.
            b0 = int((s.start - t0) / dt)
            b1 = int((s.end - t0) / dt)
            b1 = min(b1, n_bins - 1)
            span = b1 - b0 + 1
            bins[b0 : b1 + 1] += s.nbytes / span
        times = t0 + dt * np.arange(n_bins)
        return times, bins
