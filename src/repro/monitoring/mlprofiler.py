"""ML-workload-aware I/O profiling (tf-Darshan-like).

Chien et al.'s tf-Darshan [24] extends Darshan to "understand fine-grained
I/O performance in machine learning workloads": the key capability is
slicing POSIX-level I/O by *training structure* (epoch, step) rather than
only by file.  Here, workload annotations (``epoch``/``step`` in op meta)
propagate down the stack into record extras (see
:attr:`repro.iostack.posix.PosixLayer.context`), and the
:class:`MLIOProfiler` aggregates them into the per-epoch/per-step view a
DL performance engineer needs: read volume and time per epoch, data-stall
fraction per step, and the epoch-over-epoch trend that exposes caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ops import IORecord, OpKind


@dataclass
class EpochStats:
    """Aggregated I/O of one training epoch."""

    epoch: int
    reads: int = 0
    bytes_read: int = 0
    read_time: float = 0.0
    first_start: Optional[float] = None
    last_end: float = 0.0

    @property
    def wall_time(self) -> float:
        if self.first_start is None:
            return 0.0
        return self.last_end - self.first_start

    @property
    def read_bandwidth(self) -> float:
        return self.bytes_read / self.read_time if self.read_time > 0 else 0.0


class MLIOProfiler:
    """Per-epoch/per-step I/O aggregation for training workloads.

    Use as a run observer.  Only data records carrying an ``epoch``
    annotation are aggregated; everything else (dataset generation,
    checkpoints without step tags) is counted separately as
    ``untagged_bytes``.
    """

    def __init__(self, layer: str = "posix"):
        self.layer = layer
        self._epochs: Dict[int, EpochStats] = {}
        #: (epoch, step) -> [reads, bytes, time]
        self._steps: Dict[Tuple[int, int], List[float]] = {}
        self.untagged_bytes = 0

    def __call__(self, rec: IORecord) -> None:
        if rec.layer != self.layer or not rec.kind.is_data:
            return
        epoch = rec.extra.get("epoch")
        if epoch is None:
            self.untagged_bytes += rec.nbytes
            return
        epoch = int(epoch)
        es = self._epochs.get(epoch)
        if es is None:
            es = EpochStats(epoch=epoch)
            self._epochs[epoch] = es
        if rec.kind == OpKind.READ:
            es.reads += 1
            es.bytes_read += rec.nbytes
            es.read_time += rec.duration
        if es.first_start is None or rec.start < es.first_start:
            es.first_start = rec.start
        es.last_end = max(es.last_end, rec.end)
        step = rec.extra.get("step")
        if step is not None:
            key = (epoch, int(step))
            acc = self._steps.setdefault(key, [0, 0, 0.0])
            acc[0] += 1
            acc[1] += rec.nbytes
            acc[2] += rec.duration

    # -- queries ----------------------------------------------------------------
    def epochs(self) -> List[EpochStats]:
        return [self._epochs[e] for e in sorted(self._epochs)]

    def n_epochs(self) -> int:
        return len(self._epochs)

    def steps_in_epoch(self, epoch: int) -> int:
        return sum(1 for (e, _s) in self._steps if e == epoch)

    def step_read_times(self, epoch: int) -> np.ndarray:
        """Per-step read times of one epoch, in step order."""
        keys = sorted(k for k in self._steps if k[0] == epoch)
        return np.array([self._steps[k][2] for k in keys])

    def stall_fraction(self, epoch: int, wall_time: Optional[float] = None) -> float:
        """Fraction of epoch wall time spent waiting on reads.

        The "data stall" metric DL I/O studies optimise: near 1 means the
        accelerators starve, near 0 means the input pipeline keeps up.
        """
        es = self._epochs.get(epoch)
        if es is None:
            raise KeyError(f"no epoch {epoch} observed")
        wall = wall_time if wall_time is not None else es.wall_time
        if wall <= 0:
            return 0.0
        return min(1.0, es.read_time / wall)

    def epoch_speedup_trend(self) -> float:
        """read_time(epoch 0) / read_time(last epoch).

        >1 signals warm-cache or staging effects kicking in after the
        first pass over the dataset.
        """
        es = self.epochs()
        if len(es) < 2:
            raise ValueError("need at least two epochs for a trend")
        last = es[-1].read_time
        if last <= 0:
            return float("inf")
        return es[0].read_time / last

    def report(self) -> str:
        lines = [
            f"{'epoch':>5} {'reads':>7} {'MiB':>8} {'read s':>8} "
            f"{'MB/s':>8} {'stall':>6}"
        ]
        for es in self.epochs():
            lines.append(
                f"{es.epoch:>5} {es.reads:>7} {es.bytes_read / 2**20:>8.1f} "
                f"{es.read_time:>8.3f} {es.read_bandwidth / 1e6:>8.1f} "
                f"{self.stall_fraction(es.epoch):>6.1%}"
            )
        if self.untagged_bytes:
            lines.append(f"untagged I/O: {self.untagged_bytes / 2**20:.1f} MiB")
        return "\n".join(lines)
