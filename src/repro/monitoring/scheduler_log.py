"""Workload-manager (Slurm-like) job logs.

Paper Sec. IV-A-2 lists "workload manager logs (e.g., from Slurm or
TORQUE)" among the collectable data sources.  The :class:`SchedulerLog`
accumulates :class:`JobRecord` entries as experiments run; the end-to-end
monitor joins them with profiles and server statistics by time window,
exactly how production log-correlation studies (LOGAIDER [41], Park et
al. [43]) operate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class JobRecord:
    """One scheduler accounting record (sacct-style)."""

    job_id: int
    name: str
    user: str
    n_nodes: int
    n_ranks: int
    submit_time: float
    start_time: float
    end_time: Optional[float] = None
    state: str = "RUNNING"

    @property
    def wait_time(self) -> float:
        return self.start_time - self.submit_time

    @property
    def elapsed(self) -> float:
        if self.end_time is None:
            raise ValueError(f"job {self.job_id} has not ended")
        return self.end_time - self.start_time

    def overlaps(self, t0: float, t1: float) -> bool:
        end = self.end_time if self.end_time is not None else float("inf")
        return self.start_time < t1 and end > t0


class SchedulerLog:
    """An append-only job accounting log."""

    def __init__(self):
        self._jobs: Dict[int, JobRecord] = {}
        self._next_id = 1

    def submit(
        self,
        name: str,
        user: str,
        n_nodes: int,
        n_ranks: int,
        submit_time: float,
        start_time: Optional[float] = None,
    ) -> JobRecord:
        """Record a job submission (start defaults to immediate)."""
        if n_nodes <= 0 or n_ranks <= 0:
            raise ValueError("n_nodes and n_ranks must be positive")
        job = JobRecord(
            job_id=self._next_id,
            name=name,
            user=user,
            n_nodes=n_nodes,
            n_ranks=n_ranks,
            submit_time=submit_time,
            start_time=start_time if start_time is not None else submit_time,
        )
        self._next_id += 1
        self._jobs[job.job_id] = job
        return job

    def start(self, job_id: int, start_time: float) -> None:
        """Mark a queued job as started (batch-scheduler integration)."""
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id}")
        job.start_time = start_time
        job.state = "RUNNING"

    def complete(self, job_id: int, end_time: float, state: str = "COMPLETED") -> None:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id}")
        job.end_time = end_time
        job.state = state

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def job(self, job_id: int) -> JobRecord:
        if job_id not in self._jobs:
            raise KeyError(f"unknown job {job_id}")
        return self._jobs[job_id]

    def jobs(self) -> List[JobRecord]:
        return sorted(self._jobs.values(), key=lambda j: j.job_id)

    def running_at(self, time: float) -> List[JobRecord]:
        return [j for j in self.jobs() if j.overlaps(time, time)]

    def concurrent_with(self, job_id: int) -> List[JobRecord]:
        """Other jobs that overlapped this one in time (interference suspects)."""
        me = self.job(job_id)
        end = me.end_time if me.end_time is not None else float("inf")
        return [
            j
            for j in self.jobs()
            if j.job_id != job_id and j.overlaps(me.start_time, end)
        ]

    def utilization_nodes(self, total_nodes: int, t0: float, t1: float) -> float:
        """Node-hours used / node-hours available in a window."""
        if t1 <= t0 or total_nodes <= 0:
            raise ValueError("need t1 > t0 and positive node count")
        used = 0.0
        for j in self.jobs():
            end = j.end_time if j.end_time is not None else t1
            lo = max(j.start_time, t0)
            hi = min(end, t1)
            if hi > lo:
                used += (hi - lo) * j.n_nodes
        return used / ((t1 - t0) * total_nodes)
