"""Measurement and statistics collection (paper Sec. IV-A-2).

The paper's two collection modes are both implemented:

* **Profiles** ("I/O characterization information, i.e., statistics"):
  :mod:`repro.monitoring.profiler` is the Darshan-like [22] job-level
  profiler; :mod:`repro.monitoring.counters` defines its counter sets.
* **Traces** ("a detailed report of the execution chronology"):
  :mod:`repro.monitoring.tracer` is the Recorder-like [25], [26]
  multi-level tracer; :mod:`repro.monitoring.dxt` adds DXT-style [23]
  per-segment extended tracing on top of the profiler.

Beyond job-level monitoring:

* :mod:`repro.monitoring.server_stats` samples server-side statistics
  (load, queue lengths) like GUIDE [39] / LMT;
* :mod:`repro.monitoring.fsmonitor` captures metadata events like
  FSMonitor [27], [28];
* :mod:`repro.monitoring.scheduler_log` models workload-manager (Slurm)
  job logs;
* :mod:`repro.monitoring.endtoend` correlates all of the above into a
  UMAMI/TOKIO-like [42], [44] end-to-end view;
* :mod:`repro.monitoring.formats` persists traces and profiles.
"""

from repro.monitoring.counters import FileCounters, JobCounters
from repro.monitoring.profiler import DarshanProfiler, JobProfile
from repro.monitoring.dxt import DXTSegment, DXTTracer
from repro.monitoring.tracer import RecorderTracer, TraceArchive
from repro.monitoring.server_stats import ServerSample, ServerStatsCollector
from repro.monitoring.fsmonitor import FSMonitor, MetadataEvent
from repro.monitoring.scheduler_log import JobRecord, SchedulerLog
from repro.monitoring.endtoend import EndToEndMonitor, EndToEndReport
from repro.monitoring.mlprofiler import EpochStats, MLIOProfiler
from repro.monitoring.iominer import ProfileMiner
from repro.monitoring.features import FEATURE_NAMES, access_features, archive_features
from repro.monitoring.formats import (
    load_profile,
    load_trace,
    save_profile,
    save_trace,
)

__all__ = [
    "DXTSegment",
    "DXTTracer",
    "DarshanProfiler",
    "FEATURE_NAMES",
    "access_features",
    "archive_features",
    "EndToEndMonitor",
    "EndToEndReport",
    "EpochStats",
    "FSMonitor",
    "FileCounters",
    "JobCounters",
    "MLIOProfiler",
    "ProfileMiner",
    "JobProfile",
    "JobRecord",
    "MetadataEvent",
    "RecorderTracer",
    "SchedulerLog",
    "ServerSample",
    "ServerStatsCollector",
    "TraceArchive",
    "load_profile",
    "load_trace",
    "save_profile",
    "save_trace",
]
