"""FSMonitor-like metadata event monitoring.

Paul et al.'s FSMonitor [27], [28] captures "the metadata file system
events in storage systems" at scale.  Here the :class:`FSMonitor`
subscribes to the metadata servers' listener hooks and accumulates a
namespace-event stream, with the rate and hot-directory analyses that
software-defined-cyberinfrastructure use cases need.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ops import OpKind
from repro.pfs.filesystem import ParallelFileSystem

#: Metadata op kinds that mutate the namespace (reported as events).
MUTATING = {
    OpKind.CREATE,
    OpKind.UNLINK,
    OpKind.MKDIR,
    OpKind.RMDIR,
}


@dataclass(frozen=True)
class MetadataEvent:
    """One observed namespace event."""

    time: float
    kind: OpKind
    path: str

    @property
    def directory(self) -> str:
        return self.path.rsplit("/", 1)[0] or "/"


class FSMonitor:
    """Collects namespace events from every MDS of a file system.

    Parameters
    ----------
    pfs:
        File system to watch.
    include_reads:
        Also record non-mutating metadata ops (open/stat/...), as
        FSMonitor's "audit" mode does.
    """

    def __init__(self, pfs: ParallelFileSystem, include_reads: bool = False):
        self.include_reads = include_reads
        self.events: List[MetadataEvent] = []
        for mds, _node in pfs.mds_servers:
            mds.listeners.append(self._on_event)

    def _on_event(self, kind: OpKind, path: str, time: float) -> None:
        if kind in MUTATING or self.include_reads:
            self.events.append(MetadataEvent(time=time, kind=kind, path=path))

    # -- analysis ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def counts_by_kind(self) -> dict:
        return dict(Counter(e.kind for e in self.events))

    def event_rate(self, window: Optional[float] = None) -> float:
        """Events per second over the observed interval (or last ``window``)."""
        if not self.events:
            return 0.0
        t1 = max(e.time for e in self.events)
        t0 = min(e.time for e in self.events)
        if window is not None:
            t0 = max(t0, t1 - window)
        relevant = [e for e in self.events if e.time >= t0]
        span = max(t1 - t0, 1e-12)
        return len(relevant) / span

    def hot_directories(self, top: int = 5) -> List[tuple]:
        """Directories with the most events, as (dir, count) pairs."""
        counts = Counter(e.directory for e in self.events)
        return counts.most_common(top)

    def burstiness(self, bin_seconds: float = 1.0) -> float:
        """Coefficient of variation of per-bin event counts.

        0 for a perfectly steady stream; grows with burstiness.
        """
        if len(self.events) < 2:
            return 0.0
        times = np.array([e.time for e in self.events])
        t0, t1 = times.min(), times.max()
        n_bins = max(1, int(np.ceil((t1 - t0) / bin_seconds)))
        counts, _ = np.histogram(times, bins=n_bins)
        mean = counts.mean()
        if mean == 0:
            return 0.0
        return float(counts.std() / mean)
