"""Persistence of traces and profiles.

Traces are stored as gzipped JSON-lines (one record per line, streaming-
friendly, mirroring Recorder's per-record layout); profiles as a single
JSON document (mirroring Darshan's one-file-per-job logs).
"""

from __future__ import annotations

import gzip
import json
import logging
from pathlib import Path
from typing import Iterable, List, Union

from repro.monitoring.profiler import JobProfile
from repro.ops import IORecord

log = logging.getLogger(__name__)

PathLike = Union[str, Path]


def save_trace(records: Iterable[IORecord], path: PathLike) -> int:
    """Write records as gzipped JSONL; returns the record count."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    n = 0
    with gzip.open(p, "wt", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec.to_dict()) + "\n")
            n += 1
    log.debug("saved %d trace record(s) to %s", n, p)
    return n


def load_trace(path: PathLike) -> List[IORecord]:
    """Read a gzipped JSONL trace back into records."""
    out: List[IORecord] = []
    with gzip.open(Path(path), "rt", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(IORecord.from_dict(json.loads(line)))
    return out


def save_profile(profile: JobProfile, path: PathLike) -> None:
    """Write a job profile as JSON."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with open(p, "w", encoding="utf-8") as fh:
        json.dump(profile.to_dict(), fh, indent=1)


def load_profile(path: PathLike) -> JobProfile:
    """Read a job profile back."""
    with open(Path(path), "r", encoding="utf-8") as fh:
        return JobProfile.from_dict(json.load(fh))
