"""HDF5-like high-level I/O library.

The top of paper Fig. 2's stack.  Provides the abstractions applications
actually program against -- files containing named n-dimensional datasets,
written/read through *hyperslab* selections -- and translates them into the
byte extents the MPI-IO layer understands:

* **contiguous layout**: row-major; a hyperslab becomes one extent per
  non-contiguous row run (with full-row selections merging into single
  large extents);
* **chunked layout**: the dataset is stored as fixed-shape chunks; any
  selection touches whole chunks, so small unaligned accesses amplify --
  the classic chunking trade-off.

Library metadata traffic is modelled too: the file header and per-dataset
object headers are small writes/reads, which is how HDF5 shows up in
metadata-sensitive traces (tf-Darshan [24] observes exactly this pattern
in ML workloads).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.iostack.extents import Extent, coalesce
from repro.iostack.mpiio import MPIIOFile, MPIIOLayer
from repro.ops import IORecord, OpKind

#: Bytes of file-level metadata (superblock) at offset 0.
SUPERBLOCK_BYTES = 2048
#: Bytes of per-dataset object header.
OBJECT_HEADER_BYTES = 512
#: Alignment of dataset data regions.
DATA_ALIGNMENT = 4096


@dataclass
class Dataset:
    """A named n-dimensional array inside an :class:`H5File`.

    Attributes
    ----------
    name:
        Dataset name.
    shape:
        Dimension sizes.
    itemsize:
        Bytes per element.
    data_offset:
        File offset where the data region starts.
    chunks:
        Chunk shape for chunked layout, ``None`` for contiguous.
    """

    name: str
    shape: Tuple[int, ...]
    itemsize: int
    data_offset: int
    chunks: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        if not self.shape or any(s <= 0 for s in self.shape):
            raise ValueError(f"invalid shape {self.shape}")
        if self.itemsize <= 0:
            raise ValueError("itemsize must be positive")
        if self.chunks is not None:
            if len(self.chunks) != len(self.shape):
                raise ValueError("chunk rank must match dataset rank")
            if any(c <= 0 for c in self.chunks):
                raise ValueError("chunk dims must be positive")

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * self.itemsize

    @property
    def chunk_nbytes(self) -> int:
        if self.chunks is None:
            raise ValueError("dataset is not chunked")
        return int(np.prod(self.chunks)) * self.itemsize

    def _chunk_grid(self) -> Tuple[int, ...]:
        assert self.chunks is not None
        return tuple(
            math.ceil(s / c) for s, c in zip(self.shape, self.chunks)
        )

    def _validate_selection(self, start: Tuple[int, ...], count: Tuple[int, ...]) -> None:
        if len(start) != len(self.shape) or len(count) != len(self.shape):
            raise ValueError("selection rank must match dataset rank")
        for st, ct, sh in zip(start, count, self.shape):
            if st < 0 or ct <= 0 or st + ct > sh:
                raise ValueError(
                    f"selection start={start} count={count} exceeds shape {self.shape}"
                )

    def extents(self, start: Tuple[int, ...], count: Tuple[int, ...]) -> List[Extent]:
        """File byte extents covering the hyperslab ``[start, start+count)``.

        Contiguous layout returns minimal row-run extents (coalesced);
        chunked layout returns one extent per touched chunk (whole chunks,
        modelling HDF5's chunk-granular I/O).
        """
        self._validate_selection(tuple(start), tuple(count))
        if self.chunks is None:
            return self._contiguous_extents(tuple(start), tuple(count))
        return self._chunked_extents(tuple(start), tuple(count))

    def _contiguous_extents(self, start, count) -> List[Extent]:
        ndim = len(self.shape)
        # Largest k such that dims k..ndim-1 are fully selected: those merge
        # into single runs with dim k-1's index.
        k = ndim
        while k > 0 and start[k - 1] == 0 and count[k - 1] == self.shape[k - 1]:
            k -= 1
        strides = [self.itemsize] * ndim
        for d in range(ndim - 2, -1, -1):
            strides[d] = strides[d + 1] * self.shape[d + 1]
        if k == 0:
            return [(self.data_offset, self.nbytes)]
        # Run length: count[k-1] copies of the fully-selected suffix... but
        # only if dims > k-1 fully selected; runs break at dim k-1 only when
        # the suffix after it is full.
        run_dim = k - 1
        run_len = count[run_dim] * strides[run_dim]
        outer_dims = range(run_dim)
        out: List[Extent] = []
        for idx in np.ndindex(*[count[d] for d in outer_dims]):
            off = self.data_offset
            for d, i in zip(outer_dims, idx):
                off += (start[d] + i) * strides[d]
            off += start[run_dim] * strides[run_dim]
            out.append((off, run_len))
        return coalesce(out)

    def _chunked_extents(self, start, count) -> List[Extent]:
        grid = self._chunk_grid()
        lo = [s // c for s, c in zip(start, self.chunks)]
        hi = [(s + ct - 1) // c for s, ct, c in zip(start, count, self.chunks)]
        out: List[Extent] = []
        for idx in np.ndindex(*[h - l + 1 for l, h in zip(lo, hi)]):
            chunk_idx = tuple(l + i for l, i in zip(lo, idx))
            linear = 0
            for d, ci in enumerate(chunk_idx):
                linear = linear * grid[d] + ci
            out.append((self.data_offset + linear * self.chunk_nbytes, self.chunk_nbytes))
        return coalesce(out)

    def chunks_touched(self, start, count) -> int:
        """Number of chunks a selection intersects."""
        if self.chunks is None:
            raise ValueError("dataset is not chunked")
        self._validate_selection(tuple(start), tuple(count))
        n = 1
        for s, ct, c in zip(start, count, self.chunks):
            n *= (s + ct - 1) // c - s // c + 1
        return n


class _SharedH5State:
    """Dataset registry shared by all ranks that opened one HDF5 file."""

    def __init__(self):
        self.datasets: Dict[str, Dataset] = {}
        self.alloc_cursor: int = SUPERBLOCK_BYTES


class H5File:
    """One rank's view of an HDF5-like file over MPI-IO.

    Use as::

        h5 = H5File(mpiio, shared_state)
        yield from h5.create("/out.h5")
        dset = yield from h5.create_dataset("temperature", (1024, 1024), 8)
        yield from h5.write(dset, start=(rank*256, 0), count=(256, 1024),
                            collective=True)

    ``shared_state`` must be the same object on every rank (create it once
    with :meth:`make_shared_state` and pass it to each rank's instance).
    """

    def __init__(self, mpiio: MPIIOLayer, shared: Optional[_SharedH5State] = None):
        self.mpiio = mpiio
        self.env = mpiio.env
        self.rank = mpiio.rank
        self.shared = shared or _SharedH5State()
        self.handle: Optional[MPIIOFile] = None
        self.observers: List[Callable[[IORecord], None]] = []
        self._locally_created: set = set()

    @staticmethod
    def make_shared_state() -> _SharedH5State:
        return _SharedH5State()

    # -- record emission ----------------------------------------------------
    def _emit(self, kind: OpKind, offset: int, nbytes: int, start: float, **extra):
        if not self.observers or self.handle is None:
            return
        rec = IORecord(
            layer="hdf5",
            kind=kind,
            path=self.handle.path,
            offset=offset,
            nbytes=nbytes,
            rank=self.rank,
            start=start,
            end=self.env.now,
            extra=extra,
        )
        for obs in self.observers:
            obs(rec)

    def _require_open(self) -> MPIIOFile:
        if self.handle is None:
            raise RuntimeError("no file is open on this H5File")
        return self.handle

    # -- file lifecycle --------------------------------------------------------
    def create(self, path: str, **create_kwargs):
        """Generator: collectively create the file and write the superblock."""
        start = self.env.now
        self.handle = yield from self.mpiio.open_all(path, create=True, **create_kwargs)
        if self.rank == 0:
            yield from self.mpiio.write_at(self.handle, 0, SUPERBLOCK_BYTES)
        yield from self.mpiio.comm.barrier(self.rank, tag=f"h5.create:{path}")
        self._emit(OpKind.CREATE, 0, SUPERBLOCK_BYTES, start)

    def open(self, path: str):
        """Generator: collectively open; reads the superblock on each rank."""
        start = self.env.now
        self.handle = yield from self.mpiio.open_all(path, create=False)
        yield from self.mpiio.read_at(self.handle, 0, SUPERBLOCK_BYTES)
        self._emit(OpKind.OPEN, 0, SUPERBLOCK_BYTES, start)

    def close(self):
        """Generator: collective close."""
        handle = self._require_open()
        start = self.env.now
        yield from self.mpiio.close_all(handle)
        self._emit(OpKind.CLOSE, 0, 0, start)
        self.handle = None

    # -- datasets -----------------------------------------------------------------
    def create_dataset(
        self,
        name: str,
        shape: Tuple[int, ...],
        itemsize: int,
        chunks: Optional[Tuple[int, ...]] = None,
    ):
        """Generator: collectively create a dataset (rank 0 writes header)."""
        handle = self._require_open()
        start = self.env.now
        if name in self._locally_created:
            raise FileExistsError(f"dataset {name!r} already exists")
        self._locally_created.add(name)
        existing = self.shared.datasets.get(name)
        if existing is not None:
            # Collective semantics: a peer rank already registered this
            # round's dataset.  Matching parameters -> same collective call;
            # mismatch -> a genuine duplicate-creation error.
            if (
                existing.shape == tuple(shape)
                and existing.itemsize == itemsize
                and existing.chunks == (tuple(chunks) if chunks else None)
            ):
                dset = existing
                header_off = existing.data_offset  # emit against data region
            else:
                raise FileExistsError(f"dataset {name!r} already exists")
        else:
            header_off = self.shared.alloc_cursor
            data_off = (
                (header_off + OBJECT_HEADER_BYTES + DATA_ALIGNMENT - 1)
                // DATA_ALIGNMENT
                * DATA_ALIGNMENT
            )
            dset = Dataset(
                name=name, shape=tuple(shape), itemsize=itemsize,
                data_offset=data_off, chunks=tuple(chunks) if chunks else None,
            )
            self.shared.alloc_cursor = data_off + dset.nbytes
            self.shared.datasets[name] = dset
        if self.rank == 0:
            yield from self.mpiio.write_at(handle, header_off, OBJECT_HEADER_BYTES)
        yield from self.mpiio.comm.barrier(
            self.rank, tag=f"h5.dset:{handle.path}:{name}"
        )
        self._emit(OpKind.CREATE, header_off, OBJECT_HEADER_BYTES, start, dataset=name)
        return dset

    def dataset(self, name: str) -> Dataset:
        dset = self.shared.datasets.get(name)
        if dset is None:
            raise KeyError(f"no dataset {name!r}")
        return dset

    # -- hyperslab I/O ----------------------------------------------------------------
    def write(self, dset: Dataset, start, count, collective: bool = True):
        """Generator: write a hyperslab selection."""
        handle = self._require_open()
        t0 = self.env.now
        extents = dset.extents(tuple(start), tuple(count))
        nbytes = sum(n for _, n in extents)
        if collective:
            yield from self.mpiio.write_at_all(handle, extents)
        else:
            yield from self.mpiio.write_noncontig(handle, extents)
        self._emit(OpKind.WRITE, extents[0][0], nbytes, t0, dataset=dset.name, collective=collective)
        return self.env.now - t0

    def read(self, dset: Dataset, start, count, collective: bool = True):
        """Generator: read a hyperslab selection."""
        handle = self._require_open()
        t0 = self.env.now
        extents = dset.extents(tuple(start), tuple(count))
        nbytes = sum(n for _, n in extents)
        if collective:
            yield from self.mpiio.read_at_all(handle, extents)
        else:
            yield from self.mpiio.read_noncontig(handle, extents)
        self._emit(OpKind.READ, extents[0][0], nbytes, t0, dataset=dset.name, collective=collective)
        return self.env.now - t0
