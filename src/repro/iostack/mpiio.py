"""MPI-IO-like middleware: independent and collective I/O.

Implements the middle of paper Fig. 2's stack with the two optimisations
that define ROMIO-style MPI-IO:

* **Two-phase collective buffering** (``write_at_all``/``read_at_all``):
  all ranks synchronise, exchange their pieces with a subset of
  *aggregator* ranks (shuffle over the compute fabric), and only the
  aggregators touch the file system -- with large, contiguous, coalesced
  extents.  This converts N ranks' small strided accesses into
  ``cb_nodes`` streaming accesses, which is why collective I/O wins for
  non-contiguous patterns (claim C9).
* **Data sieving** for non-contiguous *independent* access: when the
  requested extents are dense enough and the span fits the sieve buffer,
  one large read (plus a write-back for writes) replaces many small ops.

Every rank emits an :class:`~repro.ops.IORecord` (layer ``"mpiio"``) per
call, with ``extra={"collective": bool}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.iostack.extents import (
    Extent,
    coalesce,
    fill_ratio,
    partition_evenly,
    span,
    total_bytes,
)
from repro.iostack.posix import PosixLayer
from repro.mpi.runtime import Communicator
from repro.ops import IORecord, OpKind


class _CollectiveRound:
    """Shared per-round state of one collective I/O call."""

    __slots__ = ("requests", "exited")

    def __init__(self):
        self.requests: Dict[int, List[Extent]] = {}
        self.exited = 0


class _SharedFile:
    """State shared by all ranks that collectively opened one file."""

    def __init__(self, path: str):
        self.path = path
        self.rounds: Dict[Tuple[str, int], _CollectiveRound] = {}


@dataclass
class MPIIOFile:
    """One rank's handle on a collectively-opened file."""

    path: str
    fd: int  # posix descriptor on this rank
    shared: _SharedFile
    local_seq: int = 0


class MPIIOLayer:
    """Per-rank MPI-IO surface.

    Parameters
    ----------
    posix:
        This rank's POSIX layer.
    comm:
        The program's communicator.
    rank:
        This rank.
    cb_nodes:
        Number of collective-buffering aggregators (ROMIO ``cb_nodes``
        hint).  Defaults to one per four ranks, at least 1.
    sieve_buffer:
        Data-sieving buffer size in bytes (ROMIO ``ind_rd_buffer_size``).
    sieve_threshold:
        Minimum fill ratio at which sieving is considered profitable.
    """

    #: Registry shared across the per-rank layer instances of one program.
    def __init__(
        self,
        posix: PosixLayer,
        comm: Communicator,
        rank: int,
        shared_registry: Dict[str, _SharedFile],
        cb_nodes: Optional[int] = None,
        sieve_buffer: int = 4 * 1024 * 1024,
        sieve_threshold: float = 0.3,
    ):
        self.posix = posix
        self.comm = comm
        self.rank = rank
        self.env = posix.env
        self._registry = shared_registry
        self.cb_nodes = cb_nodes if cb_nodes is not None else max(1, comm.size // 4)
        self.cb_nodes = min(self.cb_nodes, comm.size)
        self.sieve_buffer = sieve_buffer
        self.sieve_threshold = sieve_threshold
        self.observers: List[Callable[[IORecord], None]] = []
        # Statistics.
        self.collective_calls = 0
        self.independent_calls = 0
        self.sieved_calls = 0

    @staticmethod
    def make_shared_registry() -> Dict[str, _SharedFile]:
        """Create the registry to share among all ranks' layer instances."""
        return {}

    # -- record emission ----------------------------------------------------
    def _emit(self, kind: OpKind, path: str, offset: int, nbytes: int, start: float, collective: bool):
        if not self.observers:
            return
        rec = IORecord(
            layer="mpiio",
            kind=kind,
            path=path,
            offset=offset,
            nbytes=nbytes,
            rank=self.rank,
            start=start,
            end=self.env.now,
            extra={"collective": collective},
        )
        for obs in self.observers:
            obs(rec)

    # -- open / close (collective) ----------------------------------------------
    def open_all(self, path: str, create: bool = False, **create_kwargs):
        """Generator: collective open.  Rank 0 creates, others then open."""
        start = self.env.now
        if create and self.rank == 0:
            fd = yield from self.posix.open(path, create=True, **create_kwargs)
        else:
            fd = None
        yield from self.comm.barrier(self.rank, tag=f"mpiio.open:{path}")
        if fd is None:
            fd = yield from self.posix.open(path, create=False)
        shared = self._registry.setdefault(path, _SharedFile(path))
        self._emit(OpKind.OPEN, path, 0, 0, start, collective=True)
        return MPIIOFile(path=path, fd=fd, shared=shared)

    def close_all(self, handle: MPIIOFile):
        """Generator: collective close."""
        start = self.env.now
        yield from self.posix.close(handle.fd)
        yield from self.comm.barrier(self.rank, tag=f"mpiio.close:{handle.path}")
        self._emit(OpKind.CLOSE, handle.path, 0, 0, start, collective=True)

    # -- independent I/O --------------------------------------------------------
    def write_at(self, handle: MPIIOFile, offset: int, nbytes: int):
        """Generator: independent contiguous write."""
        start = self.env.now
        yield from self.posix.pwrite(handle.fd, offset, nbytes)
        self.independent_calls += 1
        self._emit(OpKind.WRITE, handle.path, offset, nbytes, start, collective=False)
        return self.env.now - start

    def read_at(self, handle: MPIIOFile, offset: int, nbytes: int):
        """Generator: independent contiguous read."""
        start = self.env.now
        yield from self.posix.pread(handle.fd, offset, nbytes)
        self.independent_calls += 1
        self._emit(OpKind.READ, handle.path, offset, nbytes, start, collective=False)
        return self.env.now - start

    def write_noncontig(self, handle: MPIIOFile, extents: List[Extent], sieve: bool = True):
        """Generator: independent non-contiguous write (optionally sieved).

        Sieved writes are read-modify-write: read the span, write it back.
        """
        start = self.env.now
        ext = coalesce(extents)
        if self._should_sieve(ext) and sieve:
            lo, spn = span(ext)
            yield from self.posix.pread(handle.fd, lo, spn)
            yield from self.posix.pwrite(handle.fd, lo, spn)
            self.sieved_calls += 1
        else:
            for off, n in ext:
                yield from self.posix.pwrite(handle.fd, off, n)
        self.independent_calls += 1
        self._emit(
            OpKind.WRITE, handle.path, ext[0][0] if ext else 0, total_bytes(ext), start, False
        )
        return self.env.now - start

    def read_noncontig(self, handle: MPIIOFile, extents: List[Extent], sieve: bool = True):
        """Generator: independent non-contiguous read (optionally sieved)."""
        start = self.env.now
        ext = coalesce(extents)
        if self._should_sieve(ext) and sieve:
            lo, spn = span(ext)
            yield from self.posix.pread(handle.fd, lo, spn)
            self.sieved_calls += 1
        else:
            for off, n in ext:
                yield from self.posix.pread(handle.fd, off, n)
        self.independent_calls += 1
        self._emit(
            OpKind.READ, handle.path, ext[0][0] if ext else 0, total_bytes(ext), start, False
        )
        return self.env.now - start

    def _should_sieve(self, ext: List[Extent]) -> bool:
        if len(ext) <= 1:
            return False
        _, spn = span(ext)
        return spn <= self.sieve_buffer and fill_ratio(ext) >= self.sieve_threshold

    # -- collective I/O -----------------------------------------------------------
    def write_at_all(self, handle: MPIIOFile, extents: List[Extent]):
        """Generator: collective write (two-phase)."""
        yield from self._two_phase(handle, extents, is_write=True)

    def read_at_all(self, handle: MPIIOFile, extents: List[Extent]):
        """Generator: collective read (two-phase)."""
        yield from self._two_phase(handle, extents, is_write=False)

    def _two_phase(self, handle: MPIIOFile, extents: List[Extent], is_write: bool):
        start = self.env.now
        seq = handle.local_seq
        handle.local_seq += 1
        key = ("w" if is_write else "r", seq)
        rnd = handle.shared.rounds.setdefault(key, _CollectiveRound())
        rnd.requests[self.rank] = list(extents)
        tag = f"mpiio.coll:{handle.path}:{key}"

        # Phase 0: everyone arrives; after this, rnd.requests is complete.
        yield from self.comm.barrier(self.rank, tag=tag + ":in")

        all_extents = [e for req in rnd.requests.values() for e in req]
        merged = coalesce(all_extents)
        total = total_bytes(merged)
        n_agg = min(self.cb_nodes, self.comm.size)
        my_bytes = total_bytes(coalesce(extents))

        # Phase 1: shuffle to/from aggregators (reads shuffle after the I/O,
        # but the cost model is symmetric so we charge it around the I/O).
        if self.comm.size > 1 and total > 0:
            per_peer = my_bytes / max(1, self.comm.size)
            yield from self.comm.alltoall(self.rank, per_peer, tag=tag + ":shuffle")

        # Phase 2: aggregators perform large contiguous file accesses.
        if self.rank < n_agg and total > 0:
            domains = partition_evenly(merged, n_agg)
            for off, n in domains[self.rank]:
                if is_write:
                    yield from self.posix.pwrite(handle.fd, off, n)
                else:
                    yield from self.posix.pread(handle.fd, off, n)

        # Phase 3: everyone leaves together.
        yield from self.comm.barrier(self.rank, tag=tag + ":out")
        rnd.exited += 1
        if rnd.exited == self.comm.size:
            del handle.shared.rounds[key]

        self.collective_calls += 1
        kind = OpKind.WRITE if is_write else OpKind.READ
        first_off = extents[0][0] if extents else 0
        self._emit(kind, handle.path, first_off, my_bytes, start, collective=True)
        return self.env.now - start
