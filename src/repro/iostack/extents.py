"""Byte-extent utilities shared by the MPI-IO and HDF5 layers."""

from __future__ import annotations

from typing import Iterable, List, Tuple

Extent = Tuple[int, int]  # (offset, nbytes)


def coalesce(extents: Iterable[Extent]) -> List[Extent]:
    """Merge overlapping or adjacent extents into a minimal sorted list."""
    items = sorted((off, n) for off, n in extents if n > 0)
    out: List[Extent] = []
    for off, n in items:
        if out and off <= out[-1][0] + out[-1][1]:
            prev_off, prev_n = out[-1]
            out[-1] = (prev_off, max(prev_off + prev_n, off + n) - prev_off)
        else:
            out.append((off, n))
    return out


def total_bytes(extents: Iterable[Extent]) -> int:
    """Sum of extent lengths (overlaps counted twice; coalesce first)."""
    return sum(n for _, n in extents)


def span(extents: Iterable[Extent]) -> Extent:
    """The smallest single extent covering all inputs."""
    items = [(off, n) for off, n in extents if n > 0]
    if not items:
        return (0, 0)
    lo = min(off for off, _ in items)
    hi = max(off + n for off, n in items)
    return (lo, hi - lo)


def fill_ratio(extents: Iterable[Extent]) -> float:
    """Covered bytes / span bytes: 1.0 means dense, near 0 means sparse."""
    items = coalesce(extents)
    _, spn = span(items)
    if spn == 0:
        return 1.0
    return total_bytes(items) / spn


def clip(extents: Iterable[Extent], lo: int, hi: int) -> List[Extent]:
    """Intersect extents with the window ``[lo, hi)``."""
    out: List[Extent] = []
    for off, n in extents:
        a = max(off, lo)
        b = min(off + n, hi)
        if b > a:
            out.append((a, b - a))
    return out


def partition_evenly(extents: List[Extent], parts: int) -> List[List[Extent]]:
    """Split coalesced extents into ``parts`` byte-balanced sublists.

    Used to assign file domains to two-phase I/O aggregators: part ``i``
    receives a contiguous-by-file-order share of roughly ``total/parts``
    bytes (extents are cut where necessary).
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    items = coalesce(extents)
    total = total_bytes(items)
    if total == 0:
        return [[] for _ in range(parts)]
    share = total / parts
    out: List[List[Extent]] = [[] for _ in range(parts)]
    idx = 0
    budget = share
    for off, n in items:
        pos = off
        rem = n
        while rem > 0:
            if idx == parts - 1:
                out[idx].append((pos, rem))
                rem = 0
                break
            take = int(min(rem, max(1, round(budget))))
            out[idx].append((pos, take))
            pos += take
            rem -= take
            budget -= take
            if budget <= 0:
                idx += 1
                budget += share
    return out
