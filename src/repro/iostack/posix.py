"""POSIX-like layer: descriptors and positions over the PFS client.

The bottom application-visible layer of paper Fig. 2.  It adds what POSIX
adds over an object store -- file descriptors, per-descriptor positions,
``lseek`` -- and emits an :class:`~repro.ops.IORecord` (layer ``"posix"``)
for every call, which is where Darshan-style POSIX counters come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.ops import IORecord, OpKind
from repro.pfs.client import PFSClient

# lseek whence values (mirroring os.SEEK_*).
SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


@dataclass
class PosixFile:
    """An open descriptor."""

    fd: int
    path: str
    pos: int = 0
    closed: bool = False


class PosixLayer:
    """Per-rank POSIX call surface.

    Parameters
    ----------
    client:
        The node's PFS client.
    rank:
        Rank recorded on emitted records.
    """

    def __init__(self, client: PFSClient, rank: int = 0):
        self.client = client
        self.env = client.env
        self.rank = rank
        self._next_fd = 3  # 0-2 reserved, as in POSIX
        self._files: Dict[int, PosixFile] = {}
        self.observers: List[Callable[[IORecord], None]] = []
        #: Free-form annotations merged into every emitted record's extra
        #: (e.g. the training epoch/step a read belongs to).  This is how
        #: framework-level context reaches POSIX-level traces, the linkage
        #: tf-Darshan [24] builds for TensorFlow workloads.
        self.context: Dict[str, object] = {}

    # -- record emission -------------------------------------------------------
    def _emit(
        self,
        kind: OpKind,
        path: str,
        offset: int,
        nbytes: int,
        start: float,
        extra: Optional[dict] = None,
    ):
        if not self.observers:
            return
        merged = dict(self.context)
        if extra:
            merged.update(extra)
        rec = IORecord(
            layer="posix",
            kind=kind,
            path=path,
            offset=offset,
            nbytes=nbytes,
            rank=self.rank,
            start=start,
            end=self.env.now,
            extra=merged,
        )
        for obs in self.observers:
            obs(rec)

    def _resolve(self, fd: int) -> PosixFile:
        f = self._files.get(fd)
        if f is None or f.closed:
            raise OSError(f"bad file descriptor {fd}")
        return f

    # -- descriptor lifecycle ------------------------------------------------------
    def open(self, path: str, create: bool = False, **create_kwargs):
        """Generator: open ``path``; returns a file descriptor (int)."""
        start = self.env.now
        inode = yield from self.client.open(
            path, create=create, rank=self.rank, **create_kwargs
        )
        fd = self._next_fd
        self._next_fd += 1
        self._files[fd] = PosixFile(fd=fd, path=path)
        # Layout info rides on the OPEN record so replayed traces can
        # recreate files with the original striping.
        self._emit(
            OpKind.OPEN, path, 0, 0, start,
            extra={
                "stripe_count": inode.layout.stripe_count,
                "stripe_size": inode.layout.stripe_size,
            },
        )
        return fd

    def close(self, fd: int):
        """Generator: close a descriptor."""
        f = self._resolve(fd)
        start = self.env.now
        yield from self.client.close(f.path, rank=self.rank)
        f.closed = True
        self._emit(OpKind.CLOSE, f.path, 0, 0, start)

    def lseek(self, fd: int, offset: int, whence: int = SEEK_SET) -> int:
        """Reposition a descriptor (no simulated cost, like the real call)."""
        f = self._resolve(fd)
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = f.pos + offset
        elif whence == SEEK_END:
            new = self.client.fs.namespace.lookup(f.path).size + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if new < 0:
            raise ValueError("resulting position is negative")
        f.pos = new
        return new

    # -- data ----------------------------------------------------------------------
    def write(self, fd: int, nbytes: int):
        """Generator: write at the current position, advancing it."""
        f = self._resolve(fd)
        result = yield from self.pwrite(fd, f.pos, nbytes)
        f.pos += nbytes
        return result

    def read(self, fd: int, nbytes: int):
        """Generator: read at the current position, advancing it."""
        f = self._resolve(fd)
        result = yield from self.pread(fd, f.pos, nbytes)
        f.pos += nbytes
        return result

    def pwrite(self, fd: int, offset: int, nbytes: int):
        """Generator: positional write (does not move the position)."""
        f = self._resolve(fd)
        start = self.env.now
        dt = yield from self.client.write(f.path, offset, nbytes, rank=self.rank)
        self._emit(OpKind.WRITE, f.path, offset, nbytes, start)
        return dt

    def pread(self, fd: int, offset: int, nbytes: int):
        """Generator: positional read (does not move the position)."""
        f = self._resolve(fd)
        start = self.env.now
        dt = yield from self.client.read(f.path, offset, nbytes, rank=self.rank)
        self._emit(OpKind.READ, f.path, offset, nbytes, start)
        return dt

    def fsync(self, fd: int):
        f = self._resolve(fd)
        start = self.env.now
        yield from self.client.fsync(f.path, rank=self.rank)
        self._emit(OpKind.FSYNC, f.path, 0, 0, start)

    # -- metadata passthrough ---------------------------------------------------------
    def _meta(self, kind: OpKind, fn, path: str):
        start = self.env.now
        result = yield from fn(path, rank=self.rank)
        self._emit(kind, path, 0, 0, start)
        return result

    def stat(self, path: str):
        return self._meta(OpKind.STAT, self.client.stat, path)

    def unlink(self, path: str):
        return self._meta(OpKind.UNLINK, self.client.unlink, path)

    def mkdir(self, path: str):
        return self._meta(OpKind.MKDIR, self.client.mkdir, path)

    def rmdir(self, path: str):
        return self._meta(OpKind.RMDIR, self.client.rmdir, path)

    def readdir(self, path: str):
        return self._meta(OpKind.READDIR, self.client.readdir, path)

    def creat(self, path: str, **create_kwargs):
        """Generator: create + open (the POSIX ``creat`` call)."""
        fd = yield from self.open(path, create=True, **create_kwargs)
        return fd
