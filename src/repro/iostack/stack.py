"""Convenience assembly of the full per-rank I/O stack.

Builds, for every rank of a program, the Fig. 2 layering
``HDF5 -> MPI-IO -> POSIX -> PFS client`` with all the cross-rank shared
state wired correctly, and exposes a single :meth:`IOStackBuilder.io_factory`
suitable for :meth:`repro.mpi.runtime.MPIRuntime.launch`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.iostack.hdf5 import H5File
from repro.iostack.mpiio import MPIIOLayer
from repro.iostack.posix import PosixLayer
from repro.mpi.runtime import MPIRuntime, RankContext
from repro.ops import IORecord
from repro.pfs.filesystem import ParallelFileSystem
from repro.telemetry import TELEMETRY

log = logging.getLogger(__name__)


def _count_layer_record(rec: IORecord) -> None:
    """Telemetry observer: per-layer record counters (attached only when
    telemetry is enabled at stack-build time, so disabled runs pay nothing
    per record)."""
    TELEMETRY.metrics.counter(f"iostack.records.{rec.layer}").inc()


@dataclass
class RankIO:
    """The I/O stack of one rank (attached as ``ctx.io``)."""

    posix: PosixLayer
    mpiio: MPIIOLayer
    h5: H5File

    def add_observer(self, observer: Callable[[IORecord], None]) -> None:
        """Subscribe ``observer`` to records from every layer of this rank."""
        self.posix.observers.append(observer)
        self.mpiio.observers.append(observer)
        self.h5.observers.append(observer)
        self.posix.client.observers.append(observer)


class IOStackBuilder:
    """Creates consistent per-rank stacks for one program run.

    Parameters
    ----------
    pfs:
        The file system the ranks talk to.
    runtime:
        The MPI runtime whose ranks will receive stacks.
    cb_nodes:
        Collective-buffering aggregator count (see
        :class:`~repro.iostack.mpiio.MPIIOLayer`).
    read_cache_bytes:
        Per-rank client read cache size.
    rpc_timeout / rpc_retries / retry_backoff / retry_backoff_cap:
        Client resilience knobs, forwarded to every rank's
        :class:`~repro.pfs.client.PFSClient` (see there); left at their
        defaults the clients are byte-identical to pre-resilience ones.
    observers:
        Observers attached to every layer of every rank (e.g. a tracer).
    """

    def __init__(
        self,
        pfs: ParallelFileSystem,
        runtime: MPIRuntime,
        cb_nodes: Optional[int] = None,
        read_cache_bytes: int = 0,
        write_cache_bytes: int = 0,
        rpc_timeout: float = 0.0,
        rpc_retries: int = 0,
        retry_backoff: float = 0.005,
        retry_backoff_cap: float = 0.5,
        observers: Optional[List[Callable[[IORecord], None]]] = None,
    ):
        self.pfs = pfs
        self.runtime = runtime
        self.cb_nodes = cb_nodes
        self.read_cache_bytes = read_cache_bytes
        self.write_cache_bytes = write_cache_bytes
        self.rpc_timeout = rpc_timeout
        self.rpc_retries = rpc_retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self.observers = list(observers or [])
        self._mpiio_registry = MPIIOLayer.make_shared_registry()
        self._h5_shared = H5File.make_shared_state()
        self.stacks: Dict[int, RankIO] = {}

    def io_factory(self, ctx: RankContext) -> RankIO:
        """Build (or return) the stack for ``ctx``'s rank."""
        if ctx.rank in self.stacks:
            return self.stacks[ctx.rank]
        client = self.pfs.client(
            ctx.node, rank=ctx.rank,
            read_cache_bytes=self.read_cache_bytes,
            write_cache_bytes=self.write_cache_bytes,
            rpc_timeout=self.rpc_timeout,
            rpc_retries=self.rpc_retries,
            retry_backoff=self.retry_backoff,
            retry_backoff_cap=self.retry_backoff_cap,
        )
        posix = PosixLayer(client, rank=ctx.rank)
        mpiio = MPIIOLayer(
            posix,
            ctx.comm,
            ctx.rank,
            shared_registry=self._mpiio_registry,
            cb_nodes=self.cb_nodes,
        )
        h5 = H5File(mpiio, shared=self._h5_shared)
        stack = RankIO(posix=posix, mpiio=mpiio, h5=h5)
        for obs in self.observers:
            stack.add_observer(obs)
        if TELEMETRY.active:
            TELEMETRY.metrics.counter("iostack.stacks_built").inc()
            stack.add_observer(_count_layer_record)
        log.debug("built I/O stack for rank %d on %s", ctx.rank, ctx.node)
        self.stacks[ctx.rank] = stack
        return stack
