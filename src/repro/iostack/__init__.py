"""The layered parallel I/O stack (paper Fig. 2).

"An application can use a high-level library such as HDF5 ... implemented
on top of MPI-IO which, in turn, performs POSIX I/O calls against a
parallel file system."  Each layer here is a real transformation of the
request stream, and each emits its own observation records so that
multi-level tracing (Recorder-like, [25], [26]) sees genuinely different
streams at different levels:

* :mod:`repro.iostack.posix` -- file descriptors, positions, and the
  POSIX call surface over the PFS client.
* :mod:`repro.iostack.mpiio` -- independent and collective (two-phase)
  I/O, data sieving for non-contiguous independent access.
* :mod:`repro.iostack.hdf5` -- datasets, contiguous and chunked layouts,
  hyperslab selections, and library metadata traffic.
"""

from repro.iostack.posix import PosixFile, PosixLayer
from repro.iostack.mpiio import MPIIOFile, MPIIOLayer
from repro.iostack.hdf5 import Dataset, H5File

__all__ = [
    "Dataset",
    "H5File",
    "MPIIOFile",
    "MPIIOLayer",
    "PosixFile",
    "PosixLayer",
]
