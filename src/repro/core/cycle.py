"""The executable evaluation cycle (paper Fig. 4).

"Traditionally, the process of understanding I/O behavior and performance
... is performed iteratively and empirically in a closed loop fashion.
The I/O evaluation cycle consists of three main phases: (1) Measurements
and Statistics Collection, (2) Modeling and Prediction, and (3)
Simulation."

:class:`EvaluationCycle` runs that loop for a given workload:

1. **Measure**: run the workload on the system with the profiler and
   tracer attached;
2. **Model**: build the characterization profile and synthesize a
   representative workload from it (the phase-2 -> phase-1 feedback);
3. **Simulate**: run the synthesized workload on a fresh instance of the
   system;
4. **Compare**: quantify how well the model-driven simulation reproduced
   the measurement (volumes, runtime) -- the accuracy signal that drives
   the next iteration (e.g. more detailed monitoring or a different
   generation technique).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.cluster.platform import Platform
from repro.monitoring.profiler import DarshanProfiler, JobProfile
from repro.monitoring.tracer import RecorderTracer
from repro.pfs.filesystem import ParallelFileSystem, build_pfs
from repro.simulate.execsim import run_workload
from repro.wgen.from_profile import synthesize_from_profile
from repro.workloads.base import Workload, WorkloadResult


@dataclass
class CycleReport:
    """Outcome of one iteration of the evaluation cycle."""

    iteration: int
    measured: WorkloadResult
    profile: JobProfile
    simulated: WorkloadResult
    trace_records: int

    @property
    def bytes_error(self) -> float:
        """Relative error of total bytes moved by the synthetic workload."""
        orig = self.measured.bytes_written + self.measured.bytes_read
        synth = self.simulated.bytes_written + self.simulated.bytes_read
        if orig == 0:
            return 0.0
        return abs(synth - orig) / orig

    @property
    def duration_error(self) -> float:
        """Relative runtime error of the model-driven simulation."""
        if self.measured.duration <= 0:
            return 0.0
        return abs(self.simulated.duration - self.measured.duration) / self.measured.duration

    def converged(self, bytes_tol: float = 0.01, duration_tol: float = 0.5) -> bool:
        """Whether the model reproduces the measurement acceptably."""
        return self.bytes_error <= bytes_tol and self.duration_error <= duration_tol

    def summary(self) -> str:
        return (
            f"cycle iteration {self.iteration}: measured {self.measured.duration:.3f}s, "
            f"simulated {self.simulated.duration:.3f}s "
            f"(duration err {self.duration_error:.1%}, bytes err {self.bytes_error:.1%}), "
            f"{self.trace_records} trace records, "
            f"{self.profile.job.files_accessed} files profiled"
        )


class EvaluationCycle:
    """Runs measure -> model -> simulate -> compare iterations.

    Parameters
    ----------
    platform_factory:
        Zero-argument callable creating a fresh platform (both the
        measurement and the simulation legs get one, so state never
        leaks between them).
    workload_factory:
        Zero-argument callable creating the workload under study.
    seed:
        Seed for the synthesis step.
    """

    def __init__(
        self,
        platform_factory: Callable[[], Platform],
        workload_factory: Callable[[], Workload],
        seed: int = 0,
        include_think_time: bool = True,
        generator: str = "profile",
    ):
        if generator not in ("profile", "trace"):
            raise ValueError(
                f"generator must be 'profile' or 'trace', got {generator!r}"
            )
        self.platform_factory = platform_factory
        self.workload_factory = workload_factory
        self.seed = seed
        self.include_think_time = include_think_time
        #: Which Sec. IV-B-4 generation technique phase 2 uses:
        #: "profile" = IOWA-style synthesis from counters,
        #: "trace"   = replay-based modeling from the recorded trace.
        self.generator = generator
        self.reports: List[CycleReport] = []

    def run_iteration(self) -> CycleReport:
        """Run one full loop of Fig. 4 and record its report."""
        iteration = len(self.reports)

        # Phase 1: measurements and statistics collection.
        platform = self.platform_factory()
        pfs = build_pfs(platform)
        workload = self.workload_factory()
        profiler = DarshanProfiler(job_name=workload.name)
        tracer = RecorderTracer()
        measured = run_workload(
            platform, pfs, workload, observers=[profiler, tracer]
        )
        profile = profiler.profile(n_ranks=workload.n_ranks)

        # Phase 2: modeling and prediction -> workload generation.
        if self.generator == "trace":
            from repro.simulate.tracesim import trace_to_workload

            synthetic = trace_to_workload(
                tracer.records,
                name=f"{workload.name}-replay",
                preserve_think_time=self.include_think_time,
            )
        else:
            synthetic = synthesize_from_profile(
                profile,
                seed=self.seed + iteration,
                include_think_time=self.include_think_time,
            )

        # Phase 3: simulation of the generated workload on a fresh system.
        sim_platform = self.platform_factory()
        sim_pfs = build_pfs(sim_platform)
        simulated = run_workload(sim_platform, sim_pfs, synthetic)

        report = CycleReport(
            iteration=iteration,
            measured=measured,
            profile=profile,
            simulated=simulated,
            trace_records=len(tracer.records),
        )
        self.reports.append(report)
        return report

    def run(self, iterations: int = 1) -> List[CycleReport]:
        """Run several iterations; returns all reports."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        for _ in range(iterations):
            self.run_iteration()
        return self.reports
