"""The large-scale I/O evaluation taxonomy (paper Sec. IV, Fig. 4).

The taxonomy is a tree of :class:`TaxonomyNode` records.  Each node knows
the :mod:`repro` module(s) implementing it, so the taxonomy doubles as the
repository's map -- and the survey corpus tags articles with node ids, so
coverage statistics fall out of a join (see
:func:`repro.survey.analysis.taxonomy_coverage`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class TaxonomyNode:
    """One node of the taxonomy tree."""

    id: str
    title: str
    modules: Tuple[str, ...] = ()
    children: Tuple["TaxonomyNode", ...] = ()

    def walk(self):
        """Yield this node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaf_ids(self) -> List[str]:
        return [n.id for n in self.walk() if not n.children]


def _n(id, title, modules=(), children=()):
    return TaxonomyNode(id=id, title=title, modules=tuple(modules), children=tuple(children))


#: Phase 1 of Fig. 4: measurements and statistics collection (Sec. IV-A).
_MEASUREMENT = _n(
    "measurement",
    "Measurements & Statistics Collection",
    children=(
        _n(
            "workloads",
            "Workloads",
            children=(
                _n("workloads.application", "Application code",
                   ("repro.simulate.execsim",)),
                _n("workloads.benchmarks", "Synthetic & application benchmarks",
                   ("repro.workloads.ior", "repro.workloads.npb",
                    "repro.workloads.checkpoint")),
                _n("workloads.metadata", "Metadata benchmarks",
                   ("repro.workloads.mdtest",)),
                _n("workloads.replication", "Workload & I/O replication",
                   ("repro.workloads.proxy", "repro.workloads.skeleton",
                    "repro.replay")),
                _n("workloads.simulation", "Simulation frameworks",
                   ("repro.des", "repro.simulate")),
            ),
        ),
        _n(
            "monitoring",
            "Data Monitoring & Collection",
            children=(
                _n("monitoring.profilers", "Profiles (I/O characterization)",
                   ("repro.monitoring.profiler", "repro.monitoring.dxt")),
                _n("monitoring.tracers", "Traces",
                   ("repro.monitoring.tracer",)),
                _n("monitoring.server_side", "Server-side statistics",
                   ("repro.monitoring.server_stats",)),
                _n("monitoring.storage", "Storage-system-level monitoring",
                   ("repro.monitoring.fsmonitor", "repro.monitoring.server_stats")),
                _n("monitoring.endtoend", "End-to-end I/O behavior",
                   ("repro.monitoring.endtoend",)),
            ),
        ),
    ),
)

#: Phase 2 of Fig. 4: modeling and prediction (Sec. IV-B).
_MODELING = _n(
    "modeling",
    "Modeling & Prediction",
    children=(
        _n(
            "modeling.analysis",
            "Statistics & analysis",
            ("repro.modeling.statistics", "repro.modeling.markov",
             "repro.modeling.hypothesis_testing"),
            children=(
                _n("modeling.analysis.application", "Application-level analysis",
                   ("repro.monitoring.profiler",)),
                _n("modeling.analysis.system", "Storage-system-level analysis",
                   ("repro.monitoring.server_stats",)),
            ),
        ),
        _n("modeling.predictive", "Predictive analytics",
           ("repro.modeling.mlp", "repro.modeling.forest",
            "repro.modeling.predictor")),
        _n("modeling.replay", "Replay-based modeling",
           ("repro.modeling.replay_model", "repro.modeling.trace_compress",
            "repro.modeling.extrapolate")),
        _n("modeling.generation", "Workload generation",
           ("repro.wgen.dsl", "repro.wgen.from_profile", "repro.wgen.iowa")),
    ),
)

#: Phase 3 of Fig. 4: simulation (Sec. IV-C).
_SIMULATION = _n(
    "simulation",
    "Simulation",
    children=(
        _n("simulation.des", "(Parallel) discrete-event simulation",
           ("repro.des.engine", "repro.des.ross")),
        _n("simulation.trace", "Trace-based simulation",
           ("repro.simulate.tracesim",)),
        _n("simulation.execution", "Application & execution-driven simulation",
           ("repro.simulate.execsim", "repro.mpi")),
    ),
)

#: Sec. V: the emerging workloads challenging the traditional assumptions.
_EMERGING = _n(
    "emerging",
    "Emerging HPC Workloads",
    children=(
        _n("emerging.analytics", "Advanced data analytics & ML",
           ("repro.workloads.analytics", "repro.workloads.facility")),
        _n("emerging.dl", "Distributed deep learning",
           ("repro.workloads.dlio",)),
        _n("emerging.workflows", "Data-intensive scientific workflows",
           ("repro.workloads.workflow",)),
    ),
)

#: The full taxonomy.
TAXONOMY = _n(
    "root",
    "Large-Scale I/O Performance Evaluation",
    children=(_MEASUREMENT, _MODELING, _SIMULATION, _EMERGING),
)

#: The three cycle phases Fig. 4 draws arrows between.
CYCLE_PHASES: Tuple[str, ...] = ("measurement", "modeling", "simulation")


def find_node(node_id: str) -> TaxonomyNode:
    """Look up a node by id anywhere in the tree."""
    for node in TAXONOMY.walk():
        if node.id == node_id:
            return node
    raise KeyError(f"no taxonomy node {node_id!r}")


def all_leaf_ids() -> List[str]:
    return [n.id for n in TAXONOMY.walk() if not n.children]


def render_tree(node: Optional[TaxonomyNode] = None, show_modules: bool = False) -> str:
    """Pretty-print the taxonomy tree."""
    node = node or TAXONOMY
    lines: List[str] = []

    def _render(n: TaxonomyNode, prefix: str, is_last: bool, is_root: bool):
        if is_root:
            lines.append(n.title)
        else:
            connector = "`-- " if is_last else "|-- "
            suffix = ""
            if show_modules and n.modules:
                suffix = f"  [{', '.join(n.modules)}]"
            lines.append(f"{prefix}{connector}{n.title}{suffix}")
        child_prefix = prefix if is_root else prefix + ("    " if is_last else "|   ")
        for i, child in enumerate(n.children):
            _render(child, child_prefix, i == len(n.children) - 1, False)

    _render(node, "", True, True)
    return "\n".join(lines)
