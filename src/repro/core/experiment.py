"""Experiment records for the benchmark harness.

Each reproduction experiment (E1-E4 figures, C1-C10 claims, A1-A3
ablations; see DESIGN.md) reports through an :class:`ExperimentRecord`:
the paper's claim, what was measured, and whether the measured shape
supports the claim.  :class:`ResultsCollector` aggregates records and
renders the EXPERIMENTS table, so benchmark output and documentation stay
in sync.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional


@dataclass
class ExperimentRecord:
    """One experiment's outcome."""

    id: str
    claim: str
    measured: Dict[str, Any] = field(default_factory=dict)
    supported: Optional[bool] = None
    notes: str = ""
    #: Reference to the run manifest that produced this record (set by
    #: :func:`repro.experiments.runner.run_experiments`).  Deliberately
    #: excluded from :meth:`to_dict`: the canonical payload describes the
    #: *outcome*, which must be byte-identical whether the record was
    #: computed fresh or served from cache.
    provenance: Optional[Dict[str, Any]] = field(
        default=None, repr=False, compare=False
    )

    def measure(self, **values: Any) -> "ExperimentRecord":
        """Attach measured values (chainable)."""
        self.measured.update(values)
        return self

    def verdict(self, supported: bool, notes: str = "") -> "ExperimentRecord":
        """Record whether the measurement supports the claim."""
        self.supported = supported
        if notes:
            self.notes = notes
        return self

    def summary(self) -> str:
        status = {True: "SUPPORTED", False: "NOT SUPPORTED", None: "UNEVALUATED"}[
            self.supported
        ]
        vals = ", ".join(f"{k}={_fmt(v)}" for k, v in self.measured.items())
        out = f"[{self.id}] {status}: {self.claim}"
        if vals:
            out += f"\n    measured: {vals}"
        if self.notes:
            out += f"\n    notes: {self.notes}"
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "claim": self.claim,
            "measured": self.measured,
            "supported": self.supported,
            "notes": self.notes,
        }


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


# -- canonical serialization -------------------------------------------------
#
# These live next to the record type (not in the runner) because every
# layer that stores, caches or diffs records must agree on the bytes:
# the experiment runner, the content-addressed run store
# (:mod:`repro.store`) and the golden-fixture tests.

def record_payload(record: ExperimentRecord) -> bytes:
    """Canonical byte serialization of a record (for caching and equality).

    Two records describing the same outcome serialize to the same bytes
    regardless of which process produced them.  ``provenance`` is
    deliberately excluded (see :class:`ExperimentRecord`): the canonical
    payload describes the *outcome*, which must be byte-identical whether
    the record was computed fresh or served from the store.
    """
    from repro.ioutil import canonical_json_bytes

    return canonical_json_bytes(record.to_dict())


def record_from_dict(payload: Dict) -> ExperimentRecord:
    """Inverse of :meth:`ExperimentRecord.to_dict`."""
    return ExperimentRecord(
        id=payload["id"],
        claim=payload["claim"],
        measured=payload["measured"],
        supported=payload["supported"],
        notes=payload["notes"],
    )


class ResultsCollector:
    """Accumulates experiment records and renders/persists them."""

    def __init__(self):
        self.records: Dict[str, ExperimentRecord] = {}

    def record(self, id: str, claim: str) -> ExperimentRecord:
        """Create (or fetch) the record for one experiment id."""
        if id not in self.records:
            self.records[id] = ExperimentRecord(id=id, claim=claim)
        return self.records[id]

    def __len__(self) -> int:
        return len(self.records)

    def all_supported(self) -> bool:
        evaluated = [r for r in self.records.values() if r.supported is not None]
        return bool(evaluated) and all(r.supported for r in evaluated)

    def table(self) -> str:
        """Markdown table of every record."""
        lines = [
            "| id | claim | measured | verdict |",
            "|----|-------|----------|---------|",
        ]
        for rid in sorted(self.records):
            r = self.records[rid]
            vals = "; ".join(f"{k}={_fmt(v)}" for k, v in r.measured.items())
            verdict = {True: "supported", False: "NOT supported", None: "-"}[r.supported]
            lines.append(f"| {r.id} | {r.claim} | {vals} | {verdict} |")
        return "\n".join(lines)

    def save(self, path) -> None:
        """Persist records as JSON."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        with open(p, "w", encoding="utf-8") as fh:
            json.dump(
                [self.records[k].to_dict() for k in sorted(self.records)],
                fh,
                indent=1,
            )
