"""The paper's primary contribution: the evaluation-cycle taxonomy.

* :mod:`repro.core.taxonomy` -- the taxonomy of Sec. IV / Fig. 4 as a
  data structure, with every node mapped to the :mod:`repro` modules that
  implement it and the surveyed articles that populate it.
* :mod:`repro.core.cycle` -- the executable closed loop: measure ->
  model/generate -> simulate -> compare, iterated (Fig. 4's dashed
  feedback arrows).
* :mod:`repro.core.experiment` -- experiment records used by the
  benchmark harness to report paper-claim vs. measured outcomes.
"""

from repro.core.taxonomy import TAXONOMY, TaxonomyNode, find_node, render_tree
from repro.core.cycle import CycleReport, EvaluationCycle
from repro.core.experiment import (
    ExperimentRecord,
    ResultsCollector,
    record_from_dict,
    record_payload,
)

__all__ = [
    "CycleReport",
    "EvaluationCycle",
    "ExperimentRecord",
    "ResultsCollector",
    "record_from_dict",
    "record_payload",
    "TAXONOMY",
    "TaxonomyNode",
    "find_node",
    "render_tree",
]
