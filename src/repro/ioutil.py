"""Durable filesystem and process-pool primitives for the result layers.

Two failure modes kept showing up at the edges of the caching/provenance
machinery and the parallel runners:

* **Torn writes** -- the cache and manifest writers used a fixed
  ``<name>.tmp`` sibling before renaming into place, so two concurrent
  invocations sharing a cache directory could interleave writes to the
  *same* temp file and rename a hybrid.  :func:`atomic_write_json` uses a
  :func:`tempfile.mkstemp` name (unique per writer) plus :func:`os.replace`,
  so readers only ever observe an old-complete or new-complete file.

* **Worker-process death** -- ``ProcessPoolExecutor.map`` raises
  :class:`~concurrent.futures.process.BrokenProcessPool` the moment any
  worker dies (OOM kill, segfault in a C extension, ``os._exit``), taking
  every other in-flight result down with it.  :func:`resilient_pool_map`
  submits futures individually, retries the tasks that were in flight when
  a pool broke once in a fresh pool (a transient kill should not fail a
  long sweep), and converts anything that still fails into a per-task
  error string instead of an exception -- callers record the failure and
  keep going.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
)
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

log = logging.getLogger(__name__)

PathLike = Union[str, Path]


# -- canonical serialization -------------------------------------------------
#
# One byte representation per JSON value: sorted keys, no whitespace, UTF-8.
# Every layer that hashes or compares payloads (record cache, sweep cache,
# the content-addressed run store) must agree on these bytes, so the
# helpers live here at the bottom of the dependency graph.

def canonical_json_bytes(payload: Any) -> bytes:
    """Canonical byte serialization of a JSON-serializable value."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 of ``data`` -- the repo-wide content-address function."""
    return hashlib.sha256(data).hexdigest()


def canonical_digest(payload: Any) -> str:
    """SHA-256 over the canonical JSON bytes of ``payload``."""
    return sha256_hex(canonical_json_bytes(payload))


def atomic_write_json(
    payload: Any,
    path: PathLike,
    *,
    indent: Optional[int] = 1,
    sort_keys: bool = False,
    trailing_newline: bool = False,
) -> Path:
    """Write ``payload`` as JSON so readers never see a partial file.

    The document is serialized to a uniquely-named temp file in the target
    directory (same filesystem, so the final :func:`os.replace` is atomic)
    and renamed over ``path``.  Parent directories are created on demand;
    the temp file is removed on any failure.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=indent, sort_keys=sort_keys)
            if trailing_newline:
                fh.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already renamed or cleaned up
            pass
        raise
    return path


def atomic_write_bytes(data: bytes, path: PathLike) -> Path:
    """Write ``data`` verbatim so readers never see a partial file.

    Same mkstemp + :func:`os.replace` discipline as
    :func:`atomic_write_json`, but byte-exact: the content-addressed store
    uses this so the bytes on disk hash back to the object's digest.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already renamed or cleaned up
            pass
        raise
    return path


#: One pool-map outcome: ``(value, None)`` on success, ``(None, error)`` on
#: failure, where ``error`` is a human-readable string for the manifest.
PoolOutcome = Tuple[Optional[Any], Optional[str]]

#: Error string recorded for tasks cancelled before they started.
CANCELLED_ERROR = "cancelled before start"


class CancelToken:
    """Cooperative cancellation handle for :func:`resilient_pool_map`.

    The service layer queues long fan-outs and needs to abort the tasks
    that have not started yet without waiting for the whole pool to
    drain.  A token is shared between the submitter and the canceller:
    calling :meth:`cancel` (from any thread) marks the token and fires
    every registered :meth:`on_cancel` callback exactly once;
    ``resilient_pool_map`` polls :attr:`cancelled` between submissions
    and stops feeding the pool.  Tasks already handed over run to
    completion -- process pools cannot safely interrupt a running
    worker -- and report their real outcome.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cancelled = False
        self._callbacks: List[Callable[[], None]] = []

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Mark the token cancelled and fire pending callbacks once."""
        with self._lock:
            if self._cancelled:
                return
            self._cancelled = True
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            try:
                cb()
            except Exception:  # pragma: no cover - defensive
                log.exception("cancel callback failed")

    def on_cancel(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to run on :meth:`cancel`.

        Fires immediately (in the calling thread) when the token is
        already cancelled, so registration is race-free.
        """
        with self._lock:
            if not self._cancelled:
                self._callbacks.append(callback)
                return
        callback()


def _describe_exception(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def resilient_pool_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: int,
    *,
    crash_retries: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
    on_result: Optional[Callable[[int, PoolOutcome], None]] = None,
    cancel: Optional[CancelToken] = None,
) -> List[PoolOutcome]:
    """Map ``fn`` over ``items`` on a process pool, surviving worker death.

    Returns one :data:`PoolOutcome` per item, in item order.  Exceptions
    raised *inside* a worker are deterministic task failures: they are
    recorded immediately and never retried.  A :class:`BrokenProcessPool`
    (the worker process itself died) poisons every in-flight future, so
    those tasks are retried up to ``crash_retries`` times in a fresh pool
    -- distinguishing one transient kill from a task that reliably crashes
    its worker -- before being recorded as failures.

    ``initializer``/``initargs`` run in every worker process, including
    the isolated retry pools (the telemetry layer uses this to propagate
    the parent's log level and telemetry on/off state).  ``on_result`` is
    a progress hook called in the parent as ``on_result(i, outcome)``
    once per item, in pool-completion order -- retried tasks report only
    their final outcome.  Hook exceptions are logged, never raised.

    ``cancel`` takes a :class:`CancelToken`: cancelling it keeps every
    not-yet-submitted task off the pool (recorded as
    ``(None, CANCELLED_ERROR)``) and skips crash retries, while tasks
    already handed to the pool finish and report their real outcome.
    Tasks are fed to the pool in a small submission window (the workers
    plus one prefetch) rather than all upfront, both to bound how much
    work a cancellation lets through and because revoking submitted
    futures with ``Future.cancel`` is unsafe here: Python 3.11's
    broken-pool teardown calls ``set_exception`` on every pending future
    unguarded, and hitting an already-cancelled one kills the executor's
    management thread and hangs the map.  The token may be cancelled
    from another thread at any time, including before the call.
    """
    results: List[Optional[PoolOutcome]] = [None] * len(items)
    crashed: List[int] = []

    def report(i: int, outcome: PoolOutcome) -> None:
        results[i] = outcome
        if on_result is not None:
            try:
                on_result(i, outcome)
            except Exception:  # pragma: no cover - progress must not kill work
                log.exception("on_result hook failed for task %d", i)

    n_workers = min(workers, len(items))
    window = n_workers + 1
    next_i = 0
    with ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        by_future: dict = {}

        def top_up() -> None:
            nonlocal next_i
            while next_i < len(items) and len(by_future) < window:
                if cancel is not None and cancel.cancelled:
                    return
                try:
                    future = pool.submit(fn, items[next_i])
                except BrokenProcessPool as exc:
                    # Pool died between completions: queue the task for
                    # the isolated-pool retry rounds like any in-flight
                    # casualty.
                    crashed.append(next_i)
                    results[next_i] = (
                        None,
                        f"worker process crashed ({_describe_exception(exc)})",
                    )
                else:
                    by_future[future] = next_i
                next_i += 1

        top_up()
        while by_future:
            done, _pending = futures_wait(
                by_future, return_when=FIRST_COMPLETED
            )
            for future in done:
                i = by_future.pop(future)
                try:
                    report(i, (future.result(), None))
                except CancelledError:  # pragma: no cover - defensive
                    report(i, (None, CANCELLED_ERROR))
                except BrokenProcessPool as exc:
                    crashed.append(i)
                    results[i] = (
                        None,
                        f"worker process crashed ({_describe_exception(exc)})",
                    )
                except Exception as exc:
                    log.debug("pool task %d failed", i, exc_info=exc)
                    report(i, (None, _describe_exception(exc)))
            top_up()
    # Tasks never handed to the pool (token fired first) are cancelled.
    for i in range(len(items)):
        if results[i] is None and i >= next_i:
            report(i, (None, CANCELLED_ERROR))

    # Retry the tasks that were in flight when the pool broke, each in its
    # own single-worker pool: one task that deterministically kills its
    # worker must not poison the innocent bystanders a second time.
    # A cancelled token stops the retries too -- the caller asked for the
    # fan-out to wind down, not for fresh pools.
    for round_ in range(crash_retries):
        if not crashed or (cancel is not None and cancel.cancelled):
            break
        log.warning(
            "process pool broke with %d task(s) in flight; retrying each "
            "in an isolated pool (retry %d/%d)",
            len(crashed), round_ + 1, crash_retries,
        )
        still_crashing: List[int] = []
        for i in crashed:
            with ProcessPoolExecutor(
                max_workers=1, initializer=initializer, initargs=initargs
            ) as pool:
                try:
                    report(i, (pool.submit(fn, items[i]).result(), None))
                except BrokenProcessPool as exc:
                    still_crashing.append(i)
                    results[i] = (
                        None,
                        f"worker process crashed ({_describe_exception(exc)})",
                    )
                except Exception as exc:
                    log.debug("pool task %d failed", i, exc_info=exc)
                    report(i, (None, _describe_exception(exc)))
        crashed = still_crashing
    if crashed:
        log.warning(
            "%d task(s) still crashing their worker after %d isolated "
            "retry(ies); recording as failed", len(crashed), crash_retries,
        )
        for i in crashed:
            report(i, results[i])  # final outcome for the progress hook
    return [r if r is not None else (None, "task never ran") for r in results]
