"""Modeling and prediction (paper Sec. IV-B).

The four sub-categories of the paper's taxonomy:

1. *Statistics and analysis* -- :mod:`repro.modeling.statistics` (descriptive
   statistics, CDFs, variability), :mod:`repro.modeling.regression` (linear
   models with diagnostics), :mod:`repro.modeling.markov` (Markov-chain
   models of request streams), :mod:`repro.modeling.hypothesis_testing`.
2. *Predictive analytics* -- :mod:`repro.modeling.mlp` (a NumPy multi-layer
   perceptron, after Schmid & Kunkel [56]), :mod:`repro.modeling.forest`
   (decision trees and random forests from scratch, after Sun et al. [57]),
   and :mod:`repro.modeling.predictor` (the I/O-time prediction harness
   comparing them against linear baselines -- claim C6).
3. *Replay-based modeling* -- :mod:`repro.modeling.trace_compress`
   (tandem-repeat trace compression, after Hao et al. [15]) and
   :mod:`repro.modeling.replay_model`.
4. (*Workload generation* lives in :mod:`repro.wgen`.)

Plus :mod:`repro.modeling.extrapolate`: ScalaIOExtrap-style [16], [17]
trace extrapolation across rank counts (claim C8).
"""

from repro.modeling.statistics import (
    DescriptiveStats,
    coefficient_of_variation,
    describe,
    ecdf,
    pearson_correlation,
)
from repro.modeling.regression import LinearModel, polynomial_features
from repro.modeling.markov import MarkovChain
from repro.modeling.hypothesis_testing import TestResult, ks_test, t_test
from repro.modeling.features import profile_features, workload_features
from repro.modeling.mlp import MLPRegressor
from repro.modeling.forest import DecisionTreeRegressor, RandomForestRegressor
from repro.modeling.predictor import ModelComparison, PerformancePredictor
from repro.modeling.trace_compress import (
    CompressedTrace,
    Loop,
    compress_ops,
    decompress,
)
from repro.modeling.extrapolate import TraceExtrapolator
from repro.modeling.replay_model import ReplayModel
from repro.modeling.trace_distance import (
    DISTANCE_THRESHOLD,
    feature_distance,
    structure_signature,
    trace_distance,
)

__all__ = [
    "CompressedTrace",
    "DISTANCE_THRESHOLD",
    "DecisionTreeRegressor",
    "DescriptiveStats",
    "LinearModel",
    "Loop",
    "MLPRegressor",
    "MarkovChain",
    "ModelComparison",
    "PerformancePredictor",
    "RandomForestRegressor",
    "ReplayModel",
    "TestResult",
    "TraceExtrapolator",
    "coefficient_of_variation",
    "compress_ops",
    "decompress",
    "describe",
    "ecdf",
    "feature_distance",
    "ks_test",
    "pearson_correlation",
    "polynomial_features",
    "profile_features",
    "structure_signature",
    "t_test",
    "trace_distance",
    "workload_features",
]
