"""Descriptive statistics for I/O performance data.

Paper Sec. IV-B-1 enumerates the working statistician's toolbox for I/O
analysis: "arithmetic mean, standard deviation, linear regression, Markov
models, hypothesis testing, probability density and cumulative density
functions, coefficient of variance, and coefficient of correlation."  This
module covers the distributional pieces; regression, Markov models and
tests live in their own modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class DescriptiveStats:
    """Summary statistics of one sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean)."""
        return self.std / self.mean if self.mean else 0.0

    @property
    def iqr(self) -> float:
        return self.p75 - self.p25

    def summary(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
            f"cv={self.cv:.3f} min={self.minimum:.4g} med={self.median:.4g} "
            f"p95={self.p95:.4g} max={self.maximum:.4g}"
        )


def describe(values: Sequence[float]) -> DescriptiveStats:
    """Compute summary statistics (sample standard deviation, ddof=1)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot describe an empty sample")
    return DescriptiveStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p25=float(np.percentile(arr, 25)),
        median=float(np.percentile(arr, 50)),
        p75=float(np.percentile(arr, 75)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )


def coefficient_of_variation(values: Sequence[float]) -> float:
    """std/mean -- the standard I/O variability metric (Lockwood et al. [47])."""
    return describe(values).cv


def ecdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (sorted values, cumulative probabilities)."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("cannot build an ECDF from an empty sample")
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Coefficient of correlation between two equal-length samples."""
    ax = np.asarray(list(x), dtype=float)
    ay = np.asarray(list(y), dtype=float)
    if ax.shape != ay.shape:
        raise ValueError("samples must have equal length")
    if ax.size < 2:
        raise ValueError("need at least two points")
    if ax.std() == 0 or ay.std() == 0:
        return 0.0
    return float(np.corrcoef(ax, ay)[0, 1])


def histogram_pdf(
    values: Sequence[float], bins: int = 20
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalised histogram as (bin_centers, densities)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot build a PDF from an empty sample")
    densities, edges = np.histogram(arr, bins=bins, density=True)
    centers = (edges[:-1] + edges[1:]) / 2
    return centers, densities


def bootstrap_ci(
    values: Sequence[float],
    stat=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Bootstrap confidence interval for an arbitrary statistic."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    stats = np.array(
        [stat(rng.choice(arr, size=arr.size, replace=True)) for _ in range(n_resamples)]
    )
    alpha = (1 - confidence) / 2
    return (
        float(np.percentile(stats, 100 * alpha)),
        float(np.percentile(stats, 100 * (1 - alpha))),
    )
