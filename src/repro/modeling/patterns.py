"""I/O behaviour prediction from repetitive structure (Omnisc'IO-style).

Dorier et al.'s Omnisc'IO [55] "uses formal grammars to predict I/O
behaviors in HPC": it learns the repetitive structure of an application's
I/O stream online and predicts *what* the next operation will be and
*where* it will land, enabling prefetching and scheduling decisions.

This module reproduces that capability with an order-``k`` context model
with escape to shorter contexts (PPM-style) rather than a Sequitur
grammar: both learn the stream's repetitive structure online; the context
model is the simpler estimator with the same observable behaviour on the
paper's claim -- near-perfect next-op prediction on structured streams
(checkpoint loops), chance-level on shuffled streams (DL training reads).

Two layers:

* :class:`ContextModel` -- a generic online next-symbol predictor over any
  hashable alphabet.
* :class:`OpPredictor` -- applies it to :class:`~repro.ops.IOOp` streams:
  symbols are (kind, path, size) classes, and per-symbol offset deltas are
  tracked so the predictor emits a concrete (kind, path, offset, nbytes)
  prediction -- what a prefetcher needs.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.ops import IOOp, OpKind


class ContextModel:
    """Online order-``k`` next-symbol predictor with escape.

    For each context length from ``order`` down to 0, the model keeps
    counts of the next symbol seen after that context; prediction uses the
    longest context with any history (longest-match escape).

    Parameters
    ----------
    order:
        Maximum context length.
    """

    def __init__(self, order: int = 3):
        if order < 0:
            raise ValueError("order must be non-negative")
        self.order = order
        #: counts[k][context_tuple][next_symbol] -> occurrences
        self._counts: List[Dict[tuple, Counter]] = [
            defaultdict(Counter) for _ in range(order + 1)
        ]
        self._history: List[Hashable] = []
        self.observed = 0

    def observe(self, symbol: Hashable) -> None:
        """Feed one symbol (updates every context order)."""
        h = self._history
        for k in range(min(self.order, len(h)) + 1):
            ctx = tuple(h[len(h) - k :])
            self._counts[k][ctx][symbol] += 1
        h.append(symbol)
        if len(h) > self.order:
            del h[: len(h) - self.order]
        self.observed += 1

    def predict(self) -> Optional[Hashable]:
        """Most likely next symbol (longest matching context wins)."""
        h = self._history
        for k in range(min(self.order, len(h)), -1, -1):
            ctx = tuple(h[len(h) - k :])
            counter = self._counts[k].get(ctx)
            if counter:
                return counter.most_common(1)[0][0]
        return None

    def predict_distribution(self) -> Dict[Hashable, float]:
        """Probability distribution at the longest matching context."""
        h = self._history
        for k in range(min(self.order, len(h)), -1, -1):
            ctx = tuple(h[len(h) - k :])
            counter = self._counts[k].get(ctx)
            if counter:
                total = sum(counter.values())
                return {s: c / total for s, c in counter.items()}
        return {}

    def evaluate(self, symbols: Sequence[Hashable]) -> float:
        """Online accuracy: fraction of symbols predicted before observing.

        The model both predicts and learns as it scans the sequence --
        Omnisc'IO's deployment mode.
        """
        symbols = list(symbols)
        if not symbols:
            raise ValueError("cannot evaluate on an empty sequence")
        hits = 0
        for sym in symbols:
            if self.predict() == sym:
                hits += 1
            self.observe(sym)
        return hits / len(symbols)


@dataclass(frozen=True)
class OpPrediction:
    """A concrete predicted next operation."""

    kind: OpKind
    path: str
    offset: int
    nbytes: int


def _op_symbol(op: IOOp) -> tuple:
    """The symbol class of an op: identity minus the offset."""
    return (op.kind.value, op.path, op.nbytes)


class OpPredictor:
    """Next-I/O-operation predictor over op streams.

    Wraps a :class:`ContextModel` over op symbol classes and tracks, per
    symbol, the last offset and the modal offset *delta*, so a symbol
    prediction becomes a concrete byte-range prediction (the input a
    prefetcher or burst scheduler needs).
    """

    def __init__(self, order: int = 3):
        self.model = ContextModel(order=order)
        self._last_offset: Dict[tuple, int] = {}
        self._delta_counts: Dict[tuple, Counter] = defaultdict(Counter)

    def observe(self, op: IOOp) -> None:
        sym = _op_symbol(op)
        last = self._last_offset.get(sym)
        if last is not None:
            self._delta_counts[sym][op.offset - last] += 1
        self._last_offset[sym] = op.offset
        self.model.observe(sym)

    def predict(self) -> Optional[OpPrediction]:
        """Predict the next operation, or None before any history."""
        sym = self.model.predict()
        if sym is None:
            return None
        kind_value, path, nbytes = sym
        last = self._last_offset.get(sym, 0)
        deltas = self._delta_counts.get(sym)
        delta = deltas.most_common(1)[0][0] if deltas else nbytes
        return OpPrediction(
            kind=OpKind(kind_value),
            path=path,
            offset=max(0, last + delta),
            nbytes=nbytes,
        )

    def evaluate(
        self, ops: Sequence[IOOp], require_offset: bool = False
    ) -> Tuple[float, float]:
        """Online (symbol accuracy, exact-op accuracy) over a stream.

        ``exact`` additionally requires the predicted offset to match --
        the prefetching-grade prediction Omnisc'IO targets.
        """
        ops = [op for op in ops if not op.kind.is_marker]
        if not ops:
            raise ValueError("no I/O operations to evaluate on")
        sym_hits = 0
        exact_hits = 0
        for op in ops:
            pred = self.predict()
            if pred is not None:
                if (pred.kind, pred.path, pred.nbytes) == (
                    op.kind, op.path, op.nbytes
                ):
                    sym_hits += 1
                    if pred.offset == op.offset:
                        exact_hits += 1
            self.observe(op)
        n = len(ops)
        return sym_hits / n, exact_hits / n
