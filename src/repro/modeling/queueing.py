"""Analytic queueing models for storage servers.

The classic counterpart to simulation in the paper's taxonomy: before (or
instead of) simulating, analysts model a storage server as an M/M/c queue
and predict response times from arrival and service rates.  This module
provides the closed-form models -- and, used together with the DES kernel,
the cross-validation that gives confidence in *both*: the simulator's
measured waiting times must match Erlang's formulas on Markovian traffic
(see ``tests/modeling/test_queueing.py``).

Formulas: standard M/M/1 and M/M/c (Erlang-C) steady-state results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class QueueMetrics:
    """Steady-state metrics of a queueing station."""

    utilization: float  # rho
    mean_wait: float  # Wq: time in queue (excluding service)
    mean_response: float  # W: queue + service
    mean_queue_length: float  # Lq
    prob_wait: float  # probability an arrival must wait


def mm1(arrival_rate: float, service_rate: float) -> QueueMetrics:
    """M/M/1 steady state.

    Parameters
    ----------
    arrival_rate:
        lambda, requests/second.
    service_rate:
        mu, requests/second the single server completes.
    """
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    rho = arrival_rate / service_rate
    if rho >= 1:
        raise ValueError(f"unstable queue: rho = {rho:.3f} >= 1")
    wq = rho / (service_rate - arrival_rate)
    return QueueMetrics(
        utilization=rho,
        mean_wait=wq,
        mean_response=wq + 1 / service_rate,
        mean_queue_length=arrival_rate * wq,
        prob_wait=rho,
    )


def erlang_c(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Probability an arrival waits in an M/M/c system (Erlang-C)."""
    if servers <= 0:
        raise ValueError("servers must be positive")
    a = arrival_rate / service_rate  # offered load in Erlangs
    rho = a / servers
    if rho >= 1:
        raise ValueError(f"unstable queue: rho = {rho:.3f} >= 1")
    summation = sum(a**k / math.factorial(k) for k in range(servers))
    top = a**servers / (math.factorial(servers) * (1 - rho))
    return top / (summation + top)


def mmc(arrival_rate: float, service_rate: float, servers: int) -> QueueMetrics:
    """M/M/c steady state (service_rate is per server)."""
    pw = erlang_c(arrival_rate, service_rate, servers)
    a = arrival_rate / service_rate
    rho = a / servers
    wq = pw / (servers * service_rate - arrival_rate)
    return QueueMetrics(
        utilization=rho,
        mean_wait=wq,
        mean_response=wq + 1 / service_rate,
        mean_queue_length=arrival_rate * wq,
        prob_wait=pw,
    )


def required_servers(
    arrival_rate: float, service_rate: float, max_wait: float
) -> int:
    """Smallest server count keeping mean queueing delay below ``max_wait``.

    The provisioning question ("how many OSS threads / service targets do
    we need for this load?") answered analytically.
    """
    if max_wait <= 0:
        raise ValueError("max_wait must be positive")
    c = max(1, math.ceil(arrival_rate / service_rate) )
    while True:
        try:
            metrics = mmc(arrival_rate, service_rate, c)
        except ValueError:
            c += 1
            continue
        if metrics.mean_wait <= max_wait:
            return c
        c += 1
        if c > 10_000:
            raise RuntimeError("no reasonable server count satisfies the target")
