"""I/O periodicity detection.

Application-level analyses (paper Sec. IV-B-1) describe "I/O periodicity
and repetition ... of individual jobs": bulk-synchronous applications
write in regularly spaced bursts (checkpoint intervals), and detecting the
period from monitoring data enables burst prediction and scheduling
(Dorier et al. [55] and the burst-buffer sizing literature).

:func:`detect_period` estimates the dominant period of an event-time
series by autocorrelation of the binned activity signal;
:func:`burstiness_profile` summarises how bursty the stream is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PeriodEstimate:
    """Result of period detection."""

    period: Optional[float]  # seconds; None if no periodicity found
    confidence: float  # peak autocorrelation in [0, 1]
    n_events: int

    @property
    def is_periodic(self) -> bool:
        return self.period is not None


def detect_period(
    times: Sequence[float],
    bin_seconds: Optional[float] = None,
    min_confidence: float = 0.3,
) -> PeriodEstimate:
    """Estimate the dominant period of an event-time stream.

    Parameters
    ----------
    times:
        Event timestamps (e.g. write-record start times).
    bin_seconds:
        Activity-signal bin width; defaults to span/256.
    min_confidence:
        Minimum normalised autocorrelation peak to report a period.

    Notes
    -----
    The activity signal is the per-bin event count with its mean removed;
    the first local maximum of its autocorrelation above ``min_confidence``
    is the period.  Poisson-like (aperiodic) streams produce no qualifying
    peak and return ``period=None``.
    """
    arr = np.sort(np.asarray(list(times), dtype=float))
    if arr.size < 4:
        return PeriodEstimate(period=None, confidence=0.0, n_events=int(arr.size))
    span = arr[-1] - arr[0]
    if span <= 0:
        return PeriodEstimate(period=None, confidence=0.0, n_events=int(arr.size))
    if bin_seconds is None:
        bin_seconds = span / 256
    n_bins = max(8, int(np.ceil(span / bin_seconds)))
    counts, _ = np.histogram(arr, bins=n_bins)
    signal = counts - counts.mean()
    if not signal.any():
        return PeriodEstimate(period=None, confidence=0.0, n_events=int(arr.size))

    # Normalised autocorrelation for positive lags.
    full = np.correlate(signal, signal, mode="full")
    acf = full[full.size // 2 :]
    if acf[0] <= 0:
        return PeriodEstimate(period=None, confidence=0.0, n_events=int(arr.size))
    acf = acf / acf[0]

    # First local maximum after the zero-lag peak decays.
    best_lag, best_val = None, min_confidence
    for lag in range(2, len(acf) - 1):
        if acf[lag] > acf[lag - 1] and acf[lag] >= acf[lag + 1] and acf[lag] > best_val:
            best_lag, best_val = lag, float(acf[lag])
            break  # the first qualifying peak is the fundamental period
    if best_lag is None:
        return PeriodEstimate(period=None, confidence=float(acf[1:].max(initial=0.0)),
                              n_events=int(arr.size))
    bin_width = span / n_bins
    return PeriodEstimate(
        period=best_lag * bin_width, confidence=best_val, n_events=int(arr.size)
    )


def burstiness_profile(
    times: Sequence[float], bin_seconds: float = 1.0
) -> Tuple[float, float]:
    """(coefficient of variation of inter-arrivals, peak-to-mean bin rate).

    cv ~ 0 for a metronome, ~1 for Poisson, >1 for bursts; peak-to-mean
    measures how much faster the storage system must absorb than the
    average demands -- the burst-buffer sizing input.
    """
    arr = np.sort(np.asarray(list(times), dtype=float))
    if arr.size < 3:
        raise ValueError("need at least 3 events")
    gaps = np.diff(arr)
    mean_gap = gaps.mean()
    cv = float(gaps.std() / mean_gap) if mean_gap > 0 else 0.0
    span = arr[-1] - arr[0]
    n_bins = max(1, int(np.ceil(span / bin_seconds)))
    counts, _ = np.histogram(arr, bins=n_bins)
    mean_rate = counts.mean()
    peak_to_mean = float(counts.max() / mean_rate) if mean_rate > 0 else 0.0
    return cv, peak_to_mean
