"""ScalaIOExtrap-style trace extrapolation across rank counts.

Luo et al. [16], [17] "gather I/O traces on a small system, ... analyze
the traces and extrapolate them, and then ... enable I/O replay to verify
the correctness of the projected extrapolation."

The extrapolator consumes per-rank op streams recorded at several small
rank counts and fits, for every op position ``j`` in the (SPMD-regular)
stream, an affine model of each numeric field over the regressors
``[1, rank, N, rank*N]`` -- which spans the offset arithmetic of
shared-file striding (``offset = seg*N*b + r*b + i*t``), file-per-process
layouts, and constant fields.  File paths that embed the rank number are
detected and re-parameterised.  ``generate(N)`` then produces the
predicted per-rank streams for an unseen (larger) scale; claim C8
validates the prediction against directly-simulated runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ops import IOOp, OpKind
from repro.workloads.base import OpStreamWorkload

#: Zero-paddings tried when searching for rank-parameterised path names.
_PAD_WIDTHS = (8, 6, 5, 4, 3, 2, 1)


def _path_template(path: str, rank: int) -> str:
    """Replace an embedded rank number with a format placeholder.

    Returns the path unchanged when the rank does not appear (shared
    files).  Rank 0 is ambiguous ("00000000" appears in many names), so
    templates are derived from non-zero ranks wherever possible.
    """
    for width in _PAD_WIDTHS:
        token = f"{rank:0{width}d}"
        placeholder = f"{{rank:0{width}d}}"
        if token in path:
            return path.replace(token, placeholder, 1)
    return path


def _render_path(template: str, rank: int) -> str:
    if "{rank" in template:
        return template.format(rank=rank)
    return template


@dataclass
class _FieldModel:
    """Affine model of one numeric field over [1, r, N, r*N]."""

    coeffs: np.ndarray
    exact: bool

    def predict(self, rank: int, n_ranks: int) -> float:
        x = np.array([1.0, rank, n_ranks, rank * n_ranks])
        return float(self.coeffs @ x)


def _fit_field(samples: List[tuple]) -> _FieldModel:
    """Fit value ~ 1 + r + N + r*N from (rank, N, value) samples."""
    A = np.array([[1.0, r, n, r * n] for r, n, _ in samples])
    y = np.array([v for _, _, v in samples], dtype=float)
    coeffs, *_ = np.linalg.lstsq(A, y, rcond=None)
    pred = A @ coeffs
    exact = bool(np.allclose(pred, y, atol=0.5))
    return _FieldModel(coeffs=coeffs, exact=exact)


@dataclass
class _OpModel:
    """Per-position model of the op stream."""

    kind: OpKind
    path_template: str
    offset: _FieldModel
    nbytes: _FieldModel
    duration: _FieldModel
    meta: Dict = field(default_factory=dict)


class TraceExtrapolator:
    """Fits small-scale traces and generates large-scale ones.

    Usage::

        ex = TraceExtrapolator()
        ex.fit({4: ops_at_4_ranks, 8: ops_at_8_ranks})   # per-rank lists
        predicted = ex.generate(64)                      # OpStreamWorkload
    """

    def __init__(self):
        self._models: List[_OpModel] = []
        self._fitted_scales: List[int] = []
        self.exact_fraction_: float = 0.0

    def fit(self, traces: Dict[int, List[List[IOOp]]]) -> "TraceExtrapolator":
        """Fit from {n_ranks: [ops_of_rank_0, ops_of_rank_1, ...]}.

        Requires at least two scales and an identical per-rank op count
        everywhere (the SPMD regularity assumption ScalaIOExtrap makes).
        """
        if len(traces) < 2:
            raise ValueError("need traces from at least two rank counts")
        lengths = {
            len(ops) for per_rank in traces.values() for ops in per_rank
        }
        if len(lengths) != 1:
            raise ValueError(
                f"irregular op streams (per-rank op counts {sorted(lengths)}); "
                "extrapolation requires SPMD-regular traces"
            )
        for n_ranks, per_rank in traces.items():
            if len(per_rank) != n_ranks:
                raise ValueError(
                    f"trace for N={n_ranks} has {len(per_rank)} rank streams"
                )
        stream_len = lengths.pop()
        self._fitted_scales = sorted(traces)
        self._models = []
        n_exact = 0
        for j in range(stream_len):
            kinds = set()
            templates = set()
            off_samples: List[tuple] = []
            nbytes_samples: List[tuple] = []
            dur_samples: List[tuple] = []
            meta: Dict = {}
            for n_ranks, per_rank in traces.items():
                for rank, ops in enumerate(per_rank):
                    op = ops[j]
                    kinds.add(op.kind)
                    templates.add(_path_template(op.path, rank) if rank else op.path)
                    off_samples.append((rank, n_ranks, op.offset))
                    nbytes_samples.append((rank, n_ranks, op.nbytes))
                    dur_samples.append((rank, n_ranks, op.duration))
                    if op.meta:
                        meta = dict(op.meta)
            if len(kinds) != 1:
                raise ValueError(f"op position {j} has mixed kinds {kinds}")
            # Path: prefer a template that renders rank-0's literal path too.
            template = self._choose_template(templates, traces, j)
            model = _OpModel(
                kind=kinds.pop(),
                path_template=template,
                offset=_fit_field(off_samples),
                nbytes=_fit_field(nbytes_samples),
                duration=_fit_field(dur_samples),
                meta=meta,
            )
            if model.offset.exact and model.nbytes.exact:
                n_exact += 1
            self._models.append(model)
        self.exact_fraction_ = n_exact / stream_len if stream_len else 1.0
        return self

    @staticmethod
    def _choose_template(templates: set, traces, j) -> str:
        """Pick the path template consistent with every observed path."""
        parametric = [t for t in templates if "{rank" in t]
        candidates = parametric or sorted(templates)
        for template in candidates:
            ok = True
            for _n, per_rank in traces.items():
                for rank, ops in enumerate(per_rank):
                    if _render_path(template, rank) != ops[j].path:
                        ok = False
                        break
                if not ok:
                    break
            if ok:
                return template
        # Fall back to the most common literal (inexact path model).
        return sorted(templates)[0]

    def generate(self, n_ranks: int, name: Optional[str] = None) -> OpStreamWorkload:
        """Predict the op streams at an unseen scale."""
        if not self._models:
            raise RuntimeError("extrapolator is not fitted")
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        per_rank: List[List[IOOp]] = []
        for rank in range(n_ranks):
            stream: List[IOOp] = []
            for m in self._models:
                stream.append(
                    IOOp(
                        kind=m.kind,
                        path=_render_path(m.path_template, rank),
                        offset=max(0, round(m.offset.predict(rank, n_ranks))),
                        nbytes=max(0, round(m.nbytes.predict(rank, n_ranks))),
                        rank=rank,
                        duration=max(0.0, m.duration.predict(rank, n_ranks)),
                        meta=dict(m.meta),
                    )
                )
            per_rank.append(stream)
        label = name or f"extrapolated[{'x'.join(map(str, self._fitted_scales))}->{n_ranks}]"
        return OpStreamWorkload(label, per_rank)

    def is_exact(self) -> bool:
        """Whether every offset/size model reproduced the fits exactly."""
        return self.exact_fraction_ == 1.0
