"""Trace compression via arithmetic runs and tandem-repeat folding.

Hao et al. [15] compress I/O traces with a suffix-tree repeat detector
before generating replay benchmarks; the same idea is implemented here in
two passes suited to I/O op streams:

1. **Run collapsing**: maximal runs of operations identical except for an
   arithmetically increasing offset (the signature of sequential I/O)
   become one :class:`Run` node -- IOR-style streams collapse by a factor
   of the transfer count.
2. **Tandem-repeat folding**: the node list is scanned for adjacent
   repeated blocks (``ABAB...`` -> ``Loop([A, B], k)``), applied greedily
   by best savings until no fold helps -- capturing outer iteration
   structure (time-step loops, epoch loops).

Decompression is exact: ``decompress(compress_ops(ops)) == ops``, which is
the correctness property the replay path relies on (claim C7) and which
property-based tests enforce.

Limitation (documented): patterns that vary *path names* per iteration
(file-per-step checkpoints) only compress within each step, not across
steps; parameterising paths across iterations is what
:mod:`repro.modeling.extrapolate` does in the rank dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Sequence, Tuple, Union

from repro.ops import IOOp


def _meta_key(meta: dict) -> tuple:
    """Hashable stand-in for an op's meta dict (exactness of folding)."""
    return tuple(sorted((str(k), str(v)) for k, v in meta.items()))


@dataclass(frozen=True)
class Run:
    """``count`` copies of ``op`` with offsets stepping by ``stride``."""

    op: IOOp
    count: int
    stride: int

    def expand(self) -> List[IOOp]:
        return [
            replace(self.op, offset=self.op.offset + i * self.stride)
            for i in range(self.count)
        ]

    def key(self) -> tuple:
        # The start offset is part of the key: folding two runs that differ
        # only in their base offset would break exact decompression.
        return (
            ("run",)
            + self.op.signature()
            + (self.op.rank, _meta_key(self.op.meta), self.stride, self.count)
        )

    @property
    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class OpNode:
    """A single literal operation."""

    op: IOOp

    def expand(self) -> List[IOOp]:
        return [self.op]

    def key(self) -> tuple:
        return ("op",) + self.op.signature() + (self.op.rank, _meta_key(self.op.meta))

    @property
    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class Loop:
    """``count`` repetitions of a node sequence."""

    body: Tuple = ()
    count: int = 1

    def expand(self) -> List[IOOp]:
        once = [op for node in self.body for op in node.expand()]
        return once * self.count

    def key(self) -> tuple:
        return ("loop", self.count) + tuple(n.key() for n in self.body)

    @property
    def size(self) -> int:
        return 1 + sum(n.size for n in self.body)


Node = Union[OpNode, Run, Loop]


@dataclass
class CompressedTrace:
    """The compressed form of one rank's op stream."""

    nodes: List[Node] = field(default_factory=list)
    original_ops: int = 0

    @property
    def compressed_size(self) -> int:
        """Node count (the storage proxy the ratio is measured against)."""
        return sum(n.size for n in self.nodes)

    @property
    def ratio(self) -> float:
        """Original ops per compressed node (higher = better)."""
        size = self.compressed_size
        return self.original_ops / size if size else 1.0


def _collapse_runs(ops: Sequence[IOOp]) -> List[Node]:
    """Pass 1: fold arithmetic offset runs into Run nodes."""
    nodes: List[Node] = []
    i = 0
    n = len(ops)
    while i < n:
        op = ops[i]
        j = i + 1
        stride = None
        # Duration must match exactly: Run.expand() replays op.duration for
        # every copy, so rounding here would break exact decompression.
        sig = (op.kind, op.path, op.nbytes, op.rank, op.duration)
        while j < n:
            nxt = ops[j]
            if (nxt.kind, nxt.path, nxt.nbytes, nxt.rank, nxt.duration) != sig:
                break
            if nxt.meta != op.meta:
                break
            step = nxt.offset - ops[j - 1].offset
            if stride is None:
                stride = step
            elif step != stride:
                break
            j += 1
        count = j - i
        # Runs shorter than 3 do not pay for their (op, stride, count)
        # representation and would make accidentally-arithmetic pairs in
        # random streams look compressible.
        if count >= 3 and stride is not None:
            nodes.append(Run(op=op, count=count, stride=stride))
            i = j
        else:
            nodes.append(OpNode(op=op))
            i += 1
    return nodes


def _best_tandem_repeat(
    keys: List[tuple], max_pattern: int
) -> Tuple[int, int, int, int]:
    """Find (start, pattern_len, repeats, savings) of the best fold."""
    n = len(keys)
    best = (-1, 0, 0, 0)
    for plen in range(1, min(max_pattern, n // 2) + 1):
        i = 0
        while i + 2 * plen <= n:
            if keys[i : i + plen] == keys[i + plen : i + 2 * plen]:
                reps = 2
                while (
                    i + (reps + 1) * plen <= n
                    and keys[i : i + plen]
                    == keys[i + reps * plen : i + (reps + 1) * plen]
                ):
                    reps += 1
                savings = (reps - 1) * plen - 1
                if savings > best[3]:
                    best = (i, plen, reps, savings)
                i += reps * plen
            else:
                i += 1
    return best


def compress_ops(
    ops: Sequence[IOOp], max_pattern: int = 64, max_passes: int = 32
) -> CompressedTrace:
    """Compress one rank's op stream.

    Parameters
    ----------
    ops:
        The operation stream (one rank).
    max_pattern:
        Longest repeated block considered by the tandem folder.
    max_passes:
        Safety bound on folding iterations.
    """
    ops = list(ops)
    nodes: List[Node] = _collapse_runs(ops)
    for _ in range(max_passes):
        keys = [n.key() for n in nodes]
        start, plen, reps, savings = _best_tandem_repeat(keys, max_pattern)
        if savings <= 0:
            break
        body = tuple(nodes[start : start + plen])
        loop = Loop(body=body, count=reps)
        nodes = nodes[:start] + [loop] + nodes[start + plen * reps :]
    return CompressedTrace(nodes=nodes, original_ops=len(ops))


def decompress(trace: CompressedTrace) -> List[IOOp]:
    """Expand a compressed trace back to the exact original op stream."""
    return [op for node in trace.nodes for op in node.expand()]
