"""Linear regression with diagnostics (from scratch on numpy).

The linear baseline the surveyed learned models are compared against
(Schmid & Kunkel [56] report that neural networks "significantly improve"
over linear models for file-access-time prediction; claim C6 reproduces
that comparison, so the baseline must be a respectable least-squares fit).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def polynomial_features(X: np.ndarray, degree: int = 2) -> np.ndarray:
    """Expand features with powers up to ``degree`` (no cross terms)."""
    X = np.atleast_2d(np.asarray(X, dtype=float))
    if degree < 1:
        raise ValueError("degree must be >= 1")
    cols = [X]
    for d in range(2, degree + 1):
        cols.append(X**d)
    return np.hstack(cols)


class LinearModel:
    """Ordinary least squares with intercept.

    Attributes after :meth:`fit`: ``coef_`` (weights), ``intercept_``,
    ``r2_`` (training R^2), ``residual_std_``.
    """

    def __init__(self):
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.r2_: float = 0.0
        self.residual_std_: float = 0.0

    def fit(self, X: Sequence, y: Sequence) -> "LinearModel":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        if X.shape[0] < X.shape[1] + 1:
            raise ValueError("need more samples than features")
        A = np.hstack([np.ones((X.shape[0], 1)), X])
        theta, *_ = np.linalg.lstsq(A, y, rcond=None)
        self.intercept_ = float(theta[0])
        self.coef_ = theta[1:]
        pred = A @ theta
        resid = y - pred
        ss_res = float(resid @ resid)
        ss_tot = float(((y - y.mean()) ** 2).sum())
        self.r2_ = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        dof = max(1, X.shape[0] - X.shape[1] - 1)
        self.residual_std_ = float(np.sqrt(ss_res / dof))
        return self

    def predict(self, X: Sequence) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"expected {self.coef_.shape[0]} features, got {X.shape[1]}"
            )
        return self.intercept_ + X @ self.coef_

    def score(self, X: Sequence, y: Sequence) -> float:
        """R^2 on held-out data."""
        y = np.asarray(y, dtype=float).ravel()
        pred = self.predict(X)
        ss_res = float(((y - pred) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
