"""Hypothesis tests for performance comparisons.

Sec. IV-B-1 lists hypothesis testing among the statistics techniques.  The
two tests I/O studies actually use are wrapped with a uniform result type:
Welch's t-test ("is configuration A faster than B?") and the two-sample
Kolmogorov-Smirnov test ("do these latency distributions differ?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True)
class TestResult:
    """Outcome of a hypothesis test."""

    test: str
    statistic: float
    p_value: float
    alpha: float = 0.05

    @property
    def significant(self) -> bool:
        """Reject the null hypothesis at level alpha."""
        return self.p_value < self.alpha

    def summary(self) -> str:
        verdict = "REJECT H0" if self.significant else "fail to reject H0"
        return (
            f"{self.test}: stat={self.statistic:.4g} p={self.p_value:.4g} "
            f"(alpha={self.alpha}) -> {verdict}"
        )


def _check(sample: Sequence[float], name: str, min_n: int = 2) -> np.ndarray:
    arr = np.asarray(list(sample), dtype=float)
    if arr.size < min_n:
        raise ValueError(f"{name} needs at least {min_n} observations")
    return arr


def t_test(
    a: Sequence[float], b: Sequence[float], alpha: float = 0.05
) -> TestResult:
    """Welch's two-sample t-test (unequal variances).

    Null hypothesis: the two samples have equal means.
    """
    arr_a = _check(a, "sample a")
    arr_b = _check(b, "sample b")
    stat, p = sps.ttest_ind(arr_a, arr_b, equal_var=False)
    return TestResult(test="welch-t", statistic=float(stat), p_value=float(p), alpha=alpha)


def ks_test(
    a: Sequence[float], b: Sequence[float], alpha: float = 0.05
) -> TestResult:
    """Two-sample Kolmogorov-Smirnov test.

    Null hypothesis: both samples are drawn from the same distribution.
    """
    arr_a = _check(a, "sample a")
    arr_b = _check(b, "sample b")
    stat, p = sps.ks_2samp(arr_a, arr_b)
    return TestResult(test="ks-2samp", statistic=float(stat), p_value=float(p), alpha=alpha)
