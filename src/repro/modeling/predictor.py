"""The I/O performance prediction harness (claim C6).

Trains linear, MLP and random-forest models on (configuration features ->
measured I/O time) pairs and compares their held-out error, reproducing
the surveyed result that learned models beat linear baselines on the
non-linear I/O response surface (Schmid & Kunkel [56], Sun et al. [57]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.modeling.forest import RandomForestRegressor
from repro.modeling.mlp import MLPRegressor
from repro.modeling.regression import LinearModel


def mean_absolute_percentage_error(y_true: Sequence, y_pred: Sequence) -> float:
    """MAPE, the error metric the prediction papers report."""
    yt = np.asarray(y_true, dtype=float).ravel()
    yp = np.asarray(y_pred, dtype=float).ravel()
    if yt.shape != yp.shape:
        raise ValueError("shape mismatch")
    if np.any(yt == 0):
        raise ValueError("MAPE undefined for zero targets")
    return float(np.mean(np.abs((yt - yp) / yt)))


@dataclass
class ModelComparison:
    """Held-out errors of each model family."""

    mape: Dict[str, float] = field(default_factory=dict)
    r2: Dict[str, float] = field(default_factory=dict)

    def best(self) -> str:
        """Model with the lowest held-out MAPE."""
        if not self.mape:
            raise ValueError("no models compared")
        return min(self.mape, key=self.mape.get)

    def learned_beats_linear(self) -> bool:
        """The claim under test: some learned model has lower MAPE."""
        linear = self.mape.get("linear")
        if linear is None:
            raise ValueError("no linear baseline in the comparison")
        return any(v < linear for k, v in self.mape.items() if k != "linear")

    def summary(self) -> str:
        lines = ["model            MAPE      R2"]
        for name in sorted(self.mape):
            lines.append(
                f"{name:<14} {self.mape[name]:>7.2%} {self.r2.get(name, float('nan')):>8.3f}"
            )
        return "\n".join(lines)


class PerformancePredictor:
    """Train/evaluate the three model families on one dataset.

    Parameters
    ----------
    seed:
        Controls the train/test split and all model seeds.
    test_fraction:
        Held-out fraction.
    """

    def __init__(self, seed: int = 0, test_fraction: float = 0.25):
        if not 0 < test_fraction < 1:
            raise ValueError("test_fraction must be in (0, 1)")
        self.seed = seed
        self.test_fraction = test_fraction
        self.models: Dict[str, object] = {}

    def split(self, X: np.ndarray, y: np.ndarray) -> Tuple:
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        order = rng.permutation(n)
        n_test = max(1, int(n * self.test_fraction))
        test_idx, train_idx = order[:n_test], order[n_test:]
        return X[train_idx], y[train_idx], X[test_idx], y[test_idx]

    def compare(
        self,
        X: Sequence,
        y: Sequence,
        mlp_epochs: int = 300,
        n_trees: int = 30,
    ) -> ModelComparison:
        """Fit all model families; return held-out errors."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] < 8:
            raise ValueError("need at least 8 samples for a meaningful split")
        Xtr, ytr, Xte, yte = self.split(X, y)

        self.models = {
            "linear": LinearModel().fit(Xtr, ytr),
            "mlp": MLPRegressor(epochs=mlp_epochs, seed=self.seed).fit(Xtr, ytr),
            "forest": RandomForestRegressor(n_trees=n_trees, seed=self.seed).fit(
                Xtr, ytr
            ),
        }
        cmp = ModelComparison()
        for name, model in self.models.items():
            pred = model.predict(Xte)
            cmp.mape[name] = mean_absolute_percentage_error(yte, pred)
            cmp.r2[name] = model.score(Xte, yte)
        return cmp

    def predict(self, name: str, X: Sequence) -> np.ndarray:
        model = self.models.get(name)
        if model is None:
            raise KeyError(f"model {name!r} has not been trained")
        return model.predict(X)
