"""Replay-based modeling (paper Sec. IV-B-3).

"Replay-based modeling relies on historical I/O traces ... Through the
analysis of these traces, an I/O replication workload can be automatically
generated, which is able to replay the I/O behavior of the original
application, and in turn is also able to predict the application's I/O
performance."

:class:`ReplayModel` is that pipeline in one object: trace in, compressed
representation stored, replay workload out, predicted runtime by replaying
against a simulated system.  It also quantifies its own storage savings
(Hao et al.'s [15] selling point, claim C7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.platform import Platform
from repro.modeling.trace_compress import CompressedTrace, compress_ops, decompress
from repro.ops import IOOp, IORecord
from repro.pfs.filesystem import ParallelFileSystem
from repro.simulate.tracesim import trace_to_workload
from repro.simulate.execsim import run_workload
from repro.workloads.base import OpStreamWorkload, WorkloadResult


@dataclass
class ReplayModel:
    """A compressed, replayable model of one traced application."""

    name: str
    compressed: Dict[int, CompressedTrace]
    think_time: Dict[int, List[float]]

    @classmethod
    def from_records(
        cls, records: List[IORecord], name: str = "replay-model", layer: str = "posix"
    ) -> "ReplayModel":
        """Build the model from trace records (one rank at a time)."""
        workload = trace_to_workload(
            records, name=name, layer=layer, preserve_think_time=True
        )
        compressed: Dict[int, CompressedTrace] = {}
        think: Dict[int, List[float]] = {}
        for rank in range(workload.n_ranks):
            ops = list(workload.ops(rank))
            io_ops = [op for op in ops if op.kind.value != "compute"]
            think[rank] = [op.duration for op in ops if op.kind.value == "compute"]
            compressed[rank] = compress_ops(io_ops)
        return cls(name=name, compressed=compressed, think_time=think)

    @property
    def n_ranks(self) -> int:
        return len(self.compressed)

    @property
    def original_ops(self) -> int:
        return sum(c.original_ops for c in self.compressed.values())

    @property
    def compressed_size(self) -> int:
        return sum(c.compressed_size for c in self.compressed.values())

    @property
    def compression_ratio(self) -> float:
        size = self.compressed_size
        return self.original_ops / size if size else 1.0

    def to_workload(self, include_think_time: bool = True) -> OpStreamWorkload:
        """Expand back into a runnable replication workload."""
        from repro.ops import OpKind

        per_rank: List[List[IOOp]] = []
        for rank in sorted(self.compressed):
            ops = decompress(self.compressed[rank])
            if include_think_time and self.think_time.get(rank):
                # Re-interleave think time uniformly between I/O ops: the
                # compressed model keeps total think time, not placement.
                total = sum(self.think_time[rank])
                if ops and total > 0:
                    gap = total / len(ops)
                    interleaved: List[IOOp] = []
                    for op in ops:
                        interleaved.append(IOOp(OpKind.COMPUTE, duration=gap, rank=rank))
                        interleaved.append(op)
                    ops = interleaved
            per_rank.append(ops)
        return OpStreamWorkload(self.name, per_rank)

    def predict_runtime(
        self,
        platform: Platform,
        pfs: ParallelFileSystem,
        include_think_time: bool = True,
        **run_kwargs,
    ) -> WorkloadResult:
        """Predict performance by replaying against a simulated system."""
        return run_workload(
            platform, pfs, self.to_workload(include_think_time), **run_kwargs
        )
