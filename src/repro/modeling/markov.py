"""Markov-chain models of operation streams.

One of the classic statistics techniques Sec. IV-B-1 lists.  Fitted over a
job's operation-kind sequence, the chain captures the short-range structure
of the stream (write bursts, read-stat alternation, ...) and can generate
synthetic sequences with the same transition behaviour -- a lightweight
workload model (used by the grammar/pattern-prediction line of work,
Omnisc'IO [55]).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np


class MarkovChain:
    """First-order Markov chain over an arbitrary finite alphabet.

    Parameters
    ----------
    smoothing:
        Laplace smoothing added to every transition count (keeps held-out
        log-likelihood finite).
    """

    def __init__(self, smoothing: float = 0.0):
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.smoothing = smoothing
        self.states: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}
        self.transition_: Optional[np.ndarray] = None
        self.initial_: Optional[np.ndarray] = None

    def fit(self, sequence: Sequence[Hashable]) -> "MarkovChain":
        seq = list(sequence)
        if len(seq) < 2:
            raise ValueError("need a sequence of at least 2 symbols")
        self.states = sorted(set(seq), key=repr)
        self._index = {s: i for i, s in enumerate(self.states)}
        k = len(self.states)
        counts = np.full((k, k), self.smoothing, dtype=float)
        for a, b in zip(seq, seq[1:]):
            counts[self._index[a], self._index[b]] += 1
        row_sums = counts.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0] = 1.0
        self.transition_ = counts / row_sums
        init = np.full(k, self.smoothing, dtype=float)
        init[self._index[seq[0]]] += 1
        self.initial_ = init / init.sum()
        return self

    def _require_fit(self) -> None:
        if self.transition_ is None:
            raise RuntimeError("chain is not fitted")

    def transition_probability(self, a: Hashable, b: Hashable) -> float:
        self._require_fit()
        if a not in self._index or b not in self._index:
            return 0.0
        return float(self.transition_[self._index[a], self._index[b]])

    def stationary_distribution(self) -> Dict[Hashable, float]:
        """Left eigenvector of the transition matrix for eigenvalue 1."""
        self._require_fit()
        vals, vecs = np.linalg.eig(self.transition_.T)
        idx = int(np.argmin(np.abs(vals - 1.0)))
        vec = np.real(vecs[:, idx])
        vec = np.abs(vec)
        vec = vec / vec.sum()
        return {s: float(vec[i]) for i, s in enumerate(self.states)}

    def log_likelihood(self, sequence: Sequence[Hashable]) -> float:
        """Log probability of a sequence under the fitted chain."""
        self._require_fit()
        seq = list(sequence)
        if len(seq) < 2:
            raise ValueError("need at least 2 symbols")
        ll = 0.0
        for a, b in zip(seq, seq[1:]):
            p = self.transition_probability(a, b)
            if p <= 0:
                return float("-inf")
            ll += float(np.log(p))
        return ll

    def generate(self, n: int, rng: Optional[np.random.Generator] = None) -> List[Hashable]:
        """Sample a synthetic sequence of length ``n``."""
        self._require_fit()
        if n <= 0:
            raise ValueError("n must be positive")
        rng = rng or np.random.default_rng(0)
        out: List[Hashable] = []
        state = int(rng.choice(len(self.states), p=self.initial_))
        out.append(self.states[state])
        for _ in range(n - 1):
            state = int(rng.choice(len(self.states), p=self.transition_[state]))
            out.append(self.states[state])
        return out
