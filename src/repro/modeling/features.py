"""Feature extraction for I/O performance prediction.

Sun et al. [57] predict execution and I/O time of MPI applications "with
different inputs, at different scales, and without domain knowledge" --
i.e. from configuration features alone.  :func:`workload_features` encodes
an IOR-style configuration; :func:`profile_features` encodes an observed
job profile (the post-hoc alternative when only monitoring data exists).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.monitoring.profiler import JobProfile

#: Order of the configuration feature vector (documented for model users).
WORKLOAD_FEATURE_NAMES: List[str] = [
    "n_ranks",
    "log2_transfer_size",
    "log2_block_size",
    "segments",
    "file_per_process",
    "random_offsets",
    "stripe_count",
    "read_fraction",
]


def workload_features(
    n_ranks: int,
    transfer_size: int,
    block_size: int,
    segments: int = 1,
    file_per_process: bool = False,
    random_offsets: bool = False,
    stripe_count: int = 1,
    read_fraction: float = 0.0,
) -> np.ndarray:
    """Feature vector of one benchmark configuration."""
    if n_ranks <= 0 or transfer_size <= 0 or block_size <= 0 or segments <= 0:
        raise ValueError("configuration values must be positive")
    return np.array(
        [
            float(n_ranks),
            float(np.log2(transfer_size)),
            float(np.log2(block_size)),
            float(segments),
            1.0 if file_per_process else 0.0,
            1.0 if random_offsets else 0.0,
            float(stripe_count),
            float(read_fraction),
        ]
    )


#: Order of the profile feature vector.
PROFILE_FEATURE_NAMES: List[str] = [
    "n_ranks",
    "log_bytes_written",
    "log_bytes_read",
    "log_write_ops",
    "log_read_ops",
    "log_meta_ops",
    "avg_write_size_log",
    "avg_read_size_log",
    "files_accessed",
]


def profile_features(profile: JobProfile) -> np.ndarray:
    """Feature vector of one observed job profile."""
    j = profile.job

    def safe_log(v: float) -> float:
        return float(np.log1p(max(0.0, v)))

    avg_w = j.bytes_written / j.writes if j.writes else 0.0
    avg_r = j.bytes_read / j.reads if j.reads else 0.0
    return np.array(
        [
            float(profile.n_ranks),
            safe_log(j.bytes_written),
            safe_log(j.bytes_read),
            safe_log(j.writes),
            safe_log(j.reads),
            safe_log(j.meta_ops),
            safe_log(avg_w),
            safe_log(avg_r),
            float(j.files_accessed),
        ]
    )
