"""Decision trees and random forests, from scratch on NumPy.

Sun et al. [57] build their empirical performance model with "a random
forest machine learning approach".  This module implements CART-style
regression trees (variance-reduction splits) and bagged forests with
feature subsampling, sufficient to reproduce the claim that forests beat
linear baselines on non-linear I/O response surfaces (claim C6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """CART regression tree with variance-reduction splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth.
    min_samples_split:
        Minimum samples in a node to consider splitting.
    max_features:
        Features examined per split (``None`` = all); the randomness hook
        used by forests.
    seed:
        Seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 4,
        max_features: Optional[int] = None,
        seed: int = 0,
    ):
        if max_depth <= 0 or min_samples_split < 2:
            raise ValueError("invalid tree hyperparameters")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self._root: Optional[_Node] = None
        self.n_features_: int = 0

    def fit(self, X: Sequence, y: Sequence) -> "DecisionTreeRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y row counts differ")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.seed)
        self._root = self._build(X, y, depth=0, rng=rng)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int, rng) -> _Node:
        node = _Node(value=float(y.mean()))
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or np.allclose(y, y[0])
        ):
            return node
        n_feat = X.shape[1]
        k = self.max_features or n_feat
        features = rng.choice(n_feat, size=min(k, n_feat), replace=False)
        best_gain = 0.0
        best: Optional[tuple] = None
        parent_var = y.var() * len(y)
        for f in features:
            values = np.unique(X[:, f])
            if len(values) < 2:
                continue
            # Candidate thresholds: midpoints (capped for speed).
            mids = (values[:-1] + values[1:]) / 2
            if len(mids) > 32:
                mids = mids[:: max(1, len(mids) // 32)]
            for thr in mids:
                mask = X[:, f] <= thr
                n_l = int(mask.sum())
                if n_l == 0 or n_l == len(y):
                    continue
                var_l = y[mask].var() * n_l
                var_r = y[~mask].var() * (len(y) - n_l)
                gain = parent_var - var_l - var_r
                if gain > best_gain:
                    best_gain = gain
                    best = (f, float(thr), mask)
        if best is None:
            return node
        f, thr, mask = best
        node.feature = int(f)
        node.threshold = thr
        node.left = self._build(X[mask], y[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return node

    def predict(self, X: Sequence) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features_:
            raise ValueError(f"expected {self.n_features_} features")
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def depth(self) -> int:
        def _d(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_d(node.left), _d(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return _d(self._root)


class RandomForestRegressor:
    """Bagged trees with feature subsampling.

    Parameters
    ----------
    n_trees:
        Ensemble size.
    max_depth / min_samples_split:
        Per-tree limits.
    max_features:
        Features per split (default: ceil(sqrt(n_features))).
    seed:
        Bootstrap and subsampling seed.
    """

    def __init__(
        self,
        n_trees: int = 30,
        max_depth: int = 10,
        min_samples_split: int = 4,
        max_features: Optional[int] = None,
        seed: int = 0,
    ):
        if n_trees <= 0:
            raise ValueError("n_trees must be positive")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.trees_: List[DecisionTreeRegressor] = []

    def fit(self, X: Sequence, y: Sequence) -> "RandomForestRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y row counts differ")
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        k = self.max_features or int(np.ceil(np.sqrt(X.shape[1])))
        self.trees_ = []
        for t in range(self.n_trees):
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=k,
                seed=self.seed + 1000 + t,
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict(self, X: Sequence) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        preds = np.stack([tree.predict(X) for tree in self.trees_])
        return preds.mean(axis=0)

    def score(self, X: Sequence, y: Sequence) -> float:
        """R^2 on held-out data."""
        y = np.asarray(y, dtype=float).ravel()
        pred = self.predict(X)
        ss_res = float(((y - pred) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
