"""Trace distance: how far apart are two access patterns?

The scoring half of trace-to-spec synthesis (:mod:`repro.wgen.synth`).
A trace is reduced to two vectors and compared field-by-field:

* the order-insensitive access features of
  :func:`repro.monitoring.features.access_features` (op mix, volumes,
  size histogram, sequentiality, file population, rank balance);
* a loop-structure signature from
  :func:`repro.modeling.trace_compress.compress_ops` -- tandem-repeat
  compression sees through surface reordering to the run/loop skeleton
  (how repetitive the stream is, how deep its loops nest, how long its
  runs are), which plain histograms cannot.

:func:`trace_distance` is a bounded [0, 1] mean of per-field symmetric
relative differences: 0 for identical patterns, ~1 for disjoint ones.
It is symmetric and scale-free, so a threshold transfers across traces
of very different lengths.  :data:`DISTANCE_THRESHOLD` is the documented
"same pattern" cutoff the synthesis CLI enforces: re-simulating a
recovered derivation must land below it against the source trace.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Union

from repro.modeling.trace_compress import Loop, OpNode, Run, compress_ops
from repro.monitoring.features import access_features
from repro.ops import IOOp, IORecord

#: Documented acceptance cutoff for synthesized derivations: a re-simulated
#: candidate whose distance to the source trace is below this reproduces
#: the access pattern.  Empirically, self-synthesis of grammar-generated
#: traces lands at ~0.0 and unrelated phase mixes land above ~0.3.
DISTANCE_THRESHOLD = 0.15

#: Fixed key set of :func:`structure_signature`.
STRUCTURE_NAMES = (
    "n_ops", "n_nodes", "compression_ratio",
    "n_loops", "max_loop_count", "mean_loop_count", "loop_depth",
    "n_runs", "max_run_count", "mean_run_count",
)


def _walk(nodes, depth: int, acc: Dict[str, float]) -> None:
    for node in nodes:
        if isinstance(node, Loop):
            acc["n_loops"] += 1
            acc["loop_count_total"] += node.count
            acc["max_loop_count"] = max(acc["max_loop_count"], node.count)
            acc["loop_depth"] = max(acc["loop_depth"], depth + 1)
            _walk(node.body, depth + 1, acc)
        elif isinstance(node, Run):
            acc["n_runs"] += 1
            acc["run_count_total"] += node.count
            acc["max_run_count"] = max(acc["max_run_count"], node.count)
        else:
            acc["n_plain"] += 1


def structure_signature(
    stream: Iterable[Union[IOOp, IORecord]]
) -> Dict[str, float]:
    """Loop/run-structure summary of an op stream, via trace compression.

    Records are projected to ops (timing dropped) and the stream is split
    into per-rank substreams before compression: observed traces arrive
    time-interleaved across ranks while intended streams are concatenated
    rank by rank, and only the per-rank order is structure rather than
    scheduling accident.  Each rank compresses independently; the
    signature aggregates over ranks (sums, maxima, weighted means).
    """
    ops: List[IOOp] = [
        item.to_op() if isinstance(item, IORecord) else item for item in stream
    ]
    out = {name: 0.0 for name in STRUCTURE_NAMES}
    out["n_ops"] = float(len(ops))
    if not ops:
        return out
    by_rank: Dict[int, List[IOOp]] = {}
    for op in ops:
        by_rank.setdefault(op.rank, []).append(op)
    acc = {
        "n_loops": 0.0, "loop_count_total": 0.0, "max_loop_count": 0.0,
        "loop_depth": 0.0, "n_runs": 0.0, "run_count_total": 0.0,
        "max_run_count": 0.0, "n_plain": 0.0,
    }
    for rank in sorted(by_rank):
        _walk(compress_ops(by_rank[rank]).nodes, 0, acc)
    n_nodes = acc["n_loops"] + acc["n_runs"] + acc["n_plain"]
    out["n_nodes"] = n_nodes
    out["compression_ratio"] = n_nodes / len(ops)
    out["n_loops"] = acc["n_loops"]
    out["max_loop_count"] = acc["max_loop_count"]
    out["mean_loop_count"] = (
        acc["loop_count_total"] / acc["n_loops"] if acc["n_loops"] else 0.0
    )
    out["loop_depth"] = acc["loop_depth"]
    out["n_runs"] = acc["n_runs"]
    out["max_run_count"] = acc["max_run_count"]
    out["mean_run_count"] = (
        acc["run_count_total"] / acc["n_runs"] if acc["n_runs"] else 0.0
    )
    return out


def _symmetric_diff(a: float, b: float) -> float:
    """|a-b| / max(|a|, |b|): 0 for equal values, bounded by 1."""
    denom = max(abs(a), abs(b))
    if denom == 0.0:
        return 0.0
    return abs(a - b) / denom


def feature_distance(fa: Dict[str, float], fb: Dict[str, float]) -> float:
    """Mean symmetric relative difference over the union of keys."""
    keys = sorted(set(fa) | set(fb))
    if not keys:
        return 0.0
    return sum(
        _symmetric_diff(fa.get(k, 0.0), fb.get(k, 0.0)) for k in keys
    ) / len(keys)


def trace_distance(
    a: Iterable[Union[IOOp, IORecord]],
    b: Iterable[Union[IOOp, IORecord]],
    structure_weight: float = 0.5,
) -> float:
    """Bounded [0, 1] access-pattern distance between two op streams.

    A convex combination of the access-feature distance and the
    loop-structure distance (``structure_weight`` sets the blend).
    Identical streams score exactly 0.0.
    """
    if not 0.0 <= structure_weight <= 1.0:
        raise ValueError("structure_weight must be in [0, 1]")
    a = list(a)
    b = list(b)
    d_feat = feature_distance(access_features(a), access_features(b))
    d_struct = feature_distance(structure_signature(a), structure_signature(b))
    return (1.0 - structure_weight) * d_feat + structure_weight * d_struct
