"""A multi-layer perceptron regressor, from scratch on NumPy.

Schmid & Kunkel [56] "use neural networks to analyze and predict file
access times ... and show that the average prediction error can be
significantly improved in comparison to linear models."  This is the
reproduction's network: dense layers, ReLU activations, mean-squared-error
loss, Adam optimiser, input/output standardisation, deterministic seeding.
No autograd framework -- the backward pass is written out.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


class MLPRegressor:
    """Feed-forward regressor.

    Parameters
    ----------
    hidden:
        Hidden layer widths, e.g. ``(32, 16)``.
    epochs:
        Training epochs.
    batch_size:
        Mini-batch size.
    lr:
        Adam learning rate.
    l2:
        L2 weight penalty.
    seed:
        Initialisation and shuffling seed.
    """

    def __init__(
        self,
        hidden: Tuple[int, ...] = (32, 16),
        epochs: int = 300,
        batch_size: int = 32,
        lr: float = 1e-2,
        l2: float = 1e-5,
        seed: int = 0,
    ):
        if any(h <= 0 for h in hidden):
            raise ValueError("hidden widths must be positive")
        if epochs <= 0 or batch_size <= 0 or lr <= 0:
            raise ValueError("epochs, batch_size and lr must be positive")
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.l2 = l2
        self.seed = seed
        self._W: List[np.ndarray] = []
        self._b: List[np.ndarray] = []
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._y_mean: float = 0.0
        self._y_std: float = 1.0
        self.loss_history_: List[float] = []

    # -- plumbing -------------------------------------------------------------
    def _init_params(self, n_in: int, rng: np.random.Generator) -> None:
        sizes = [n_in, *self.hidden, 1]
        self._W = []
        self._b = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He initialisation for ReLU
            self._W.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._b.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        acts = [X]
        h = X
        for i, (W, b) in enumerate(zip(self._W, self._b)):
            z = h @ W + b
            h = z if i == len(self._W) - 1 else np.maximum(z, 0.0)
            acts.append(h)
        return h, acts

    # -- API ----------------------------------------------------------------------
    def fit(self, X: Sequence, y: Sequence) -> "MLPRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y row counts differ")
        if X.shape[0] < 2:
            raise ValueError("need at least two training samples")
        rng = np.random.default_rng(self.seed)

        self._x_mean = X.mean(axis=0)
        self._x_std = X.std(axis=0)
        self._x_std[self._x_std == 0] = 1.0
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        Xs = (X - self._x_mean) / self._x_std
        ys = (y - self._y_mean) / self._y_std

        self._init_params(X.shape[1], rng)
        # Adam state.
        mW = [np.zeros_like(W) for W in self._W]
        vW = [np.zeros_like(W) for W in self._W]
        mb = [np.zeros_like(b) for b in self._b]
        vb = [np.zeros_like(b) for b in self._b]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        n = Xs.shape[0]
        self.loss_history_ = []
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for lo in range(0, n, self.batch_size):
                idx = order[lo : lo + self.batch_size]
                xb, yb = Xs[idx], ys[idx]
                pred, acts = self._forward(xb)
                err = pred.ravel() - yb
                epoch_loss += float((err**2).sum())
                # Backward pass.
                grad = (2.0 / len(idx)) * err.reshape(-1, 1)
                gW = [np.zeros_like(W) for W in self._W]
                gb = [np.zeros_like(b) for b in self._b]
                for i in range(len(self._W) - 1, -1, -1):
                    gW[i] = acts[i].T @ grad + self.l2 * self._W[i]
                    gb[i] = grad.sum(axis=0)
                    if i > 0:
                        grad = grad @ self._W[i].T
                        grad = grad * (acts[i] > 0)  # ReLU derivative
                # Adam update.
                step += 1
                for i in range(len(self._W)):
                    mW[i] = beta1 * mW[i] + (1 - beta1) * gW[i]
                    vW[i] = beta2 * vW[i] + (1 - beta2) * gW[i] ** 2
                    mb[i] = beta1 * mb[i] + (1 - beta1) * gb[i]
                    vb[i] = beta2 * vb[i] + (1 - beta2) * gb[i] ** 2
                    m_hat = mW[i] / (1 - beta1**step)
                    v_hat = vW[i] / (1 - beta2**step)
                    self._W[i] -= self.lr * m_hat / (np.sqrt(v_hat) + eps)
                    mb_hat = mb[i] / (1 - beta1**step)
                    vb_hat = vb[i] / (1 - beta2**step)
                    self._b[i] -= self.lr * mb_hat / (np.sqrt(vb_hat) + eps)
            self.loss_history_.append(epoch_loss / n)
        return self

    def predict(self, X: Sequence) -> np.ndarray:
        if self._x_mean is None:
            raise RuntimeError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Xs = (X - self._x_mean) / self._x_std
        pred, _ = self._forward(Xs)
        return pred.ravel() * self._y_std + self._y_mean

    def score(self, X: Sequence, y: Sequence) -> float:
        """R^2 on held-out data."""
        y = np.asarray(y, dtype=float).ravel()
        pred = self.predict(X)
        ss_res = float(((y - pred) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
