"""Rank remapping for trace replay (hfplayer-style scale-down/up).

Haghdoost et al. [18], [19] replay intensive traces on systems with
different parallelism than the capture system.  :func:`remap_ranks`
re-targets a recorded trace at a different rank count:

* **scale-down** (``target < captured``): multiple captured ranks' streams
  are concatenated onto one replay rank (round-robin by captured rank), so
  the byte workload is preserved with less concurrency;
* **scale-up** (``target > captured``): captured streams are dealt onto
  the first ``captured`` replay ranks and the surplus ranks idle (true
  duplication would fabricate I/O the application never did -- use
  :class:`~repro.modeling.extrapolate.TraceExtrapolator` to *predict*
  larger-scale behaviour instead).
"""

from __future__ import annotations

from typing import Dict, List

from repro.ops import IORecord


def remap_ranks(records: List[IORecord], target: int) -> List[IORecord]:
    """Return a copy of ``records`` re-targeted at ``target`` ranks.

    Captured rank ``r`` maps to replay rank ``r % target``.  Records keep
    their timestamps (the replayer re-times them anyway); file-per-process
    paths are left untouched, so a scale-down replay legitimately has one
    replay rank driving several captured ranks' files.
    """
    if target <= 0:
        raise ValueError("target rank count must be positive")
    if not records:
        return []
    out: List[IORecord] = []
    for rec in records:
        out.append(
            IORecord(
                layer=rec.layer,
                kind=rec.kind,
                path=rec.path,
                offset=rec.offset,
                nbytes=rec.nbytes,
                rank=rec.rank % target,
                start=rec.start,
                end=rec.end,
                extra=dict(rec.extra),
            )
        )
    return out


def concurrency_profile(records: List[IORecord]) -> Dict[int, int]:
    """Ops per (replay) rank -- the balance check after a remap."""
    out: Dict[int, int] = {}
    for rec in records:
        out[rec.rank] = out.get(rec.rank, 0) + 1
    return dict(sorted(out.items()))
