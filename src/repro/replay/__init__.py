"""Trace replay and fidelity verification.

The Record-and-Replay strategy (paper Sec. IV-A-1, [16]-[19]): collected
traces are "fed back into replay tools to replicate the I/O behavior of
the original application".  :mod:`repro.replay.replayer` performs the
replay (against a simulated system, re-tracing as it goes);
:mod:`repro.replay.verify` quantifies how faithful the replay was --
the validation step ScalaIOExtrap [16], [17] and hfplayer [18], [19]
emphasise.
"""

from repro.replay.replayer import Replayer, ReplayOutcome
from repro.replay.verify import FidelityReport, verify_fidelity
from repro.replay.remap import concurrency_profile, remap_ranks

__all__ = [
    "FidelityReport",
    "ReplayOutcome",
    "Replayer",
    "concurrency_profile",
    "remap_ranks",
    "verify_fidelity",
]
