"""The trace replayer.

Replays a recorded trace against a (fresh or shared) simulated system,
re-tracing the replay so its fidelity can be verified against the
original.  Timing-faithful mode preserves inter-op think time; as-fast-as-
possible mode drops it (hfplayer's two modes [18], [19]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.platform import Platform
from repro.monitoring.tracer import RecorderTracer
from repro.ops import IORecord
from repro.pfs.filesystem import ParallelFileSystem
from repro.simulate.execsim import run_workload
from repro.simulate.tracesim import trace_to_workload
from repro.workloads.base import WorkloadResult


@dataclass
class ReplayOutcome:
    """What a replay run produced."""

    result: WorkloadResult
    records: List[IORecord]

    @property
    def duration(self) -> float:
        return self.result.duration


class Replayer:
    """Replays traces against simulated systems.

    Parameters
    ----------
    layer:
        Stack layer of the input trace to replay (default POSIX).
    preserve_think_time:
        Timing-faithful (True) vs. as-fast-as-possible (False).
    """

    def __init__(self, layer: str = "posix", preserve_think_time: bool = True):
        self.layer = layer
        self.preserve_think_time = preserve_think_time

    def replay(
        self,
        records: List[IORecord],
        platform: Platform,
        pfs: ParallelFileSystem,
        name: str = "replay",
        **run_kwargs,
    ) -> ReplayOutcome:
        """Replay ``records`` on the given system, re-tracing the replay."""
        workload = trace_to_workload(
            records,
            name=name,
            layer=self.layer,
            preserve_think_time=self.preserve_think_time,
        )
        tracer = RecorderTracer()
        observers = list(run_kwargs.pop("observers", []) or [])
        observers.append(tracer)
        result = run_workload(
            platform, pfs, workload, observers=observers, **run_kwargs
        )
        replay_records = [r for r in tracer.records if r.layer == self.layer]
        return ReplayOutcome(result=result, records=replay_records)
