"""Replay fidelity verification.

Haghdoost et al. [18] study "the Accuracy and Scalability of Intensive
I/O Workload Replay": a replay is only useful if it reproduces the
original's operation mix, volumes and timing.  :func:`verify_fidelity`
compares an original trace with its replay's trace and scores exactly
those dimensions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.ops import IORecord, OpKind


def _op_mix(records: List[IORecord]) -> Counter:
    return Counter(r.kind for r in records)


def _bytes_by_kind(records: List[IORecord]) -> Dict[OpKind, int]:
    out: Dict[OpKind, int] = {}
    for r in records:
        if r.kind.is_data:
            out[r.kind] = out.get(r.kind, 0) + r.nbytes
    return out


def _duration(records: List[IORecord]) -> float:
    if not records:
        return 0.0
    return max(r.end for r in records) - min(r.start for r in records)


@dataclass
class FidelityReport:
    """Comparison of a replay against its original trace."""

    ops_original: int
    ops_replayed: int
    op_mix_match: bool
    bytes_original: Dict[OpKind, int] = field(default_factory=dict)
    bytes_replayed: Dict[OpKind, int] = field(default_factory=dict)
    duration_original: float = 0.0
    duration_replayed: float = 0.0
    offsets_match: bool = True

    @property
    def op_count_match(self) -> bool:
        return self.ops_original == self.ops_replayed

    @property
    def bytes_match(self) -> bool:
        return self.bytes_original == self.bytes_replayed

    @property
    def duration_error(self) -> float:
        """|replay - original| / original (0 = perfect timing fidelity)."""
        if self.duration_original <= 0:
            return 0.0
        return abs(self.duration_replayed - self.duration_original) / self.duration_original

    def faithful(self, max_duration_error: float = 0.25) -> bool:
        """Overall verdict: structure exact, timing within tolerance."""
        return (
            self.op_count_match
            and self.op_mix_match
            and self.bytes_match
            and self.offsets_match
            and self.duration_error <= max_duration_error
        )

    def summary(self) -> str:
        return (
            f"ops {self.ops_original}->{self.ops_replayed} "
            f"({'ok' if self.op_count_match else 'MISMATCH'}), "
            f"bytes {'ok' if self.bytes_match else 'MISMATCH'}, "
            f"offsets {'ok' if self.offsets_match else 'MISMATCH'}, "
            f"duration {self.duration_original:.3f}s->{self.duration_replayed:.3f}s "
            f"(err {self.duration_error:.1%})"
        )


def verify_fidelity(
    original: List[IORecord], replayed: List[IORecord]
) -> FidelityReport:
    """Compare two traces of the same layer.

    Offsets are compared as per-(rank, path) multisets of (offset, nbytes)
    for data ops -- order-insensitive, since concurrency can legally
    reorder independent operations.
    """

    def offset_sets(records: List[IORecord]):
        out: Dict[tuple, Counter] = {}
        for r in records:
            if r.kind.is_data:
                key = (r.rank, r.path, r.kind)
                out.setdefault(key, Counter())[(r.offset, r.nbytes)] += 1
        return out

    return FidelityReport(
        ops_original=len(original),
        ops_replayed=len(replayed),
        op_mix_match=_op_mix(original) == _op_mix(replayed),
        bytes_original=_bytes_by_kind(original),
        bytes_replayed=_bytes_by_kind(replayed),
        duration_original=_duration(original),
        duration_replayed=_duration(replayed),
        offsets_match=offset_sets(original) == offset_sets(replayed),
    )
