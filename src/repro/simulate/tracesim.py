"""Trace-driven simulation (paper Sec. IV-C-2).

A recorded trace (list of :class:`~repro.ops.IORecord`) is converted back
into a per-rank timed op stream -- I/O operations interleaved with
``COMPUTE`` markers reproducing the original inter-operation gaps -- and
replayed against the simulated storage system.  "Traces preserve
correlation and interference effects" (the paper's stated advantage of
trace-driven simulation); the think-time reconstruction is what preserves
them here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.cluster.platform import Platform
from repro.ops import IOOp, IORecord, OpKind
from repro.pfs.filesystem import ParallelFileSystem
from repro.simulate.execsim import run_workload
from repro.workloads.base import OpStreamWorkload, WorkloadResult


def trace_to_workload(
    records: Iterable[IORecord],
    name: str = "trace-replay",
    preserve_think_time: bool = True,
    layer: str = "posix",
    n_ranks: Optional[int] = None,
) -> OpStreamWorkload:
    """Convert a trace into a replayable workload.

    Parameters
    ----------
    records:
        Trace records (any order; sorted per rank by start time).
    preserve_think_time:
        Insert ``COMPUTE`` ops for the gaps between consecutive operations
        of each rank, so the replay reproduces the original rhythm rather
        than issuing everything back-to-back.
    layer:
        Replay only records captured at this stack layer (replaying every
        layer would double-count: a single HDF5 write appears again as
        MPI-IO and POSIX records).
    n_ranks:
        Rank count of the generated workload; defaults to
        ``max(rank) + 1`` over the trace.
    """
    selected = [r for r in records if r.layer == layer]
    if not selected:
        raise ValueError(f"trace has no records at layer {layer!r}")
    max_rank = max(r.rank for r in selected)
    size = n_ranks if n_ranks is not None else max_rank + 1
    if size <= max_rank:
        raise ValueError(f"n_ranks {size} too small for trace ranks up to {max_rank}")

    per_rank: List[List[IORecord]] = [[] for _ in range(size)]
    for r in selected:
        per_rank[r.rank].append(r)
    for lst in per_rank:
        lst.sort(key=lambda r: (r.start, r.end))

    ops: List[List[IOOp]] = []
    for rank, lst in enumerate(per_rank):
        stream: List[IOOp] = []
        clock = min((r.start for r in selected), default=0.0)
        for rec in lst:
            if preserve_think_time and rec.start > clock:
                stream.append(
                    IOOp(OpKind.COMPUTE, duration=rec.start - clock, rank=rank)
                )
            op = rec.to_op()
            # OPENs in a posix trace become implicit via data ops; keep
            # explicit open/create/close so metadata load is faithful.
            # Layout info recorded at open time travels along so replay
            # recreates files with the original striping.
            if rec.kind in (OpKind.OPEN, OpKind.CREATE):
                for key in ("stripe_count", "stripe_size"):
                    if key in rec.extra:
                        op.meta[key] = rec.extra[key]
            stream.append(op)
            clock = max(clock, rec.end) if preserve_think_time else clock
        ops.append(stream)
    return OpStreamWorkload(name, ops)


def run_trace(
    platform: Platform,
    pfs: ParallelFileSystem,
    records: Iterable[IORecord],
    **kwargs,
) -> WorkloadResult:
    """Replay a trace against a (possibly different) simulated system.

    Extra keyword arguments are split between :func:`trace_to_workload`
    (``preserve_think_time``, ``layer``, ``n_ranks``) and
    :func:`~repro.simulate.execsim.run_workload` (the rest).
    """
    convert_keys = {"preserve_think_time", "layer", "n_ranks", "name"}
    convert_kwargs = {k: v for k, v in kwargs.items() if k in convert_keys}
    run_kwargs = {k: v for k, v in kwargs.items() if k not in convert_keys}
    workload = trace_to_workload(list(records), **convert_kwargs)
    return run_workload(platform, pfs, workload, **run_kwargs)
