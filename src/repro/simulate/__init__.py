"""Simulation drivers (paper Sec. IV-C).

* :mod:`repro.simulate.execsim` -- execution-driven simulation: the
  workload program runs *inside* the simulator, interleaved with it
  (Sec. IV-C-3, PyPassT [51] style).  This is the primary way to run
  anything in :mod:`repro.workloads`.
* :mod:`repro.simulate.tracesim` -- trace-driven simulation: a recorded
  trace is converted back into a timed op stream and replayed against the
  simulated storage system (Sec. IV-C-2, SynchroTrace [36] style).
"""

from repro.simulate.execsim import ExperimentHarness, run_workload
from repro.simulate.tracesim import trace_to_workload, run_trace

__all__ = ["ExperimentHarness", "run_trace", "run_workload", "trace_to_workload"]
