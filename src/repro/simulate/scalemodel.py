"""The scale model: one SPMD I/O workload, three engines, identical answers.

This module is the proving ground for the parallel-DES claim.  It models a
bulk-synchronous SPMD application -- ``ranks`` MPI ranks spread over
``islands`` fabric islands (rack + OSS group), each round computing, then
writing a checkpoint slice through the island's shared link, then
absorbing per-rank post-processing jitter, then hitting an island barrier
and exchanging a halo with the neighbouring island -- in two arms that
produce **bit-identical results**:

``run_scalar``
    The PR-1 sequential fast path: one coroutine per rank on
    :class:`repro.des.engine.Environment`, a :class:`FairShareLink` per
    island.  ~40 events per rank over 10 rounds; at 100k ranks this is a
    multi-million-event simulation and the baseline the parallel engines
    must beat.

``run_cohort``
    The vectorized arm: one :class:`LogicalProcess` per island, whose
    handler advances the whole rank population with numpy cohort kernels
    (elementwise float64, exact selections -- see
    :mod:`repro.des.cohort`).  Runs on the sequential, conservative, or
    partitioned executor; island halos are the cross-partition traffic.

Exactness is by construction, not tolerance.  Within one island round all
ranks start together and write equal-size slices, so the fair-share link
completes them simultaneously at ``A + b*n/rate`` -- evaluated with the
same float64 operations :class:`FairShareLink` performs -- and per-rank
jitter is an elementwise ``F + s_i`` add, identical in numpy and scalar
Python.  Round ends are exact ``max`` selections.  Heterogeneity lives
*across* islands and rounds (seeded layout arrays shared by both arms).
The result digest hashes the raw float64 bits of every round end, so the
equivalence tests catch a single-ulp divergence.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.des.cohort import (
    cohort_max,
    fair_share_batch_times,
    jitter_finish_times,
    observe_cohort,
    require_numpy,
)
from repro.des.engine import Environment
from repro.des.events import Event
from repro.des.partition import PartitionPlan, PartitionedExecutor
from repro.des.ross import (
    ConservativeExecutor,
    LogicalProcess,
    RossKernel,
    SequentialExecutor,
)
from repro.des.sharing import FairShareLink

ENGINES = ("sequential", "conservative", "partitioned")


# ---------------------------------------------------------------------------
# Configuration and layout
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScaleConfig:
    """Shape of the scale scenario.  Picklable (process-backend factories).

    ``sync`` controls cross-island heterogeneity: 0 keeps every island's
    round durations identical (maximum window occupancy for the windowed
    engines), larger values let islands drift apart.  The default keeps
    drift well inside one lookahead over the whole run, which is the
    regime where topology partitioning pays.
    """

    ranks: int = 1024
    islands: int = 8
    rounds: int = 4
    seed: int = 0
    #: Aggregate island link rate, bytes/second.
    rate: float = 4.0e9
    #: Mean compute phase duration per round, seconds.
    compute_base: float = 0.1
    #: Checkpoint slice per rank per round, bytes (log-uniform-ish range).
    bytes_min: int = 1 << 20
    bytes_max: int = 8 << 20
    #: Per-rank post-write jitter upper bound, seconds.
    jitter: float = 0.01
    #: Cross-island round-duration spread (fraction of compute_base).
    sync: float = 0.02

    def validate(self) -> None:
        if self.ranks < 1 or self.islands < 1 or self.rounds < 1:
            raise ValueError("ranks, islands and rounds must be positive")
        if self.islands > self.ranks:
            raise ValueError("more islands than ranks")
        if self.rate <= 0 or self.compute_base <= 0:
            raise ValueError("rate and compute_base must be positive")
        if not 0 <= self.sync <= 1:
            raise ValueError("sync must be in [0, 1]")


class ScaleLayout:
    """Seeded per-island/per-round parameter arrays, shared by both arms.

    * ``island_ranks[k]`` -- rank count of island k (remainder spread over
      the first islands).
    * ``compute[k][w]`` / ``nbytes[k][w]`` -- the round's compute time and
      per-rank slice size; uniform *within* an island round (the fair-share
      exactness requirement), drawn per island and round.
    * ``jitter[k]`` -- float64 array of shape (rounds, island_ranks[k]).
    """

    def __init__(self, config: ScaleConfig):
        require_numpy("the scale model")
        import numpy as np

        config.validate()
        self.config = config
        k, w = config.islands, config.rounds
        base, r = divmod(config.ranks, k)
        self.island_ranks = [base + (1 if i < r else 0) for i in range(k)]
        rng = np.random.default_rng(config.seed)
        spread = config.compute_base * config.sync
        # One global per-round baseline plus a small per-island wobble:
        # islands stay near-synchronous so conservative windows stay full.
        round_base = rng.uniform(
            0.75 * config.compute_base, 1.25 * config.compute_base, size=w
        )
        self.compute = round_base[None, :] + rng.uniform(
            -spread, spread, size=(k, w)
        )
        self.nbytes = rng.integers(
            config.bytes_min, config.bytes_max + 1, size=(k, w)
        ).astype(np.float64)
        self.jitter = [
            rng.uniform(0.0, config.jitter, size=(w, self.island_ranks[i]))
            for i in range(k)
        ]

    def min_round_duration(self) -> float:
        """Strict lower bound on any island round's duration."""
        import numpy as np

        n = np.asarray(self.island_ranks, dtype=np.float64)
        durations = self.compute + (self.nbytes * n[:, None]) / self.config.rate
        return float(durations.min())

    def lookahead(self) -> float:
        """Window width: half the shortest round keeps every message --
        self round-advance and neighbour halo -- beyond the horizon."""
        return 0.5 * self.min_round_duration()


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass
class ScaleResult:
    """Outcome of one scale-model run; digests are engine-invariant."""

    engine: str
    backend: Optional[str]
    ranks: int
    islands: int
    rounds: int
    #: Virtual time of the last island barrier (model-level duration).
    duration: float
    #: Total bytes written, exact integer accounting.
    bytes_written: int
    #: Simulator events processed (engine-dependent: the cohort arms
    #: collapse per-rank events into per-island cohorts).
    events: int
    #: SHA-256 over the raw float64 bits of every island's round-end times
    #: plus halo records plus byte counts.  Bit-identical across engines.
    digest: str
    #: Last round-end time per island (spot-check data, small).
    final_round_ends: List[float] = field(default_factory=list)
    #: Engine-specific extras (window counts, occupancy, ...).
    stats: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "backend": self.backend,
            "ranks": self.ranks,
            "islands": self.islands,
            "rounds": self.rounds,
            "duration": self.duration,
            "bytes_written": self.bytes_written,
            "events": self.events,
            "digest": self.digest,
            "stats": dict(self.stats),
        }


def _digest_islands(per_island: List[Dict[str, Any]]) -> str:
    """Hash round-end float bits, halo records and byte counts, in island
    order.  Floats are packed raw -- a one-ulp divergence changes the hash."""
    h = hashlib.sha256()
    for isl in per_island:
        ends = isl["round_ends"]
        h.update(struct.pack(f"<{len(ends)}d", *ends))
        for src, w, t in sorted(isl["halos"]):
            h.update(struct.pack("<qqd", src, w, t))
        h.update(struct.pack("<q", isl["bytes"]))
    return h.hexdigest()


def _finalize(
    engine: str,
    backend: Optional[str],
    config: ScaleConfig,
    per_island: List[Dict[str, Any]],
    events: int,
    stats: Optional[Dict[str, Any]] = None,
) -> ScaleResult:
    ends = [isl["round_ends"][-1] for isl in per_island]
    return ScaleResult(
        engine=engine,
        backend=backend,
        ranks=config.ranks,
        islands=config.islands,
        rounds=config.rounds,
        duration=max(ends),
        bytes_written=sum(isl["bytes"] for isl in per_island),
        events=events,
        digest=_digest_islands(per_island),
        final_round_ends=ends,
        stats=stats or {},
    )


# ---------------------------------------------------------------------------
# Scalar arm: one coroutine per rank (the sequential fast path)
# ---------------------------------------------------------------------------

class _Barrier:
    """One-shot island barrier: the shared event fires when the last rank
    arrives, so every waiter resumes at exactly max(arrival times)."""

    __slots__ = ("env", "n", "arrived", "event")

    def __init__(self, env: Environment, n: int):
        self.env = env
        self.n = n
        self.arrived = 0
        self.event = Event(env)

    def arrive(self) -> Event:
        self.arrived += 1
        if self.arrived == self.n:
            self.event.succeed(self.env.now)
        return self.event


def run_scalar(config: ScaleConfig) -> ScaleResult:
    """Simulate every rank as its own coroutine on the scalar engine."""
    layout = ScaleLayout(config)
    env = Environment()
    k = config.islands
    round_ends: List[List[float]] = [[] for _ in range(k)]
    links = [FairShareLink(env, rate=config.rate) for _ in range(k)]
    barriers: List[Optional[_Barrier]] = [None] * k

    def rank_proc(island: int, idx: int):
        link = links[island]
        n = layout.island_ranks[island]
        jit = layout.jitter[island]
        for w in range(config.rounds):
            yield env.timeout(float(layout.compute[island][w]))
            yield link.transfer(float(layout.nbytes[island][w]))
            yield env.timeout(float(jit[w][idx]))
            barrier = barriers[island]
            if barrier is None or barrier.arrived == barrier.n:
                barrier = barriers[island] = _Barrier(env, n)
            ev = barrier.arrive()
            if barrier.arrived == barrier.n:
                round_ends[island].append(env.now)
            yield ev

    for island in range(k):
        for idx in range(layout.island_ranks[island]):
            env.process(rank_proc(island, idx))
    env.run()

    per_island = []
    for island in range(k):
        src = (island - 1) % k
        per_island.append({
            "round_ends": round_ends[island],
            # The halo an island receives is its neighbour's round-end
            # report; in this arm it is derived rather than transported.
            "halos": [
                (src, w, round_ends[src][w]) for w in range(config.rounds)
            ],
            "bytes": int(layout.nbytes[island].sum())
            * layout.island_ranks[island],
        })
    return _finalize(
        "sequential", None, config, per_island, env.events_processed
    )


# ---------------------------------------------------------------------------
# Cohort arm: one LP per island, numpy over the rank population
# ---------------------------------------------------------------------------

class IslandLP(LogicalProcess):
    """Advances one island's whole rank population per round event.

    Keeps its own exact clock (``self.clock``): the round start is the
    previous round's *stored* end time, never the (float-rounded) event
    timestamp, which is what makes the arithmetic bit-identical to the
    scalar arm's event cascade.
    """

    def __init__(self, lp_id: int, layout: ScaleLayout):
        super().__init__(lp_id)
        self.layout = layout
        self.clock = 0.0
        self.round_index = 0
        self.round_ends: List[float] = []
        self.halos: List[Tuple[int, int, float]] = []
        self.bytes = 0

    def handle(self, kernel, event) -> None:
        if event.kind == "halo":
            self.halos.append(event.payload)
            return
        if event.kind != "round":  # pragma: no cover - model misuse
            raise ValueError(f"unexpected event kind {event.kind!r}")
        layout = self.layout
        config = layout.config
        k = self.lp_id
        w = self.round_index
        n = layout.island_ranks[k]
        start = self.clock
        # The whole island round, vectorized: arrival, simultaneous
        # fair-share completion, per-rank jitter, barrier max.
        arrive = start + float(layout.compute[k][w])
        finish = fair_share_batch_times(
            arrive, float(layout.nbytes[k][w]), n, config.rate
        )
        done = jitter_finish_times(finish, layout.jitter[k][w])
        end = cohort_max(done)
        observe_cohort("island_round", n, end)
        self.round_ends.append(end)
        self.bytes += int(layout.nbytes[k][w]) * n
        self.clock = end
        self.round_index += 1
        la = layout.lookahead()
        kernel.send(
            (k + 1) % config.islands, max(la, end - kernel.now), "halo",
            (k, w, end),
        )
        if self.round_index < config.rounds:
            # end - start >= 2 * lookahead by construction, so the
            # self-advance always clears the window.
            kernel.send(k, end - kernel.now, "round", None)

    def state_digest(self) -> Any:
        return (self.lp_id, self.round_index, tuple(self.round_ends))

    def collect_result(self) -> Dict[str, Any]:
        return {
            "round_ends": list(self.round_ends),
            "halos": sorted(self.halos),
            "bytes": self.bytes,
        }


def build_kernel(config: ScaleConfig) -> RossKernel:
    """Populate a kernel with one island LP per fabric island.

    Module-level and driven only by the picklable config, so it doubles as
    the ``kernel_factory`` for the partitioned process backend.
    """
    layout = ScaleLayout(config)
    kernel = RossKernel(lookahead=layout.lookahead())
    for k in range(config.islands):
        kernel.add_lp(IslandLP(k, layout))
    for k in range(config.islands):
        kernel.inject(0.0, k, "round", None)
    return kernel


def run_cohort(
    config: ScaleConfig,
    engine: str = "conservative",
    backend: str = "thread",
    workers: Optional[int] = None,
) -> ScaleResult:
    """Run the island-LP model under the chosen parallel engine."""
    if engine not in ("conservative", "partitioned"):
        raise ValueError(f"run_cohort: unknown engine {engine!r}")
    if engine == "conservative":
        kernel = build_kernel(config)
        ex = ConservativeExecutor(kernel)
        stats = ex.run()
        collected = [
            kernel.lps[k].collect_result() for k in range(config.islands)
        ]
        extra = {"windows": stats.windows, "critical_path": stats.critical_path}
        return _finalize(
            engine, None, config, collected, stats.events, extra
        )
    import multiprocessing

    n_workers = workers or multiprocessing.cpu_count()
    plan = PartitionPlan.contiguous(range(config.islands), n_workers)
    if backend == "process":
        ex = PartitionedExecutor(
            plan=plan,
            backend="process",
            kernel_factory=build_kernel,
            factory_args=(config,),
        )
    else:
        ex = PartitionedExecutor(
            build_kernel(config), plan, backend=backend, max_workers=workers
        )
    stats = ex.run()
    results = ex.collect("collect_result")
    collected = [results[k] for k in range(config.islands)]
    extra = {
        "windows": stats.windows,
        "partitions": stats.partitions,
        "mean_occupancy": stats.mean_occupancy,
        "exchanged": stats.exchanged,
    }
    return _finalize(engine, backend, config, collected, stats.events, extra)


def run_cohort_sequential(config: ScaleConfig) -> ScaleResult:
    """The island-LP model on the *sequential* LP executor (validation arm:
    separates 'vectorize the cohorts' from 'parallelize the windows')."""
    kernel = build_kernel(config)
    stats = SequentialExecutor(kernel).run()
    collected = [kernel.lps[k].collect_result() for k in range(config.islands)]
    return _finalize("cohort-sequential", None, config, collected, stats.events)


def run_scale(
    config: ScaleConfig,
    engine: str = "sequential",
    backend: str = "thread",
    workers: Optional[int] = None,
) -> ScaleResult:
    """Engine dispatch: the one entry point the scenario layer calls."""
    if engine == "sequential":
        return run_scalar(config)
    if engine in ("conservative", "partitioned"):
        return run_cohort(config, engine=engine, backend=backend, workers=workers)
    raise ValueError(
        f"unknown engine {engine!r}; choose from {ENGINES}"
    )


__all__ = [
    "ENGINES",
    "IslandLP",
    "ScaleConfig",
    "ScaleLayout",
    "ScaleResult",
    "build_kernel",
    "run_cohort",
    "run_cohort_sequential",
    "run_scalar",
    "run_scale",
]
