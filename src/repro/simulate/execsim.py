"""Execution-driven simulation driver.

``run_workload`` is the one-call entry point used by examples, tests and
benchmarks: it places ranks on compute nodes, builds each rank's I/O stack,
runs the workload program inside the simulator, and returns a
:class:`~repro.workloads.base.WorkloadResult` with timings and volumes.

:class:`ExperimentHarness` bundles a platform + file system and runs
several workloads (sequentially or concurrently) against the same storage
state -- the building block for interference and mixed-workload
experiments.  Harnesses are usually assembled from a declarative
:class:`~repro.scenario.spec.ScenarioSpec` via
:meth:`ExperimentHarness.from_scenario` (or
:func:`repro.scenario.build.build`), which threads the scenario's stack
configuration into every ``run`` call as defaults.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.cluster.platform import Platform
from repro.mpi.runtime import MPIRuntime, round_robin_nodes
from repro.ops import IORecord
from repro.iostack.stack import IOStackBuilder
from repro.pfs.filesystem import ParallelFileSystem, build_pfs
from repro.workloads.base import Workload, WorkloadResult

log = logging.getLogger(__name__)


def run_workload(
    platform: Platform,
    pfs: ParallelFileSystem,
    workload: Workload,
    observers: Optional[List[Callable[[IORecord], None]]] = None,
    read_cache_bytes: int = 0,
    write_cache_bytes: int = 0,
    cb_nodes: Optional[int] = None,
    compute_nodes: Optional[List[str]] = None,
    rpc_timeout: float = 0.0,
    rpc_retries: int = 0,
    retry_backoff: float = 0.005,
    retry_backoff_cap: float = 0.5,
) -> WorkloadResult:
    """Run one workload to completion inside the simulator.

    Parameters
    ----------
    platform / pfs:
        The simulated system (reuse across calls to model a persistent
        center; build fresh ones for isolated measurements).
    workload:
        Any :class:`~repro.workloads.base.Workload`.
    observers:
        Monitoring callbacks attached to every stack layer of every rank.
    read_cache_bytes / write_cache_bytes:
        Per-rank client cache sizes.
    cb_nodes:
        Collective-buffering aggregator count.
    compute_nodes:
        Node names to place ranks on (defaults to all compute nodes).
    rpc_timeout / rpc_retries / retry_backoff / retry_backoff_cap:
        Client resilience knobs (see :class:`~repro.pfs.client.PFSClient`);
        defaults leave resilience off.
    """
    nodes = compute_nodes or [n.name for n in platform.compute_nodes]
    rank_nodes = round_robin_nodes(nodes, workload.n_ranks)
    runtime = MPIRuntime(platform.env, platform.compute_fabric, rank_nodes)
    builder = IOStackBuilder(
        pfs,
        runtime,
        cb_nodes=cb_nodes,
        read_cache_bytes=read_cache_bytes,
        write_cache_bytes=write_cache_bytes,
        rpc_timeout=rpc_timeout,
        rpc_retries=rpc_retries,
        retry_backoff=retry_backoff,
        retry_backoff_cap=retry_backoff_cap,
        observers=observers,
    )
    env = platform.env
    start = env.now
    start_w = pfs.total_bytes_written()
    start_r = pfs.total_bytes_read()
    start_m = pfs.total_metadata_ops()

    procs = runtime.launch(workload.program, io_factory=builder.io_factory)
    # Record each rank's actual completion time (the per-rank imbalance is
    # what stragglers/interference studies look at; filling every slot with
    # the aggregate duration would hide it).
    finish_times: List[float] = [0.0] * len(procs)
    for i, proc in enumerate(procs):
        proc.add_callback(lambda ev, i=i: finish_times.__setitem__(i, env.now))
    done = env.all_of(procs)
    env.run(until=done)

    result = WorkloadResult(
        name=workload.name,
        n_ranks=workload.n_ranks,
        duration=env.now - start,
        per_rank_seconds=[t - start for t in finish_times],
        bytes_written=pfs.total_bytes_written() - start_w,
        bytes_read=pfs.total_bytes_read() - start_r,
        meta_ops=pfs.total_metadata_ops() - start_m,
    )
    return result


@dataclass
class ExperimentHarness:
    """A platform + file system pair with convenience run methods.

    ``stack_defaults`` (usually installed by the scenario builder) are the
    I/O-stack keyword arguments -- ``cb_nodes``, ``read_cache_bytes``,
    ``write_cache_bytes`` -- applied to every ``run``/``run_concurrently``
    call unless that call overrides them explicitly.
    """

    platform: Platform
    pfs: ParallelFileSystem
    stack_defaults: Optional[Dict[str, Any]] = None
    #: The spec this harness was built from, when scenario-assembled.
    scenario: Optional[Any] = field(default=None, repr=False)
    #: Armed :class:`~repro.faults.injector.FaultInjector` when the
    #: scenario declares a fault timeline (``None`` on healthy systems).
    fault_injector: Optional[Any] = field(default=None, repr=False)

    @classmethod
    def fresh(cls, platform_factory: Callable[[], Platform], **pfs_kwargs) -> "ExperimentHarness":
        platform = platform_factory()
        return cls(platform=platform, pfs=build_pfs(platform, **pfs_kwargs))

    @classmethod
    def from_scenario(cls, spec) -> "ExperimentHarness":
        """Assemble a harness from a :class:`ScenarioSpec` (see
        :func:`repro.scenario.build.build`)."""
        from repro.scenario.build import build

        return build(spec)

    def _with_stack_defaults(self, kwargs: Dict[str, Any]) -> Dict[str, Any]:
        if not self.stack_defaults:
            return kwargs
        merged = dict(self.stack_defaults)
        merged.update(kwargs)
        return merged

    def run(self, workload: Workload, **kwargs) -> WorkloadResult:
        """Run one workload on this system."""
        return run_workload(
            self.platform, self.pfs, workload, **self._with_stack_defaults(kwargs)
        )

    def run_concurrently(
        self, workloads: Iterable[Workload], **kwargs
    ) -> List[WorkloadResult]:
        """Run several workloads at the same simulated time.

        Each workload gets its own ranks (placed round-robin over disjoint
        compute-node slices when possible) but shares the file system --
        the setup for interference studies (claim C10).
        """
        workloads = list(workloads)
        kwargs = self._with_stack_defaults(kwargs)
        env = self.platform.env
        all_nodes = [n.name for n in self.platform.compute_nodes]
        # Give each workload a disjoint slice of nodes if there are enough.
        slices: List[List[str]] = []
        oversubscribed = len(all_nodes) < len(workloads)
        if not oversubscribed:
            per = len(all_nodes) // len(workloads)
            for i in range(len(workloads)):
                chunk = all_nodes[i * per : (i + 1) * per] or all_nodes
                slices.append(chunk)
        else:
            # Every workload shares every node: rank placement overlaps,
            # so compute-side contention mixes into the storage-side
            # interference the caller presumably wants to isolate.
            log.warning(
                "run_concurrently: %d workload(s) on only %d compute "
                "node(s); node slices overlap fully and results include "
                "compute-placement contention",
                len(workloads), len(all_nodes),
            )
            slices = [all_nodes for _ in workloads]

        starts = env.now
        runs = []
        rank_finish: List[List[float]] = []
        for wi, (workload, nodes) in enumerate(zip(workloads, slices)):
            rank_nodes = round_robin_nodes(nodes, workload.n_ranks)
            runtime = MPIRuntime(env, self.platform.compute_fabric, rank_nodes)
            builder = IOStackBuilder(self.pfs, runtime, **kwargs)
            procs = runtime.launch(workload.program, io_factory=builder.io_factory)
            finishes: List[float] = []
            rank_finish.append(finishes)
            for proc in procs:
                proc.add_callback(lambda ev, f=finishes: f.append(env.now))
            runs.append((workload, procs))

        done = env.all_of([p for _, procs in runs for p in procs])
        env.run(until=done)

        results = []
        for (workload, procs), finishes in zip(runs, rank_finish):
            end = max(finishes) if finishes else env.now
            result = WorkloadResult(
                name=workload.name,
                n_ranks=workload.n_ranks,
                duration=end - starts,
                per_rank_seconds=[t - starts for t in finishes],
            )
            if oversubscribed:
                result.extra["nodes_shared_with"] = float(len(workloads) - 1)
                result.extra["node_overlap"] = 1.0
            results.append(result)
        return results
