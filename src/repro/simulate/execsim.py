"""Execution-driven simulation driver.

``run_workload`` is the one-call entry point used by examples, tests and
benchmarks: it places ranks on compute nodes, builds each rank's I/O stack,
runs the workload program inside the simulator, and returns a
:class:`~repro.workloads.base.WorkloadResult` with timings and volumes.

:class:`ExperimentHarness` bundles a platform + file system and runs
several workloads (sequentially or concurrently) against the same storage
state -- the building block for interference and mixed-workload
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.cluster.platform import Platform
from repro.mpi.runtime import MPIRuntime, round_robin_nodes
from repro.ops import IORecord
from repro.iostack.stack import IOStackBuilder
from repro.pfs.filesystem import ParallelFileSystem, build_pfs
from repro.workloads.base import Workload, WorkloadResult


def run_workload(
    platform: Platform,
    pfs: ParallelFileSystem,
    workload: Workload,
    observers: Optional[List[Callable[[IORecord], None]]] = None,
    read_cache_bytes: int = 0,
    cb_nodes: Optional[int] = None,
    compute_nodes: Optional[List[str]] = None,
) -> WorkloadResult:
    """Run one workload to completion inside the simulator.

    Parameters
    ----------
    platform / pfs:
        The simulated system (reuse across calls to model a persistent
        center; build fresh ones for isolated measurements).
    workload:
        Any :class:`~repro.workloads.base.Workload`.
    observers:
        Monitoring callbacks attached to every stack layer of every rank.
    read_cache_bytes:
        Per-rank client read cache.
    cb_nodes:
        Collective-buffering aggregator count.
    compute_nodes:
        Node names to place ranks on (defaults to all compute nodes).
    """
    nodes = compute_nodes or [n.name for n in platform.compute_nodes]
    rank_nodes = round_robin_nodes(nodes, workload.n_ranks)
    runtime = MPIRuntime(platform.env, platform.compute_fabric, rank_nodes)
    builder = IOStackBuilder(
        pfs,
        runtime,
        cb_nodes=cb_nodes,
        read_cache_bytes=read_cache_bytes,
        observers=observers,
    )
    start = platform.env.now
    start_w = pfs.total_bytes_written()
    start_r = pfs.total_bytes_read()
    start_m = pfs.total_metadata_ops()

    procs = runtime.launch(workload.program, io_factory=builder.io_factory)
    done = platform.env.all_of(procs)
    platform.env.run(until=done)

    per_rank = [platform.env.now - start] * workload.n_ranks
    result = WorkloadResult(
        name=workload.name,
        n_ranks=workload.n_ranks,
        duration=platform.env.now - start,
        per_rank_seconds=per_rank,
        bytes_written=pfs.total_bytes_written() - start_w,
        bytes_read=pfs.total_bytes_read() - start_r,
        meta_ops=pfs.total_metadata_ops() - start_m,
    )
    return result


@dataclass
class ExperimentHarness:
    """A platform + file system pair with convenience run methods."""

    platform: Platform
    pfs: ParallelFileSystem

    @classmethod
    def fresh(cls, platform_factory: Callable[[], Platform], **pfs_kwargs) -> "ExperimentHarness":
        platform = platform_factory()
        return cls(platform=platform, pfs=build_pfs(platform, **pfs_kwargs))

    def run(self, workload: Workload, **kwargs) -> WorkloadResult:
        """Run one workload on this system."""
        return run_workload(self.platform, self.pfs, workload, **kwargs)

    def run_concurrently(
        self, workloads: Iterable[Workload], **kwargs
    ) -> List[WorkloadResult]:
        """Run several workloads at the same simulated time.

        Each workload gets its own ranks (placed round-robin over disjoint
        compute-node slices when possible) but shares the file system --
        the setup for interference studies (claim C10).
        """
        workloads = list(workloads)
        env = self.platform.env
        all_nodes = [n.name for n in self.platform.compute_nodes]
        # Give each workload a disjoint slice of nodes if there are enough.
        slices: List[List[str]] = []
        if len(all_nodes) >= len(workloads):
            per = len(all_nodes) // len(workloads)
            for i in range(len(workloads)):
                chunk = all_nodes[i * per : (i + 1) * per] or all_nodes
                slices.append(chunk)
        else:
            slices = [all_nodes for _ in workloads]

        starts = env.now
        runs = []
        rank_finish: List[List[float]] = []
        for wi, (workload, nodes) in enumerate(zip(workloads, slices)):
            rank_nodes = round_robin_nodes(nodes, workload.n_ranks)
            runtime = MPIRuntime(env, self.platform.compute_fabric, rank_nodes)
            builder = IOStackBuilder(self.pfs, runtime, **kwargs)
            procs = runtime.launch(workload.program, io_factory=builder.io_factory)
            finishes: List[float] = []
            rank_finish.append(finishes)
            for proc in procs:
                proc.add_callback(lambda ev, f=finishes: f.append(env.now))
            runs.append((workload, procs))

        done = env.all_of([p for _, procs in runs for p in procs])
        env.run(until=done)

        results = []
        for (workload, procs), finishes in zip(runs, rank_finish):
            end = max(finishes) if finishes else env.now
            results.append(
                WorkloadResult(
                    name=workload.name,
                    n_ranks=workload.n_ranks,
                    duration=end - starts,
                    per_rank_seconds=[t - starts for t in finishes],
                )
            )
        return results
