"""Simulated MPI runtime.

Execution-driven simulation (paper Sec. IV-C-3) interleaves the application
with the simulator: the application *is executed inside* the simulation.
This package provides the substrate: SPMD Python generator functions run as
simulated processes, one per rank, communicating through a
:class:`Communicator` whose point-to-point operations move bytes over the
simulated compute fabric and whose collectives charge standard
log-tree/ring cost models while enforcing real synchronisation semantics
(every rank must arrive before any rank leaves a collective).

This is the moral equivalent of mpi4py's API surface shrunk to what the
I/O stack and the workloads need: ``barrier``, ``bcast``, ``gather``,
``allgather``, ``allreduce``, ``alltoall``, ``send``/``recv``.
"""

from repro.mpi.runtime import Communicator, MPIRuntime

__all__ = ["Communicator", "MPIRuntime"]
