"""SPMD runtime: ranks as simulated processes, collectives with cost models.

Design notes
------------
* A *program* is a Python generator function ``fn(ctx) -> generator``; the
  runtime instantiates it once per rank with a per-rank :class:`RankContext`
  and runs all instances as concurrent simulated processes.
* Point-to-point ``send``/``recv`` moves real simulated bytes across the
  compute fabric between the ranks' host nodes (ranks on the same node pay
  nothing, as with shared-memory transports).
* Collectives synchronise all ranks (arrival barrier), then charge an
  analytic cost based on standard algorithms: log-tree for
  barrier/bcast/reduce-style, linear/ring terms for the data volume, using
  the fabric's latency and NIC bandwidth.  This matches how codesign
  simulators (the paper's Sec. IV-C-1 frameworks) model communication.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.cluster.network import NetworkFabric
from repro.des.engine import Environment
from repro.des.resources import Store
from repro.telemetry import TELEMETRY

log = logging.getLogger(__name__)


class _CollectiveGate:
    """Reusable all-arrive/all-leave synchronisation point."""

    def __init__(self, env: Environment, size: int):
        self.env = env
        self.size = size
        self._arrived = 0
        self._release = env.event()
        self._phase = None

    def arrive(self):
        """Generator: wait until all ranks have arrived."""
        self._arrived += 1
        if self._arrived == self.size:
            release, self._release = self._release, self.env.event()
            self._arrived = 0
            release.succeed()
            # The last arrival does not wait.
            return
            yield  # pragma: no cover
        else:
            yield self._release

    def arrive_phase(self, cost: float):
        """All-arrive, then one shared fixed-cost phase.

        Every rank of a collective pays the same analytic cost after the
        gate opens, so the per-rank phase timers are a homogeneous event
        cohort of size P -- the last arriver arms a *single* timer that
        every rank waits on instead.  Completion times and the relative
        rank resume order are identical to per-rank timers (the shared
        event's callback order matches the order the per-rank timers
        would have entered the heap); only the event count shrinks.
        """
        self._arrived += 1
        if self._arrived == self.size:
            release, self._release = self._release, self.env.event()
            self._arrived = 0
            self._phase = self.env.timeout(cost) if cost > 0 else None
            release.succeed()
            if self._phase is not None:
                yield self._phase
        else:
            yield self._release
            # _phase was published before the release fired; reading it
            # here (during the release pop) is race-free.
            if self._phase is not None:
                yield self._phase


class Communicator:
    """The communicator shared by all ranks of one program run.

    Rank-facing operations are *generators*: call them via
    ``yield from ctx.comm.barrier(rank)`` etc.  (The per-rank
    :class:`RankContext` wraps them so application code does not pass its
    own rank explicitly.)
    """

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        rank_nodes: List[str],
        eager_latency: float = 1e-6,
    ):
        if not rank_nodes:
            raise ValueError("communicator needs at least one rank")
        for node in rank_nodes:
            if not fabric.has_endpoint(node):
                raise KeyError(f"rank node {node!r} not attached to fabric {fabric.name!r}")
        self.env = env
        self.fabric = fabric
        self.rank_nodes = list(rank_nodes)
        self.size = len(rank_nodes)
        self.eager_latency = eager_latency
        self._gates: Dict[str, _CollectiveGate] = {}
        self._mailboxes: Dict[tuple, Store] = {}
        # Statistics.
        self.collective_count = 0
        self.p2p_messages = 0
        self.p2p_bytes = 0.0

    # -- cost model -----------------------------------------------------------
    def _alpha(self) -> float:
        """Per-message latency term."""
        return self.fabric.base_latency + self.eager_latency

    def _beta(self) -> float:
        """Per-byte transfer term (inverse NIC bandwidth)."""
        return 1.0 / self.fabric.nic_bandwidth

    def _log_steps(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.size))))

    def collective_cost(self, kind: str, nbytes: float = 0.0) -> float:
        """Analytic duration of one collective for the full communicator."""
        a, b = self._alpha(), self._beta()
        log_p = self._log_steps()
        if self.size == 1:
            return 0.0
        if kind == "barrier":
            return log_p * a
        if kind == "bcast":
            return log_p * (a + nbytes * b)
        if kind in ("reduce", "allreduce"):
            factor = 2 if kind == "allreduce" else 1
            return factor * log_p * (a + nbytes * b)
        if kind in ("gather", "allgather", "scatter"):
            # Linear data term: root receives (p-1) contributions.
            total = (self.size - 1) * nbytes
            steps = log_p * a
            if kind == "allgather":
                steps *= 2
            return steps + total * b
        if kind == "alltoall":
            total = (self.size - 1) * nbytes
            return log_p * a + total * b
        raise ValueError(f"unknown collective {kind!r}")

    # -- collectives ---------------------------------------------------------
    def _gate(self, key: str) -> _CollectiveGate:
        if key not in self._gates:
            self._gates[key] = _CollectiveGate(self.env, self.size)
        return self._gates[key]

    def _collective(self, kind: str, rank: int, nbytes: float, tag: str):
        gate = self._gate(tag)
        yield from gate.arrive_phase(self.collective_cost(kind, nbytes))
        if rank == 0:
            self.collective_count += 1
            if TELEMETRY.active:
                TELEMETRY.metrics.counter(f"mpi.collective.{kind}").inc()

    def barrier(self, rank: int, tag: str = "barrier"):
        yield from self._collective("barrier", rank, 0.0, tag)

    def bcast(self, rank: int, nbytes: float = 8.0, tag: str = "bcast"):
        yield from self._collective("bcast", rank, nbytes, tag)

    def allreduce(self, rank: int, nbytes: float = 8.0, tag: str = "allreduce"):
        yield from self._collective("allreduce", rank, nbytes, tag)

    def gather(self, rank: int, nbytes: float = 8.0, tag: str = "gather"):
        yield from self._collective("gather", rank, nbytes, tag)

    def allgather(self, rank: int, nbytes: float = 8.0, tag: str = "allgather"):
        yield from self._collective("allgather", rank, nbytes, tag)

    def alltoall(self, rank: int, nbytes_per_peer: float, tag: str = "alltoall"):
        yield from self._collective("alltoall", rank, nbytes_per_peer, tag)

    # -- point-to-point ---------------------------------------------------------
    def _mailbox(self, src: int, dst: int, tag: int) -> Store:
        key = (src, dst, tag)
        if key not in self._mailboxes:
            self._mailboxes[key] = Store(self.env)
        return self._mailboxes[key]

    def send(self, rank: int, dest: int, nbytes: float, payload: Any = None, tag: int = 0):
        """Generator: blocking send of ``nbytes`` (+ optional payload)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        src_node = self.rank_nodes[rank]
        dst_node = self.rank_nodes[dest]
        yield from self.fabric.send(src_node, dst_node, nbytes)
        self.p2p_messages += 1
        self.p2p_bytes += nbytes
        if TELEMETRY.active:
            m = TELEMETRY.metrics
            m.counter("mpi.p2p.messages").inc()
            m.counter("mpi.p2p.bytes").inc(nbytes)
        self._mailbox(rank, dest, tag).put((nbytes, payload))

    def recv(self, rank: int, source: int, tag: int = 0):
        """Generator: blocking receive; returns ``(nbytes, payload)``."""
        if not 0 <= source < self.size:
            raise ValueError(f"invalid source rank {source}")
        item = yield self._mailbox(source, rank, tag).get()
        return item


@dataclass
class RankContext:
    """What one rank's program sees: its rank, the comm, and helpers."""

    rank: int
    comm: Communicator
    env: Environment
    node: str
    #: Slot for an attached I/O stack (set by the execution driver).
    io: Any = None

    @property
    def size(self) -> int:
        return self.comm.size

    def compute(self, seconds: float):
        """Generator: spend ``seconds`` of pure computation."""
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        if seconds > 0:
            yield self.env.timeout(seconds)

    def barrier(self):
        yield from self.comm.barrier(self.rank)


class MPIRuntime:
    """Launches SPMD programs on a platform's compute nodes.

    Parameters
    ----------
    env:
        Simulation environment.
    fabric:
        Compute fabric used for communication.
    rank_nodes:
        Host node (fabric endpoint) of each rank, e.g. round-robin over
        compute nodes.
    """

    def __init__(self, env: Environment, fabric: NetworkFabric, rank_nodes: List[str]):
        self.env = env
        self.fabric = fabric
        self.rank_nodes = list(rank_nodes)
        self.comm = Communicator(env, fabric, rank_nodes)

    @property
    def size(self) -> int:
        return self.comm.size

    def launch(
        self,
        program: Callable[[RankContext], Any],
        io_factory: Optional[Callable[[RankContext], Any]] = None,
    ):
        """Start one process per rank; returns the list of rank processes.

        ``io_factory(ctx)``, when given, builds the per-rank I/O stack
        (attached as ``ctx.io``) before the program starts.
        """
        log.debug("launching %d rank(s) on %d node(s)",
                  self.size, len(set(self.rank_nodes)))
        procs = []
        for rank in range(self.size):
            ctx = RankContext(
                rank=rank, comm=self.comm, env=self.env, node=self.rank_nodes[rank]
            )
            if io_factory is not None:
                ctx.io = io_factory(ctx)
            procs.append(self.env.process(program(ctx)))
        return procs

    def run(
        self,
        program: Callable[[RankContext], Any],
        io_factory: Optional[Callable[[RankContext], Any]] = None,
    ) -> List[Any]:
        """Launch, run to completion, and return per-rank results."""
        if TELEMETRY.active:
            with TELEMETRY.tracer.span("MPIRuntime.run", cat="mpi", ranks=self.size):
                return self._run_to_completion(program, io_factory)
        return self._run_to_completion(program, io_factory)

    def _run_to_completion(self, program, io_factory) -> List[Any]:
        procs = self.launch(program, io_factory=io_factory)
        done = self.env.all_of(procs)
        self.env.run(until=done)
        return [p.value for p in procs]


def round_robin_nodes(node_names: List[str], n_ranks: int) -> List[str]:
    """Assign ``n_ranks`` ranks round-robin over the given nodes."""
    if not node_names:
        raise ValueError("need at least one node")
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    return [node_names[i % len(node_names)] for i in range(n_ranks)]
