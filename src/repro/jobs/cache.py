"""Digest-keyed result caching over the content-addressed run store.

Every front-end caches finished work the same way: a store ref (named by
the front-end's own keying scheme) points at a content-addressed
artifact, and the ref's ``meta.source_digest`` records which source tree
produced it.  Loading applies one shared discipline:

* ``hit`` -- the ref exists, is keyed on the current source digest, and
  its artifact reads back clean with the expected kind;
* ``miss`` -- no ref, or the referenced object is gone;
* ``stale`` -- the ref is keyed on another source digest (any source
  change invalidates the whole cache);
* ``corrupt`` -- the ref is unreadable, the artifact's bytes no longer
  hash to its address, or the artifact has the wrong kind.

Stale and corrupt entries are logged and *never* served -- callers fall
back to re-execution, and re-putting the recomputed artifact heals a
corrupt object in place (puts are idempotent).
"""

from __future__ import annotations

import logging
import time
from typing import Any, Dict, Optional, Tuple

from repro.store import RunArtifact, RunStore, StoreError

log = logging.getLogger(__name__)

__all__ = ["load_ref_artifact", "store_ref_artifact"]


def load_ref_artifact(
    store: RunStore,
    name: str,
    source_digest: Optional[str],
    kind: Optional[str] = None,
) -> Tuple[Optional[RunArtifact], str]:
    """Resolve cache ref ``name`` to its artifact, or say why not.

    Returns ``(artifact, "hit")`` on success and ``(None, status)``
    otherwise, with ``status`` one of ``miss`` / ``stale`` / ``corrupt``
    (see module docstring).  ``kind``, when given, must match the
    artifact's kind -- a mismatch is treated as corrupt (the ref points
    at something this cache never wrote).
    """
    if source_digest is None:
        return None, "miss"
    try:
        entry = store.get_ref(name)
    except StoreError as exc:
        log.warning("corrupt cache ref %s (%s); re-executing", name, exc)
        return None, "corrupt"
    if entry is None:
        return None, "miss"
    if entry.get("meta", {}).get("source_digest") != source_digest:
        log.warning(
            "stale cache ref %s (stored digest %r != %r); re-executing",
            name, entry.get("meta", {}).get("source_digest"), source_digest,
        )
        return None, "stale"
    if not store.has(entry["digest"]):
        return None, "miss"
    try:
        artifact = store.get(entry["digest"])
    except StoreError as exc:
        log.warning("corrupt cache entry %s (%s); re-executing", name, exc)
        return None, "corrupt"
    if kind is not None and artifact.kind != kind:
        log.warning(
            "cache ref %s points at a %r artifact (want %r); re-executing",
            name, artifact.kind, kind,
        )
        return None, "corrupt"
    return artifact, "hit"


def store_ref_artifact(
    store: RunStore,
    name: str,
    artifact: RunArtifact,
    meta: Dict[str, Any],
) -> str:
    """Put ``artifact`` and point ref ``name`` at it; returns the digest.

    ``meta`` is stamped with ``created`` (wall time) so refs are
    self-describing; callers supply the keying fields (source digest,
    task identity) that :func:`load_ref_artifact` validates.
    """
    digest = store.put(artifact)
    store.set_ref(name, digest, meta={**meta, "created": time.time()})
    return digest
