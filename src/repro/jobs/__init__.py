"""Reusable job-execution core shared by every submission front-end.

Historically the experiment runner (:mod:`repro.experiments.runner`) and
the scenario sweep driver (:mod:`repro.scenario.sweep`) each carried
their own copy of the same machinery: fan tasks out over
:func:`repro.ioutil.resilient_pool_map`, time them worker-side, merge
worker telemetry snapshots, serve unchanged work from digest-keyed store
refs, and keep a live progress ledger.  The run service
(:mod:`repro.service`) is a third front-end over the very same pipeline,
so this package extracts the core once:

* :mod:`repro.jobs.execution` -- sequential/pooled task fan-out with
  uniform timing, telemetry merging and failure containment
  (:func:`execute_tasks`);
* :mod:`repro.jobs.cache` -- digest-keyed artifact refs over the
  content-addressed run store (hit / miss / stale / corrupt discipline);
* :mod:`repro.jobs.ledger` -- the atomically-rewritten progress ledger
  that ``repro-io watch`` tails.

Front-ends keep their own task functions, manifests, and ref-naming
schemes; everything between "list of payloads" and "list of outcomes"
lives here so there is one code path from submission to stored artifact.
"""

from repro.jobs.cache import load_ref_artifact, store_ref_artifact
from repro.jobs.execution import TaskOutcome, execute_tasks
from repro.jobs.ledger import ProgressLedger

__all__ = [
    "TaskOutcome",
    "execute_tasks",
    "load_ref_artifact",
    "store_ref_artifact",
    "ProgressLedger",
]
