"""Live progress ledgers for long-running job fan-outs.

A ledger is one JSON document, atomically rewritten (readers never see a
partial file -- :func:`repro.ioutil.atomic_write_json`) at start, on
every item completion, and at finish, so ``repro-io watch`` can tail a
consistent view while the pool is still working.  The document shape is
shared by every front-end::

    {
      "schema":   <front-end schema marker>,
      ...extra,                      # front-end fields (base name, jobs, stats)
      "started":  <epoch seconds>,
      "updated":  <epoch seconds>,
      "finished": <bool>,
      "total":    <item count>,
      "counts":   {<status>: <count>, ...},
      <item_key>: {<name>: {"status": <status>, ...}, ...}
    }

Sweeps instantiate it with the historical ``sweep-progress.json`` schema
(statuses ``pending/cached/done/failed``, items under ``"points"``); the
run service uses job states under ``"jobs"``.  ``extra`` may be a dict
or a zero-argument callable evaluated at write time, so a long-lived
writer (the service) can publish live counters without rebuilding the
ledger object.
"""

from __future__ import annotations

import logging
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Union

from repro.ioutil import atomic_write_json

log = logging.getLogger(__name__)

__all__ = ["ProgressLedger"]

#: Historical sweep statuses -- the default item state machine.
DEFAULT_STATUSES = ("pending", "cached", "done", "failed")


class ProgressLedger:
    """Atomically-rewritten per-item status ledger (see module docstring)."""

    def __init__(
        self,
        path: Union[Path, str],
        schema: str,
        names: Iterable[str],
        *,
        statuses: Sequence[str] = DEFAULT_STATUSES,
        initial_status: Optional[str] = None,
        extra: Union[None, Dict[str, Any], Callable[[], Dict[str, Any]]] = None,
        item_key: str = "points",
    ):
        self.path = Path(path)
        self.schema = schema
        self.statuses = tuple(statuses)
        self.extra = extra
        self.item_key = item_key
        self.started = time.time()
        first = initial_status if initial_status is not None else self.statuses[0]
        self.items: Dict[str, Dict[str, Any]] = {
            name: {"status": first} for name in names
        }

    # -- item transitions ---------------------------------------------------

    def mark(
        self, name: str, status: str, *, write: bool = False, **fields: Any
    ) -> None:
        """Set ``name`` to ``status`` (plus extra fields); optionally flush."""
        if status not in self.statuses:
            raise ValueError(
                f"unknown ledger status {status!r} (have {self.statuses})"
            )
        self.items[name] = {"status": status, **fields}
        if write:
            self.write()

    def mark_cached(self, name: str) -> None:
        """Sweep convenience: served from the store, no write yet (the
        caller batches one flush after the cache scan)."""
        self.mark(name, "cached", seconds=0.0)

    def mark_done(self, name: str, seconds: float, error: Optional[str]) -> None:
        """Sweep convenience: one point finished -- flush immediately."""
        fields: Dict[str, Any] = {"seconds": seconds}
        if error is not None:
            fields["error"] = error
        self.mark(
            name, "failed" if error is not None else "done",
            write=True, **fields,
        )

    # -- document -----------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        counts = {status: 0 for status in self.statuses}
        for entry in self.items.values():
            counts[entry["status"]] += 1
        return counts

    def to_doc(self, finished: bool = False) -> Dict[str, Any]:
        extra = self.extra() if callable(self.extra) else (self.extra or {})
        return {
            "schema": self.schema,
            **extra,
            "started": self.started,
            "updated": time.time(),
            "finished": finished,
            "total": len(self.items),
            "counts": self.counts(),
            self.item_key: self.items,
        }

    def write(self, finished: bool = False) -> None:
        """Atomically rewrite the ledger; best-effort (progress must
        never kill the work it describes)."""
        try:
            atomic_write_json(self.to_doc(finished), self.path)
        except OSError as exc:  # pragma: no cover - progress is best-effort
            log.warning("could not write progress ledger %s: %s", self.path, exc)
