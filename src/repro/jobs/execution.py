"""Uniform task fan-out for every job front-end.

:func:`execute_tasks` is the single execution path behind the experiment
runner, scenario sweeps and the run service's pool slots: it takes a
*timed task function* (module-level, picklable, returning
``(payload, seconds, worker_snapshot)``) plus a list of payloads and
returns one :class:`TaskOutcome` per payload, in payload order, no
matter whether the work ran in-process or on a worker pool.

The contract both historical callers relied on is preserved exactly:

* ``jobs == 1`` (or a single payload) runs in-process -- no pool spawn
  cost, telemetry lands directly in the parent registries, and a raised
  exception under ``fail_fast`` propagates *unwrapped*;
* the pool path uses :func:`repro.ioutil.resilient_pool_map` (worker
  death is retried once in an isolated pool, then contained as a
  per-task error) and under ``fail_fast`` raises ``RuntimeError`` with
  the caller-supplied task label;
* worker telemetry snapshots are merged commutatively in payload order,
  so completion order never changes the merged result;
* failures never produce a payload -- callers can cache every
  non-failed outcome unconditionally.
"""

from __future__ import annotations

import logging
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, ContextManager, List, Optional, Sequence

from repro.ioutil import CancelToken, resilient_pool_map
from repro.telemetry.collect import (
    init_worker,
    merge_snapshot,
    worker_init_args,
)

log = logging.getLogger(__name__)

__all__ = ["TaskOutcome", "execute_tasks"]


@dataclass
class TaskOutcome:
    """Outcome of one task: payload or error, with its worker-side timing.

    ``value`` is ``None`` exactly when the task failed (in-task exception
    or worker-process death); ``error`` then carries a human-readable
    reason.  ``seconds`` is measured inside the worker when available and
    in the parent otherwise; failed pool tasks report ``0.0`` (their
    worker-side clock died with them).
    """

    value: Optional[Any]
    seconds: float
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


def execute_tasks(
    timed_fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    jobs: int,
    *,
    fail_fast: bool = False,
    fail_label: Optional[Callable[[int], str]] = None,
    on_outcome: Optional[Callable[[int, TaskOutcome], None]] = None,
    span_factory: Optional[Callable[[int], ContextManager]] = None,
    pool_span: Optional[Callable[[int, int], ContextManager]] = None,
    cancel: Optional[CancelToken] = None,
) -> List[TaskOutcome]:
    """Run ``timed_fn`` over ``payloads``, pooled when ``jobs > 1``.

    Parameters
    ----------
    timed_fn:
        Module-level task wrapper returning ``(payload, seconds,
        worker_snapshot)``.  A two-tuple ``(payload, seconds)`` is
        accepted on the in-process path (telemetry already lives in the
        parent registries there; tests monkeypatch such wrappers).
    payloads:
        Task inputs, one per task, in return order.
    jobs:
        Worker process count; ``1`` (or a single payload) runs
        everything in this process.
    fail_fast:
        In-process, re-raise the task's original exception; on the pool
        path, raise ``RuntimeError(f"{fail_label(i)} failed: {error}")``
        for the first failed task in payload order.
    fail_label:
        Human label for task ``i`` in fail-fast pool errors (defaults to
        ``task <i>``).
    on_outcome:
        Progress hook ``on_outcome(i, outcome)`` -- called per task in
        completion order on the pool path, payload order in-process.
        Exceptions are contained by the pool layer, not re-raised.
    span_factory:
        Optional per-task tracer span for the in-process path
        (``span_factory(i)`` -> context manager).
    pool_span:
        Optional tracer span wrapping the whole pool fan-out
        (``pool_span(workers, n_tasks)`` -> context manager).
    cancel:
        :class:`repro.ioutil.CancelToken` forwarded to the pool --
        cancelling it revokes not-yet-started tasks.
    """
    if fail_label is None:
        fail_label = lambda i: f"task {i}"  # noqa: E731
    outcomes: List[TaskOutcome] = []

    if jobs == 1 or len(payloads) == 1:
        for i, payload in enumerate(payloads):
            start = time.perf_counter()
            span = span_factory(i) if span_factory is not None else nullcontext()
            try:
                with span:
                    value = timed_fn(payload)
                if len(value) == 2:  # pragma: no cover - monkeypatched fns
                    value = (*value, None)
            except Exception as exc:
                if fail_fast:
                    raise
                outcome = TaskOutcome(
                    None,
                    time.perf_counter() - start,
                    f"{type(exc).__name__}: {exc}",
                )
            else:
                result, seconds, snap = value
                merge_snapshot(snap)
                outcome = TaskOutcome(result, seconds)
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(i, outcome)
        return outcomes

    workers = min(jobs, len(payloads))
    hook = None
    if on_outcome is not None:

        def hook(i: int, pool_outcome) -> None:
            value, error = pool_outcome
            seconds = value[1] if value is not None else 0.0
            on_outcome(i, TaskOutcome(
                value[0] if value is not None else None, seconds, error
            ))

    span = (
        pool_span(workers, len(payloads))
        if pool_span is not None
        else nullcontext()
    )
    with span:
        raw = resilient_pool_map(
            timed_fn,
            payloads,
            workers,
            initializer=init_worker,
            initargs=worker_init_args(),
            on_result=hook,
            cancel=cancel,
        )
    for i, (value, error) in enumerate(raw):
        if error is not None:
            if fail_fast:
                raise RuntimeError(f"{fail_label(i)} failed: {error}")
            outcomes.append(TaskOutcome(None, 0.0, error))
            continue
        result, seconds, snap = value
        merge_snapshot(snap)
        outcomes.append(TaskOutcome(result, seconds))
    return outcomes
