"""repro: a parallel I/O evaluation toolkit.

Reproduction of *"Parallel I/O Evaluation Techniques and Emerging HPC
Workloads: A Perspective"* (Neuwirth & Paul, IEEE CLUSTER 2021).  The paper
surveys the large-scale parallel I/O evaluation ecosystem; this package
implements that ecosystem as one coherent library:

* :mod:`repro.des` -- discrete-event simulation kernel (sequential +
  conservative parallel executors).
* :mod:`repro.cluster` -- simulated HPC platform: topologies, fabrics,
  compute/I/O nodes, burst buffers (paper Fig. 1).
* :mod:`repro.pfs` -- Lustre-like parallel file system: striping, MDS,
  OSS/OST, client caches, interference.
* :mod:`repro.iostack` -- the layered I/O path (paper Fig. 2): HDF5-like
  library over MPI-IO-like middleware over a POSIX-like layer.
* :mod:`repro.mpi` -- simulated MPI runtime for execution-driven simulation.
* :mod:`repro.workloads` -- workload zoo: IOR-, mdtest-, HACC-IO-,
  NPB-BTIO-like benchmarks plus emerging workloads (deep-learning training,
  analytics, scientific workflows, facility ingest; paper Sec. V).
* :mod:`repro.monitoring` -- Darshan-like profiling, DXT segments,
  Recorder-like multi-level tracing, server-side statistics, metadata event
  monitoring, scheduler logs, end-to-end correlation (paper Sec. IV-A).
* :mod:`repro.modeling` -- statistics, regression, Markov models, an MLP and
  a random forest built from scratch, replay-based modeling, suffix-array
  trace compression, trace extrapolation (paper Sec. IV-B).
* :mod:`repro.wgen` -- workload generation: a CODES-like I/O DSL, an
  IOWA-like source/consumer abstraction, profile- and trace-driven
  synthesis (paper Sec. IV-B-4).
* :mod:`repro.replay` -- trace replay and fidelity verification.
* :mod:`repro.simulate` -- trace-driven and execution-driven simulation
  drivers (paper Sec. IV-C).
* :mod:`repro.survey` -- the paper's own 51-article corpus and taxonomy,
  regenerating its figures.
* :mod:`repro.core` -- the closed-loop evaluation cycle of paper Fig. 4.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
