"""Low-overhead span tracer with Chrome ``trace_event`` export.

Spans measure *wall-clock* time inside the simulator's own code (not
virtual simulation time): how long ``Environment.run`` spun the event loop,
how long one experiment task took, how long the runner spent hashing
sources.  Spans nest -- the tracer keeps an open-span stack so each span
records its parent -- and finished spans serialize to the Chrome
``trace_event`` JSON format (complete ``"ph": "X"`` events), which loads
directly in Perfetto / ``chrome://tracing``.

Usage::

    tracer = SpanTracer()
    with tracer.span("run_experiments", cat="runner", jobs=4):
        with tracer.span("source_digest", cat="runner"):
            ...
    tracer.write_chrome("t.json")

or as a decorator::

    @traced("pfs.build", cat="pfs")
    def build_pfs(...): ...

The clock is :func:`time.perf_counter_ns` (monotonic, ns resolution);
timestamps in the export are microseconds relative to the tracer's first
span, as the trace-event spec expects.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

log = logging.getLogger(__name__)

TRACE_SCHEMA = "repro.telemetry.trace/1"

_perf_ns = time.perf_counter_ns


class Span:
    """One finished (or open) span: a named wall-clock interval."""

    __slots__ = ("name", "cat", "span_id", "parent_id", "start_ns", "end_ns", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        span_id: int,
        parent_id: Optional[int],
        start_ns: int,
        args: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.cat = cat
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.args = args

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"dur={self.duration_ns / 1e6:.3f}ms)"
        )


class _SpanHandle:
    """Context manager that closes its span on exit (even on error)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self._tracer._close(self._span, error=exc_type is not None)


class SpanTracer:
    """Collects nested spans; one instance per process.

    The open-span stack is thread-local so tracing stays correct if spans
    are ever opened from worker threads, but the common case (the
    single-threaded simulator) pays only one ``threading.local`` attribute
    lookup per span.
    """

    def __init__(self):
        self.spans: List[Span] = []
        self._local = threading.local()
        self._next_id = 0
        #: perf_counter_ns at first span; export timestamps are relative.
        self._epoch_ns: Optional[int] = None

    # -- recording ----------------------------------------------------------
    def _stack(self) -> List[Span]:
        try:
            return self._local.stack
        except AttributeError:
            self._local.stack = []
            return self._local.stack

    def span(self, name: str, cat: str = "repro", **args: Any) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("name"): ...``."""
        now = _perf_ns()
        if self._epoch_ns is None:
            self._epoch_ns = now
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        self._next_id += 1
        sp = Span(name, cat, self._next_id, parent_id, now, args or None)
        stack.append(sp)
        return _SpanHandle(self, sp)

    def _close(self, sp: Span, error: bool = False) -> None:
        sp.end_ns = _perf_ns()
        if error:
            sp.args = dict(sp.args or ())
            sp.args["error"] = True
        stack = self._stack()
        # Pop through any spans left open by generator abandonment etc. so
        # one leaked child cannot corrupt all subsequent parentage.
        while stack:
            top = stack.pop()
            if top is sp:
                break
        self.spans.append(sp)

    def traced(
        self, name: Optional[str] = None, cat: str = "repro"
    ) -> Callable[[Callable], Callable]:
        """Decorator form: times every call of the wrapped function."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            def wrapper(*a, **kw):
                with self.span(span_name, cat=cat):
                    return fn(*a, **kw)

            wrapper.__name__ = fn.__name__
            wrapper.__qualname__ = fn.__qualname__
            wrapper.__doc__ = fn.__doc__
            wrapper.__wrapped__ = fn
            return wrapper

        return decorate

    def clear(self) -> None:
        self.spans.clear()
        self._local = threading.local()
        self._epoch_ns = None
        self._next_id = 0

    def __len__(self) -> int:
        return len(self.spans)

    # -- analysis -----------------------------------------------------------
    def self_times(self) -> Dict[str, Dict[str, float]]:
        """Aggregate per span *name*: call count, total and self seconds.

        Self time is a span's duration minus the durations of its direct
        children -- the classic profiler statistic that makes the hot frame
        stand out even under deep nesting.
        """
        child_ns: Dict[int, int] = {}
        for sp in self.spans:
            if sp.parent_id is not None:
                child_ns[sp.parent_id] = child_ns.get(sp.parent_id, 0) + sp.duration_ns
        out: Dict[str, Dict[str, float]] = {}
        for sp in self.spans:
            agg = out.setdefault(sp.name, {"count": 0, "total_s": 0.0, "self_s": 0.0})
            agg["count"] += 1
            agg["total_s"] += sp.duration_ns / 1e9
            agg["self_s"] += max(0, sp.duration_ns - child_ns.get(sp.span_id, 0)) / 1e9
        return out

    # -- export -------------------------------------------------------------
    def to_chrome(self) -> Dict[str, Any]:
        """Render finished spans as a Chrome trace-event JSON document."""
        pid = os.getpid()
        epoch = self._epoch_ns or 0
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro-io simulator"},
            }
        ]
        for sp in self.spans:
            if sp.end_ns is None:  # still open: not exportable as "X"
                continue
            args: Dict[str, Any] = {"span_id": sp.span_id}
            if sp.parent_id is not None:
                args["parent_id"] = sp.parent_id
            if sp.args:
                args.update(sp.args)
            events.append(
                {
                    "name": sp.name,
                    "cat": sp.cat,
                    "ph": "X",
                    "ts": (sp.start_ns - epoch) / 1e3,
                    "dur": sp.duration_ns / 1e3,
                    "pid": pid,
                    "tid": 0,
                    "args": args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA},
        }

    def write_chrome(self, path: Union[str, Path]) -> Path:
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        with open(p, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh, indent=1)
        log.info("wrote %d trace span(s) to %s", len(self.spans), p)
        return p


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Schema check for an exported trace; returns a list of problems.

    Kept in the library (not the tests) so the CLI's ``telemetry``
    subcommand can reject malformed files with a useful message.
    """
    problems: List[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document is not a dict with a 'traceEvents' key"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i} missing {key!r}")
        if ev.get("ph") == "X":
            for key in ("ts", "dur"):
                val = ev.get(key)
                if not isinstance(val, (int, float)) or val < 0:
                    problems.append(f"event {i} has bad {key!r}: {val!r}")
    return problems
