"""Cross-process telemetry collection.

Worker processes (the runner/sweep ``ProcessPoolExecutor`` tasks and the
``PartitionedExecutor`` pipe workers) each carry their own
:class:`~repro.telemetry.TelemetryState` -- by default their spans,
metrics and time series die with the process.  This module gives every
layer the same three-step contract:

1. parents ship :func:`worker_init_args` to the pool initializer
   (:func:`init_worker`), so workers inherit the parent's telemetry
   on/off state and log level (child processes of a ``spawn`` context
   otherwise fall back to library defaults);
2. workers call :func:`snapshot` at the end of a task and return the
   (pure-JSON, picklable) document alongside their payload;
3. the parent calls :func:`merge_snapshot` on each, folding metrics and
   series into its own registries and parking span payloads for
   :func:`merged_chrome_trace`.

Clock alignment: ``perf_counter_ns`` epochs are per-process and not
comparable, so each snapshot carries a paired ``(wall_anchor_ns,
perf_anchor_ns)`` reading taken at snapshot time.  A span's wall-clock
start is ``wall_anchor - (perf_anchor - start_ns)``; the merged trace
uses the earliest wall start across all processes as its epoch, putting
every pid on one real timeline (within wall-clock skew, which on a
single host is microseconds -- fine for eyeballing in Perfetto).
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.telemetry.tracing import TRACE_SCHEMA

__all__ = [
    "SNAPSHOT_SCHEMA",
    "in_worker",
    "worker_snapshot",
    "snapshot",
    "merge_snapshot",
    "merged_chrome_trace",
    "write_merged_chrome",
    "worker_init_args",
    "init_worker",
]

SNAPSHOT_SCHEMA = "repro.telemetry.snapshot/1"

#: True only in a process started via :func:`init_worker` (or a
#: partition pipe worker).  Pool task wrappers are sometimes invoked
#: in-process (``jobs=1`` paths, tests); gating on this keeps such calls
#: from snapshot-clearing the parent's own registries.
_IS_WORKER = False


def in_worker() -> bool:
    """Is this process a telemetry-initialized pool/pipe worker?"""
    return _IS_WORKER


def worker_snapshot() -> Optional[Dict[str, Any]]:
    """Per-task snapshot for pool-task wrappers.

    Snapshot-and-clear when running in a worker process (so a pooled
    worker serving many tasks reports each exactly once); ``None`` when
    the wrapper was called in-process.
    """
    if not _IS_WORKER:
        return None
    return snapshot(clear=True)


def snapshot(clear: bool = False) -> Optional[Dict[str, Any]]:
    """Serialize this process's telemetry into one JSON-safe document.

    Returns ``None`` when telemetry is off (the common case -- callers
    ship ``None`` back over the pipe for free).  With ``clear=True`` the
    tracer, metrics and series registries are reset afterwards, so a
    pooled worker that runs many tasks reports each task's telemetry
    exactly once.
    """
    from repro.telemetry import TELEMETRY

    if not TELEMETRY.active:
        return None
    tracer = TELEMETRY.tracer
    spans = [
        {
            "name": sp.name,
            "cat": sp.cat,
            "span_id": sp.span_id,
            "parent_id": sp.parent_id,
            "start_ns": sp.start_ns,
            "end_ns": sp.end_ns,
            "args": sp.args,
        }
        for sp in tracer.spans
        if sp.end_ns is not None
    ]
    doc = {
        "schema": SNAPSHOT_SCHEMA,
        "pid": os.getpid(),
        "wall_anchor_ns": time.time_ns(),
        "perf_anchor_ns": time.perf_counter_ns(),
        "spans": spans,
        "metrics": TELEMETRY.metrics.to_dict(),
        "series": TELEMETRY.series.to_dict(),
    }
    if clear:
        tracer.clear()
        from repro.telemetry import MetricsRegistry
        from repro.telemetry.timeseries import SeriesRegistry

        TELEMETRY.metrics = MetricsRegistry()
        TELEMETRY.series = SeriesRegistry()
    return doc


def merge_snapshot(snap: Optional[Dict[str, Any]]) -> None:
    """Fold a worker snapshot into this process's telemetry state.

    Metrics merge commutatively (counters add, gauges take the max,
    histograms add bucket-wise) and series interleave by simulated time,
    so pool completion order never changes the merged result.  Span
    payloads are parked on ``TELEMETRY.remote`` for
    :func:`merged_chrome_trace`.  No-ops on ``None`` or when telemetry
    is off.
    """
    from repro.telemetry import TELEMETRY

    if snap is None or not TELEMETRY.active:
        return
    TELEMETRY.metrics.merge(snap.get("metrics") or {})
    TELEMETRY.series.merge(snap.get("series") or {})
    if snap.get("spans"):
        TELEMETRY.remote.append(snap)


def _local_snapshot_inline() -> Dict[str, Any]:
    """Snapshot of the *parent* process for the merged view (no clear)."""
    from repro.telemetry import TELEMETRY

    tracer = TELEMETRY.tracer
    return {
        "pid": os.getpid(),
        "wall_anchor_ns": time.time_ns(),
        "perf_anchor_ns": time.perf_counter_ns(),
        "spans": [
            {
                "name": sp.name,
                "cat": sp.cat,
                "span_id": sp.span_id,
                "parent_id": sp.parent_id,
                "start_ns": sp.start_ns,
                "end_ns": sp.end_ns,
                "args": sp.args,
            }
            for sp in tracer.spans
            if sp.end_ns is not None
        ],
    }


def merged_chrome_trace() -> Dict[str, Any]:
    """One Chrome trace-event document spanning every collected process.

    Parent spans and every remote snapshot become per-pid ``"X"`` tracks
    on one wall-clock timeline; simulation-time series become ``"C"``
    counter tracks (their timestamps are *simulated* seconds rendered as
    microseconds -- a separate, zero-based axis that Perfetto displays
    alongside; the counter process is labelled to make that explicit).

    Event order is canonicalized (metadata first, then by pid/ts/name),
    so the export is deterministic for a given set of snapshots no
    matter the order workers finished in.
    """
    from repro.telemetry import TELEMETRY

    procs: List[Dict[str, Any]] = [_local_snapshot_inline()]
    procs.extend(TELEMETRY.remote)

    # Wall-clock start of each process's span set.
    wall_starts: List[int] = []
    for doc in procs:
        anchor = doc["wall_anchor_ns"] - doc["perf_anchor_ns"]
        for sp in doc["spans"]:
            wall_starts.append(anchor + sp["start_ns"])
    epoch = min(wall_starts) if wall_starts else 0

    meta_events: List[Dict[str, Any]] = []
    span_events: List[Dict[str, Any]] = []
    seen_pids = set()
    parent_pid = os.getpid()
    for doc in procs:
        pid = doc["pid"]
        if pid not in seen_pids:
            seen_pids.add(pid)
            role = "parent" if pid == parent_pid else "worker"
            meta_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"repro-io {role} (pid {pid})"},
                }
            )
        anchor = doc["wall_anchor_ns"] - doc["perf_anchor_ns"]
        for sp in doc["spans"]:
            args: Dict[str, Any] = {"span_id": sp["span_id"]}
            if sp.get("parent_id") is not None:
                args["parent_id"] = sp["parent_id"]
            if sp.get("args"):
                args.update(sp["args"])
            start_wall = anchor + sp["start_ns"]
            span_events.append(
                {
                    "name": sp["name"],
                    "cat": sp.get("cat", "repro"),
                    "ph": "X",
                    "ts": (start_wall - epoch) / 1e3,
                    "dur": (sp["end_ns"] - sp["start_ns"]) / 1e3,
                    "pid": pid,
                    "tid": 0,
                    "args": args,
                }
            )
    meta_events.sort(key=lambda ev: ev["pid"])
    span_events.sort(key=lambda ev: (ev["pid"], ev["ts"], ev["name"]))

    # Simulation-clock counter tracks (one synthetic pid, labelled).
    counter_events: List[Dict[str, Any]] = []
    series_names = TELEMETRY.series.names()
    if series_names:
        sim_pid = 0
        meta_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": sim_pid,
                "tid": 0,
                "args": {"name": "simulated time (series; ts = sim us)"},
            }
        )
        for name in series_names:
            ts_obj = TELEMETRY.series.series(name)
            for t, v in zip(ts_obj.times, ts_obj.values):
                counter_events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": t * 1e6,
                        "pid": sim_pid,
                        "tid": 0,
                        "args": {"value": v},
                    }
                )
        counter_events.sort(key=lambda ev: (ev["name"], ev["ts"]))

    return {
        "traceEvents": meta_events + span_events + counter_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "merged": True,
            "processes": sorted(seen_pids),
        },
    }


def write_merged_chrome(path: Union[str, Path]) -> Path:
    """Write :func:`merged_chrome_trace` to ``path`` and return it."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    doc = merged_chrome_trace()
    with open(p, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return p


# -- worker bootstrap -------------------------------------------------------

def worker_init_args() -> Tuple[bool, int]:
    """The ``(telemetry_active, log_level)`` pair to ship to pool workers."""
    from repro.telemetry import TELEMETRY

    return TELEMETRY.active, logging.getLogger().getEffectiveLevel()


def init_worker(telemetry_active: bool, log_level: int) -> None:
    """Process-pool initializer: mirror the parent's telemetry state and
    log level in the worker.

    Must stay a plain module-level function (picklable by reference for
    ``spawn`` contexts).
    """
    global _IS_WORKER
    _IS_WORKER = True
    logging.basicConfig(
        level=log_level, format="%(asctime)s %(name)s %(levelname)s %(message)s"
    )
    logging.getLogger().setLevel(log_level)
    if telemetry_active:
        from repro import telemetry

        telemetry.reset()
        telemetry.enable()
