"""Simulation-clock time series and DES-timeline probes.

Real parallel I/O monitors (Darshan, LLview, server-side Lustre stats;
paper Sec. IV-A) sample live system state at a fixed cadence and keep
the samples as time series.  The simulated stack deserves the same
visibility: this module records ``(sim_time, value)`` samples into named
series and provides a probe coroutine that rides the DES event timeline,
sampling link, server and queue state at a fixed simulated interval.

Everything here follows the repo's self-telemetry contract: the single
``TELEMETRY.active`` check gates all recording, probes are only
installed when telemetry is enabled, and nothing in this module is ever
imported on a simulation hot path when telemetry is off.

Series are bounded: once a series reaches its point cap it is decimated
(every other point dropped) and the sampling stride doubled, so a
pathologically long run costs O(cap) memory while still covering the
whole timeline.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "TIMESERIES_SCHEMA",
    "TimeSeries",
    "SeriesRegistry",
    "attach_probe",
    "install_standard_probes",
]

TIMESERIES_SCHEMA = "repro.telemetry.timeseries/1"

#: Default per-series point cap before decimation kicks in.
DEFAULT_MAX_POINTS = 4096


class TimeSeries:
    """One named sequence of ``(sim_time, value)`` samples.

    Decimation keeps the series bounded: when ``max_points`` is reached,
    every other sample is dropped and the keep-stride doubles, so the
    series always spans the full timeline at progressively coarser
    resolution (the classic rrdtool-style consolidation, without the
    averaging -- exact samples are kept so p99 stays meaningful).
    """

    __slots__ = ("name", "unit", "times", "values", "max_points", "_stride", "_skip")

    def __init__(self, name: str, unit: str = "", max_points: int = DEFAULT_MAX_POINTS):
        if max_points < 4:
            raise ValueError("max_points must be at least 4")
        self.name = name
        self.unit = unit
        self.times: List[float] = []
        self.values: List[float] = []
        self.max_points = max_points
        self._stride = 1  # record every _stride-th offered sample
        self._skip = 0  # offered samples dropped since the last kept one

    def record(self, t: float, value: float) -> None:
        """Record one sample at simulated time ``t``."""
        if self._skip + 1 < self._stride:
            self._skip += 1
            return
        self._skip = 0
        self.times.append(float(t))
        self.values.append(float(value))
        if len(self.times) >= self.max_points:
            self._decimate()

    def _decimate(self) -> None:
        self.times = self.times[::2]
        self.values = self.values[::2]
        self._stride *= 2

    def __len__(self) -> int:
        return len(self.times)

    def stats(self) -> Dict[str, float]:
        """Summary statistics: count/min/mean/max/p99/last.

        p99 is nearest-rank over the recorded samples.
        """
        n = len(self.values)
        if n == 0:
            return {"count": 0}
        ordered = sorted(self.values)
        rank = max(0, min(n - 1, -(-99 * n // 100) - 1))  # ceil(0.99 n) - 1
        return {
            "count": n,
            "min": ordered[0],
            "mean": sum(self.values) / n,
            "max": ordered[-1],
            "p99": ordered[rank],
            "last": self.values[-1],
        }

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "unit": self.unit,
            "times": list(self.times),
            "values": list(self.values),
        }


class SeriesRegistry:
    """Process-wide collection of named time series."""

    def __init__(self, max_points: int = DEFAULT_MAX_POINTS):
        self._series: Dict[str, TimeSeries] = {}
        self.max_points = max_points

    def series(self, name: str, unit: str = "") -> TimeSeries:
        """Get or create the series called ``name``."""
        ts = self._series.get(name)
        if ts is None:
            ts = TimeSeries(name, unit, self.max_points)
            self._series[name] = ts
        return ts

    def record(self, name: str, t: float, value: float, unit: str = "") -> None:
        self.series(name, unit).record(t, value)

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self):
        return iter(self._series.values())

    def names(self) -> List[str]:
        return sorted(self._series)

    def to_dict(self) -> dict:
        """JSON document with all series, sorted by name."""
        return {
            "schema": TIMESERIES_SCHEMA,
            "series": [self._series[k].to_dict() for k in sorted(self._series)],
        }

    def merge(self, doc: dict) -> None:
        """Fold a ``to_dict()`` document from another process into this
        registry.

        Samples are interleaved by simulated time and re-sorted, so the
        merged result is independent of merge order (process-pool
        completion order is nondeterministic).  Merged series are
        re-decimated against the cap.
        """
        for entry in doc.get("series", ()):
            ts = self.series(entry["name"], entry.get("unit", ""))
            if not entry.get("times"):
                continue
            pairs = sorted(
                zip(
                    list(ts.times) + [float(t) for t in entry["times"]],
                    list(ts.values) + [float(v) for v in entry["values"]],
                )
            )
            ts.times = [p[0] for p in pairs]
            ts.values = [p[1] for p in pairs]
            while len(ts.times) >= ts.max_points:
                ts._decimate()

    def render_text(self) -> str:
        lines = ["time series:"]
        if not self._series:
            lines.append("  (none recorded)")
            return "\n".join(lines)
        for name in sorted(self._series):
            ts = self._series[name]
            s = ts.stats()
            unit = f" {ts.unit}" if ts.unit else ""
            lines.append(
                f"  {name:<44} n={s['count']:<6} min={s['min']:.4g} "
                f"mean={s['mean']:.4g} p99={s['p99']:.4g} max={s['max']:.4g}{unit}"
            )
        return "\n".join(lines)


# -- DES-timeline probes ---------------------------------------------------

Sampler = Tuple[str, str, Callable[[], float]]


def _probe_proc(env, samplers: Sequence[Sampler], interval: float, series):
    """Generator process: sample, then re-arm unless the timeline is idle.

    The probe's own timeout is the event being executed when this
    generator resumes, so an empty queue means every *real* event has
    drained -- stopping here guarantees ``env.run()`` (run-to-empty)
    terminates instead of the probe keeping the heap alive forever.
    """
    while True:
        now = env.now
        for name, unit, fn in samplers:
            series.record(name, now, fn(), unit)
        if not env._queue:
            return
        yield env.timeout(interval)


def attach_probe(env, samplers: Iterable[Sampler], interval: float):
    """Install a periodic sampling process on ``env``.

    Parameters
    ----------
    env:
        The :class:`repro.des.engine.Environment` to ride.
    samplers:
        ``(series_name, unit, callable)`` triples; each callable returns
        the instantaneous value to record.
    interval:
        Simulated seconds between samples.

    Returns the probe process (or ``None`` when telemetry is off).
    """
    from repro.telemetry import TELEMETRY

    if not TELEMETRY.active:
        return None
    if interval <= 0:
        raise ValueError("probe interval must be positive")
    sams = list(samplers)
    if not sams:
        return None
    return env.process(_probe_proc(env, sams, interval, TELEMETRY.series))


#: Default simulated sampling interval (10 ms of simulated time).
DEFAULT_PROBE_INTERVAL = 0.01


def standard_samplers(harness) -> List[Sampler]:
    """Samplers mirroring the client/server/system probe levels of the
    paper's Sec. IV-A taxonomy, for one :class:`ExperimentHarness`.

    Covers fair-share core links (system level), OSS service backlog and
    per-OST device queues plus MDS backlog (server level).  Per-endpoint
    NIC links are deliberately skipped -- hundreds of mostly-idle series
    for large platforms.
    """
    samplers: List[Sampler] = []
    platform = harness.platform
    for label, fabric in (
        ("compute", getattr(platform, "compute_fabric", None)),
        ("storage", getattr(platform, "storage_fabric", None)),
    ):
        if fabric is None:
            continue
        core = fabric.core
        samplers.append(
            (f"net.{label}.core.flows", "flows", lambda c=core: float(c.active_flows))
        )
        samplers.append(
            (f"net.{label}.core.util", "frac", lambda c=core: float(c.utilization))
        )
    pfs = harness.pfs
    if pfs is not None:
        for oss, _node in pfs.oss_servers:
            samplers.append(
                (
                    f"pfs.oss.{oss.name}.backlog",
                    "rpcs",
                    lambda o=oss: float(o.queue_length + o.in_service),
                )
            )
            for ost_id in oss.ost_ids:
                dev = oss.osts[ost_id]
                samplers.append(
                    (
                        f"pfs.ost.{ost_id}.queue",
                        "reqs",
                        lambda d=dev: float(d.queue_length),
                    )
                )
        for mds, _node in pfs.mds_servers:
            samplers.append(
                (
                    f"pfs.mds.{mds.name}.backlog",
                    "rpcs",
                    lambda m=mds: float(m.queue_length + m.in_service),
                )
            )
    return samplers


def install_standard_probes(harness, interval: float = DEFAULT_PROBE_INTERVAL):
    """Attach the standard probe set to a harness's environment.

    No-op (returns ``None``) when telemetry is disabled.
    """
    from repro.telemetry import TELEMETRY

    if not TELEMETRY.active:
        return None
    return attach_probe(harness.platform.env, standard_samplers(harness), interval)
