"""Self-telemetry metrics: counters, gauges and log2-bucket histograms.

The simulator's *simulated* instruments (``repro.monitoring``) measure the
modelled workloads; this registry measures the simulator itself -- events
executed per :meth:`Environment.run`, fair-share rebalances, OST queue
waits, runner cache hits.  It is deliberately tiny and allocation-light:
metric objects are plain ``__slots__`` classes, the registry is a dict, and
nothing here is touched on a hot path unless telemetry is enabled (hot
call sites guard on ``TELEMETRY.active`` first; see
:mod:`repro.telemetry`).

Histograms use *fixed* base-2 buckets: an observation ``v`` lands in the
bucket whose upper bound is ``2**ceil(log2(v))``, with the exponent clamped
to ``[_MIN_EXP, _MAX_EXP]``.  Fixed buckets make histograms mergeable
across runs and cheap to record (one ``frexp``, one dict increment) at the
cost of ~2x resolution -- the standard HDR/Prometheus trade-off.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterator, Optional, Union

#: Clamp histogram bucket exponents to [2**-30 s ~ 1 ns .. 2**34 ~ 1.7e10].
_MIN_EXP = -30
_MAX_EXP = 34

METRICS_SCHEMA = "repro.telemetry.metrics/1"


def _fmt_num(v: Union[int, float, None]) -> str:
    """Compact numeric rendering for the text table."""
    if v is None:
        return "-"
    if isinstance(v, int):
        return str(v)
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.4g}"


class Counter:
    """A monotonically increasing count (events, bytes, cache hits)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def render(self) -> str:
        return _fmt_num(self.value)


class Gauge:
    """A point-in-time value; also tracks high-water marks via
    :meth:`update_max`."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, v: Union[int, float]) -> None:
        self.value = v

    def update_max(self, v: Union[int, float]) -> None:
        if v > self.value:
            self.value = v

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def render(self) -> str:
        return _fmt_num(self.value)


class Histogram:
    """Fixed log2-bucket histogram of non-negative observations.

    Buckets are keyed by exponent ``e``: the bucket holds observations in
    ``(2**(e-1), 2**e]``.  Zero (and negative, clamped) observations go to a
    dedicated underflow bucket.
    """

    __slots__ = ("name", "count", "total", "vmin", "vmax", "zero_count", "buckets")

    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self.zero_count = 0
        #: exponent -> observation count
        self.buckets: Dict[int, int] = {}

    def observe(self, v: Union[int, float]) -> None:
        self.count += 1
        if v <= 0:
            self.zero_count += 1
            v = 0.0
        else:
            self.total += v
            e = _bucket_exp(v)
            self.buckets[e] = self.buckets.get(e, 0) + 1
        if self.vmin is None or v < self.vmin:
            self.vmin = v
        if self.vmax is None or v > self.vmax:
            self.vmax = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.vmin,
            "max": self.vmax,
            "zero_count": self.zero_count,
            # JSON keys must be strings; "e" means bucket (2^(e-1), 2^e].
            "buckets": {str(e): n for e, n in sorted(self.buckets.items())},
        }

    def render(self) -> str:
        if not self.count:
            return "n=0"
        return (
            f"n={self.count} mean={_fmt_num(self.mean)} "
            f"min={_fmt_num(self.vmin)} max={_fmt_num(self.vmax)}"
        )


def _bucket_exp(v: float) -> int:
    # frexp(v) = (m, e) with v = m * 2**e and 0.5 <= m < 1, so 2**e is the
    # smallest power of two >= v (exact powers land in their own bucket).
    m, e = math.frexp(v)
    if m == 0.5:  # exact power of two: 2**(e-1)
        e -= 1
    return max(_MIN_EXP, min(_MAX_EXP, e))


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics with get-or-create accessors and two renderers.

    >>> reg = MetricsRegistry()
    >>> reg.counter("des.runs").inc()
    >>> reg.counter("des.runs").value
    1
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    # -- accessors ----------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def _get_or_create(self, name: str, cls) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def clear(self) -> None:
        self._metrics.clear()

    # -- cross-process aggregation ------------------------------------------
    def merge(self, doc: Dict[str, Any]) -> None:
        """Fold a ``to_dict()`` document (usually from a worker process)
        into this registry.

        The fold is commutative -- counters add, gauges keep the max
        (every gauge in the codebase is a high-water mark), histograms
        add bucket-wise and combine min/max -- so merging worker
        snapshots in pool-completion order yields the same registry no
        matter which worker finished first.
        """
        for name, entry in (doc.get("metrics") or {}).items():
            kind = entry.get("kind")
            if kind == "counter":
                self.counter(name).inc(entry.get("value", 0))
            elif kind == "gauge":
                self.gauge(name).update_max(entry.get("value", 0))
            elif kind == "histogram":
                h = self.histogram(name)
                h.count += entry.get("count", 0)
                h.total += entry.get("total", 0.0)
                h.zero_count += entry.get("zero_count", 0)
                for key, n in (entry.get("buckets") or {}).items():
                    e = int(key)
                    h.buckets[e] = h.buckets.get(e, 0) + n
                for src, better in (("min", min), ("max", max)):
                    v = entry.get(src)
                    if v is None:
                        continue
                    attr = "vmin" if src == "min" else "vmax"
                    cur = getattr(h, attr)
                    setattr(h, attr, v if cur is None else better(cur, v))
            else:
                raise ValueError(f"metric {name!r} has unknown kind {kind!r}")

    # -- renderers ----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": METRICS_SCHEMA,
            "metrics": {
                name: self._metrics[name].to_dict()
                for name in sorted(self._metrics)
            },
        }

    def render_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self) -> str:
        """Aligned ``kind  name  value`` table, sorted by metric name."""
        if not self._metrics:
            return "(no metrics recorded)"
        rows = [
            (m.kind, name, self._metrics[name].render())
            for name, m in sorted(self._metrics.items())
        ]
        name_w = max(len(r[1]) for r in rows)
        return "\n".join(f"{kind:<9} {name:<{name_w}}  {val}"
                         for kind, name, val in rows)
