"""Run provenance manifests.

A manifest records *what produced a set of results*: the source digest the
cache was keyed on, the experiment/seed matrix, which tasks were served
from cache vs. freshly executed, per-task wall-clock, and host/Python
metadata.  Hunold's reproducibility argument (see PAPERS.md) applies to
our own harness: a results directory without this metadata cannot be
re-trusted once the source tree moves on, and a cached record cannot be
distinguished from a fresh one.  :func:`build_manifest` is pure (easy to
test); :func:`write_manifest` persists atomically next to the results it
describes.
"""

from __future__ import annotations

import json
import logging
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

log = logging.getLogger(__name__)

MANIFEST_SCHEMA = "repro.telemetry.manifest/1"
MANIFEST_NAME = "manifest.json"

PathLike = Union[str, Path]


def host_metadata() -> Dict[str, str]:
    """Host/interpreter facts that affect result interpretation."""
    import repro

    return {
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "repro_version": repro.__version__,
        "argv": " ".join(sys.argv),
    }


def build_manifest(
    *,
    source_digest: Optional[str],
    ids: Sequence[str],
    seeds: Sequence[int],
    jobs: int,
    cache_dir: PathLike,
    use_cache: bool,
    tasks: List[Dict[str, Any]],
    cache_counts: Dict[str, int],
    wall_seconds: float,
    created: Optional[float] = None,
) -> Dict[str, Any]:
    """Assemble one run's manifest document.

    ``tasks`` entries must carry ``id``, ``seed``, ``cached``, ``seconds``
    and ``record_sha256``; ``cache_counts`` carries ``hits`` / ``fresh`` /
    ``stale`` / ``corrupt``.
    """
    return {
        "schema": MANIFEST_SCHEMA,
        "created": time.time() if created is None else created,
        "source_digest": source_digest,
        "experiment_ids": list(ids),
        "seeds": list(seeds),
        "jobs": jobs,
        "use_cache": use_cache,
        "cache_dir": str(cache_dir),
        "cache": dict(cache_counts),
        "tasks": tasks,
        "wall_seconds": wall_seconds,
        "host": host_metadata(),
    }


def write_manifest(manifest: Dict[str, Any], path: PathLike) -> Path:
    """Atomically write ``manifest`` as JSON; returns the final path."""
    from repro.ioutil import atomic_write_json

    p = atomic_write_json(manifest, path, trailing_newline=True)
    log.info(
        "wrote run manifest (%d task(s), %d cache hit(s)) to %s",
        len(manifest.get("tasks", ())),
        manifest.get("cache", {}).get("hits", 0),
        p,
    )
    return p


def load_manifest(path: PathLike) -> Dict[str, Any]:
    """Read a manifest back, validating its schema marker."""
    with open(Path(path), "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path} is not a repro telemetry manifest "
            f"(schema={doc.get('schema')!r})"
        )
    return doc


def cache_hit_ratio(manifest: Dict[str, Any]) -> float:
    """Fraction of tasks served from cache (0.0 when no tasks ran)."""
    cache = manifest.get("cache", {})
    hits = cache.get("hits", 0)
    total = hits + cache.get("fresh", 0)
    return hits / total if total else 0.0
