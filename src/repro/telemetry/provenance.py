"""Run provenance manifests.

A manifest records *what produced a set of results*: the source digest the
cache was keyed on, the experiment/seed matrix, which tasks were served
from cache vs. freshly executed, per-task wall-clock, and host/Python
metadata.  Hunold's reproducibility argument (see PAPERS.md) applies to
our own harness: a results directory without this metadata cannot be
re-trusted once the source tree moves on, and a cached record cannot be
distinguished from a fresh one.  :func:`build_manifest` is pure (easy to
test); :func:`write_manifest` persists atomically next to the results it
describes.
"""

from __future__ import annotations

import functools
import json
import logging
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

log = logging.getLogger(__name__)

MANIFEST_SCHEMA = "repro.telemetry.manifest/1"
MANIFEST_NAME = "manifest.json"

PathLike = Union[str, Path]


@functools.lru_cache(maxsize=1)
def _gather_host_metadata() -> Dict[str, str]:
    import repro

    return {
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "repro_version": repro.__version__,
        "argv": " ".join(sys.argv),
    }


def host_metadata() -> Dict[str, str]:
    """Host/interpreter facts that affect result interpretation.

    Gathered once per process (the facts are process-stable); callers get
    a fresh copy so the cache cannot be mutated from outside.
    """
    return dict(_gather_host_metadata())


def host_reference(store) -> Dict[str, str]:
    """Store host metadata as an artifact; return a by-digest reference.

    The experiment runner and the sweep runner used to each embed the
    full host dict in their manifests; now both call this, the metadata
    is collected once (see :func:`host_metadata`) and stored once
    (content addressing deduplicates it across every run on the same
    host), and manifests carry ``{"artifact": <digest>, "host": <node>,
    "python": <version>}`` -- enough to display, with the rest one
    ``store.get`` away.
    """
    from repro.store import RunArtifact

    meta = host_metadata()
    digest = store.put(RunArtifact.from_host(meta))
    return {"artifact": digest, "host": meta["host"], "python": meta["python"]}


def build_manifest(
    *,
    source_digest: Optional[str],
    ids: Sequence[str],
    seeds: Sequence[int],
    jobs: int,
    cache_dir: PathLike,
    use_cache: bool,
    tasks: List[Dict[str, Any]],
    cache_counts: Dict[str, int],
    wall_seconds: float,
    created: Optional[float] = None,
    host: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    """Assemble one run's manifest document.

    ``tasks`` entries must carry ``id``, ``seed``, ``cached``, ``seconds``
    and ``record_sha256`` (store-backed runs add ``artifact``, the record's
    content address); ``cache_counts`` carries ``hits`` / ``fresh`` /
    ``stale`` / ``corrupt``.  ``host`` defaults to the full inline
    :func:`host_metadata`; store-backed callers pass the compact
    :func:`host_reference` instead so the manifest references the host
    artifact by digest rather than duplicating it.
    """
    return {
        "schema": MANIFEST_SCHEMA,
        "created": time.time() if created is None else created,
        "source_digest": source_digest,
        "experiment_ids": list(ids),
        "seeds": list(seeds),
        "jobs": jobs,
        "use_cache": use_cache,
        "cache_dir": str(cache_dir),
        "cache": dict(cache_counts),
        "tasks": tasks,
        "wall_seconds": wall_seconds,
        "host": host_metadata() if host is None else dict(host),
    }


def write_manifest(manifest: Dict[str, Any], path: PathLike) -> Path:
    """Atomically write ``manifest`` as JSON; returns the final path."""
    from repro.ioutil import atomic_write_json

    p = atomic_write_json(manifest, path, trailing_newline=True)
    log.info(
        "wrote run manifest (%d task(s), %d cache hit(s)) to %s",
        len(manifest.get("tasks", ())),
        manifest.get("cache", {}).get("hits", 0),
        p,
    )
    return p


def load_manifest(path: PathLike) -> Dict[str, Any]:
    """Read a manifest back, validating its schema marker."""
    with open(Path(path), "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path} is not a repro telemetry manifest "
            f"(schema={doc.get('schema')!r})"
        )
    return doc


def cache_hit_ratio(manifest: Dict[str, Any]) -> float:
    """Fraction of tasks served from cache (0.0 when no tasks ran)."""
    cache = manifest.get("cache", {})
    hits = cache.get("hits", 0)
    total = hits + cache.get("fresh", 0)
    return hits / total if total else 0.0
