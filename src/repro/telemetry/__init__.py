"""Self-observability for the simulator itself.

The repo already instruments the *simulated* I/O stack
(:mod:`repro.monitoring` plays the role of Darshan/Recorder for modelled
workloads); this package instruments the **simulator**: wall-clock span
tracing (:mod:`repro.telemetry.tracing`), a metrics registry
(:mod:`repro.telemetry.metrics`), and run provenance manifests
(:mod:`repro.telemetry.provenance`).

Telemetry is **disabled by default** and designed so disabled overhead is
one attribute load plus a boolean test at each instrumented site::

    from repro.telemetry import TELEMETRY
    ...
    if TELEMETRY.active:
        TELEMETRY.metrics.counter("pfs.oss.rpcs").inc()

Enable it with :func:`enable` (the CLI does this for ``--trace`` /
``--metrics``), snapshot with ``TELEMETRY.metrics.render_text()`` or
``TELEMETRY.tracer.write_chrome(path)``, and wipe collected data with
:func:`reset`.  The guard lives at the call site rather than inside the
metric objects so the DES hot loops (see ``benchmarks/check_regression.py``
and ``benchmarks/telemetry_overhead.py``) never pay for a disabled feature.
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    METRICS_SCHEMA,
)
from repro.telemetry.provenance import (
    MANIFEST_SCHEMA,
    build_manifest,
    cache_hit_ratio,
    host_metadata,
    host_reference,
    load_manifest,
    write_manifest,
)
from repro.telemetry.tracing import (
    Span,
    SpanTracer,
    TRACE_SCHEMA,
    validate_chrome_trace,
)
from repro.telemetry.timeseries import (
    SeriesRegistry,
    TimeSeries,
    TIMESERIES_SCHEMA,
    attach_probe,
    install_standard_probes,
)


class TelemetryState:
    """Process-global telemetry switchboard (one instance: ``TELEMETRY``)."""

    __slots__ = ("active", "tracer", "metrics", "series", "remote")

    def __init__(self):
        self.active = False
        self.tracer = SpanTracer()
        self.metrics = MetricsRegistry()
        #: Simulation-clock time series (:mod:`repro.telemetry.timeseries`).
        self.series = SeriesRegistry()
        #: Span snapshots collected from worker processes
        #: (:func:`repro.telemetry.collect.merge_snapshot` appends here).
        self.remote: list = []


#: The singleton hot paths test.  Import the *object* (not the module) so
#: instrumented code pays one attribute load for the ``active`` check.
TELEMETRY = TelemetryState()


def enabled() -> bool:
    """Is self-telemetry currently collecting?"""
    return TELEMETRY.active


def enable() -> TelemetryState:
    """Turn on span tracing and gated metric collection."""
    TELEMETRY.active = True
    return TELEMETRY


def disable() -> TelemetryState:
    """Stop collecting (already-collected spans/metrics are kept)."""
    TELEMETRY.active = False
    return TELEMETRY


def reset() -> TelemetryState:
    """Drop all collected spans, metrics, series and remote snapshots
    (the enable state is kept)."""
    TELEMETRY.tracer = SpanTracer()
    TELEMETRY.metrics = MetricsRegistry()
    TELEMETRY.series = SeriesRegistry()
    TELEMETRY.remote = []
    return TELEMETRY


def span(name: str, cat: str = "repro", **args):
    """Open a span on the global tracer (regardless of ``active``)."""
    return TELEMETRY.tracer.span(name, cat=cat, **args)


def traced(name=None, cat: str = "repro"):
    """Decorator: time calls on the global tracer *when telemetry is on*."""

    def decorate(fn):
        span_name = name or fn.__qualname__

        def wrapper(*a, **kw):
            if not TELEMETRY.active:
                return fn(*a, **kw)
            with TELEMETRY.tracer.span(span_name, cat=cat):
                return fn(*a, **kw)

        wrapper.__name__ = fn.__name__
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


__all__ = [
    "TELEMETRY",
    "TelemetryState",
    "enabled",
    "enable",
    "disable",
    "reset",
    "span",
    "traced",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS_SCHEMA",
    "Span",
    "SpanTracer",
    "TRACE_SCHEMA",
    "validate_chrome_trace",
    "SeriesRegistry",
    "TimeSeries",
    "TIMESERIES_SCHEMA",
    "attach_probe",
    "install_standard_probes",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "cache_hit_ratio",
    "host_metadata",
    "host_reference",
    "load_manifest",
    "write_manifest",
]
