"""Simulated HPC platform (paper Fig. 1).

Models the hardware substrate the paper's Figure 1 depicts: compute nodes on
a fast fabric (InfiniBand-like), I/O nodes with a burst-buffer tier of
solid-state devices, a slower secondary fabric (10G-Ethernet-like) to the
storage cluster, and the storage servers with their block devices.

* :mod:`repro.cluster.devices` -- block device models (disk with seek
  penalty, SSD with channel parallelism).
* :mod:`repro.cluster.topology` -- fat-tree and dragonfly interconnect
  graphs (networkx) with hop-count routing.
* :mod:`repro.cluster.network` -- the fluid fabric model: per-NIC and
  aggregate processor-sharing bandwidth plus per-hop latency.
* :mod:`repro.cluster.node` -- node records (compute, I/O, storage).
* :mod:`repro.cluster.burst_buffer` -- SSD staging tier with background
  drain to the parallel file system.
* :mod:`repro.cluster.platform` -- assembled platform presets and the
  historical platform-generation table used by claim C1 (the growing
  compute-to-storage performance gap).
"""

from repro.cluster.devices import BlockDevice, DiskDevice, SSDDevice
from repro.cluster.topology import (
    DragonflyTopology,
    FatTreeTopology,
    Topology,
)
from repro.cluster.network import NetworkFabric
from repro.cluster.node import ComputeNode, IONode, NodeRole, StorageNode
from repro.cluster.burst_buffer import BurstBuffer
from repro.cluster.scheduler import BatchScheduler
from repro.cluster.platform import (
    GENERATIONS,
    PLATFORM_PRESETS,
    Platform,
    PlatformGeneration,
    PlatformSpec,
    large_cluster,
    large_spec,
    medium_cluster,
    medium_spec,
    platform_from_spec,
    tiny_cluster,
    tiny_spec,
)

__all__ = [
    "BatchScheduler",
    "BlockDevice",
    "BurstBuffer",
    "ComputeNode",
    "DiskDevice",
    "DragonflyTopology",
    "FatTreeTopology",
    "GENERATIONS",
    "IONode",
    "PLATFORM_PRESETS",
    "NetworkFabric",
    "NodeRole",
    "Platform",
    "PlatformGeneration",
    "PlatformSpec",
    "SSDDevice",
    "StorageNode",
    "Topology",
    "large_cluster",
    "large_spec",
    "medium_cluster",
    "medium_spec",
    "platform_from_spec",
    "tiny_cluster",
    "tiny_spec",
]
