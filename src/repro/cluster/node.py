"""Node records for the simulated platform.

Nodes are lightweight descriptions; active behaviour (file system services,
application processes) is attached by :mod:`repro.pfs` and
:mod:`repro.workloads`.  The roles mirror paper Fig. 1: compute nodes run
client applications, I/O nodes host the burst-buffer tier and forward
requests, and storage nodes host the parallel file system servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional


class NodeRole(str, Enum):
    """What a node does in the platform (paper Fig. 1)."""

    COMPUTE = "compute"
    IO = "io"
    STORAGE = "storage"


@dataclass
class Node:
    """A machine in the cluster.

    Attributes
    ----------
    name:
        Unique node name; doubles as the fabric endpoint identifier.
    role:
        One of :class:`NodeRole`.
    cores:
        Core count (used by the scheduler log model and by compute-time
        scaling in execution-driven simulation).
    mem_bytes:
        Node memory; bounds client-side caches.
    fabrics:
        Names of the fabrics this node is attached to.
    """

    name: str
    role: NodeRole
    cores: int = 32
    mem_bytes: float = 256e9
    fabrics: List[str] = field(default_factory=list)

    def __post_init__(self):
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.mem_bytes <= 0:
            raise ValueError("mem_bytes must be positive")


@dataclass
class ComputeNode(Node):
    """Runs application ranks."""

    role: NodeRole = NodeRole.COMPUTE
    flops: float = 1e12

    def __post_init__(self):
        super().__post_init__()
        if self.flops <= 0:
            raise ValueError("flops must be positive")


@dataclass
class IONode(Node):
    """Hosts a burst-buffer device and bridges the two fabrics."""

    role: NodeRole = NodeRole.IO
    #: Set by the platform builder once the device exists.
    burst_buffer_name: Optional[str] = None


@dataclass
class StorageNode(Node):
    """Hosts a metadata or object storage server."""

    role: NodeRole = NodeRole.STORAGE
    service: str = "oss"  # "mds" or "oss"
