"""Fluid network fabric model.

A :class:`NetworkFabric` connects named endpoints.  Each endpoint owns an
ingress and an egress :class:`~repro.des.sharing.FairShareLink` (NIC
bandwidth), and the fabric owns a shared *core* link sized to its bisection
bandwidth.  A message pays per-hop latency (from the topology, when one is
attached) and then streams its bytes through egress NIC, core, and ingress
NIC in parallel; the slowest of the three gates completion.  This fluid
approximation captures the two effects that matter for parallel I/O
evaluation: endpoint (NIC) saturation and fabric (bisection) saturation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.des.engine import Environment
from repro.des.sharing import FairShareLink
from repro.cluster.topology import Topology


@dataclass
class FabricStats:
    """Cumulative fabric counters."""

    messages: int = 0
    bytes: float = 0.0


class _Endpoint:
    __slots__ = ("name", "ingress", "egress")

    def __init__(self, env: Environment, name: str, nic_bandwidth: float):
        self.name = name
        self.ingress = FairShareLink(env, nic_bandwidth)
        self.egress = FairShareLink(env, nic_bandwidth)


class NetworkFabric:
    """A fabric with per-endpoint NIC limits and a shared core.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Fabric identifier (e.g. ``"ib"`` or ``"eth"``).
    nic_bandwidth:
        Per-endpoint NIC bandwidth, bytes/second.
    core_bandwidth:
        Aggregate fabric (bisection) bandwidth, bytes/second.
    hop_latency:
        Latency per topology hop, seconds.
    base_latency:
        Fixed per-message latency (software + serialization), seconds.
    topology:
        Optional :class:`Topology` for hop counts; without one, every pair
        of distinct endpoints is ``default_hops`` apart.
    default_hops:
        Hop count used when no topology is attached.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        nic_bandwidth: float,
        core_bandwidth: float,
        hop_latency: float = 0.5e-6,
        base_latency: float = 1.5e-6,
        topology: Optional[Topology] = None,
        default_hops: int = 3,
        topology_map: Optional[Dict[str, str]] = None,
    ):
        if nic_bandwidth <= 0 or core_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if hop_latency < 0 or base_latency < 0:
            raise ValueError("latencies must be non-negative")
        self.env = env
        self.name = name
        self.nic_bandwidth = float(nic_bandwidth)
        self.core = FairShareLink(env, core_bandwidth)
        self.hop_latency = float(hop_latency)
        self.base_latency = float(base_latency)
        self.topology = topology
        self.default_hops = default_hops
        #: Optional endpoint-name -> topology-host-name mapping (platform
        #: node names rarely match generated topology host names).
        self.topology_map = dict(topology_map or {})
        self._endpoints: Dict[str, _Endpoint] = {}
        self.stats = FabricStats()

    # -- endpoint management -----------------------------------------------
    def attach(self, endpoint: str, nic_bandwidth: Optional[float] = None) -> None:
        """Register an endpoint (idempotent)."""
        if endpoint not in self._endpoints:
            self._endpoints[endpoint] = _Endpoint(
                self.env, endpoint, nic_bandwidth or self.nic_bandwidth
            )

    def has_endpoint(self, endpoint: str) -> bool:
        return endpoint in self._endpoints

    @property
    def endpoints(self) -> list[str]:
        return list(self._endpoints)

    # -- fault injection ------------------------------------------------------
    def degrade_endpoint(self, endpoint: str, factor: float) -> None:
        """Degrade one endpoint's NIC (ingress and egress) by ``factor``.

        Models a flapping host link or a straggling node's NIC;
        ``factor=1.0`` restores health.
        """
        ep = self._endpoints.get(endpoint)
        if ep is None:
            raise KeyError(f"unknown endpoint {endpoint!r} on fabric {self.name!r}")
        ep.ingress.set_degradation(factor)
        ep.egress.set_degradation(factor)

    def degrade_core(self, factor: float) -> None:
        """Degrade the shared core (bisection) link by ``factor``."""
        self.core.set_degradation(factor)

    # -- latency -------------------------------------------------------------
    def latency(self, src: str, dst: str) -> float:
        """One-way message latency between two endpoints."""
        if src == dst:
            return 0.0
        hops = self.default_hops
        if self.topology is not None:
            a = self.topology_map.get(src, src)
            b = self.topology_map.get(dst, dst)
            if a in self.topology.endpoints and b in self.topology.endpoints:
                hops = self.topology.hops(a, b)
        return self.base_latency + hops * self.hop_latency

    # -- transfer ------------------------------------------------------------
    def send(self, src: str, dst: str, nbytes: float):
        """Simulated-process generator moving ``nbytes`` from src to dst.

        Usage: ``yield from fabric.send("c0", "oss1", 1 << 20)``.
        Returns the transfer duration in seconds.  Intra-node transfers
        (``src == dst``) are free.
        """
        if src not in self._endpoints:
            raise KeyError(f"unknown endpoint {src!r} on fabric {self.name!r}")
        if dst not in self._endpoints:
            raise KeyError(f"unknown endpoint {dst!r} on fabric {self.name!r}")
        start = self.env.now
        self.stats.messages += 1
        if src == dst:
            return 0.0
        self.stats.bytes += nbytes
        lat = self.latency(src, dst)
        if lat > 0:
            yield self.env.timeout(lat)
        if nbytes > 0:
            legs = [
                self._endpoints[src].egress.transfer(nbytes),
                self.core.transfer(nbytes),
                self._endpoints[dst].ingress.transfer(nbytes),
            ]
            yield self.env.all_of(legs)
        return self.env.now - start

    def core_utilization(self) -> float:
        """Fraction of time the core link was busy."""
        return self.core.utilization
