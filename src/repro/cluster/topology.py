"""Interconnect topologies.

Builds networkx graphs for the two fabrics HPC centers commonly deploy
(paper Fig. 1 shows compute nodes on a high-performance fabric such as
InfiniBand and a slower secondary fabric toward the storage cluster).  The
fabric model (:mod:`repro.cluster.network`) uses these graphs only for hop
counts (latency) and for bisection-bandwidth estimation; bandwidth sharing
itself is modelled as a fluid.
"""

from __future__ import annotations

from typing import Iterable, List

import networkx as nx


class Topology:
    """Base class: a graph whose leaf nodes are endpoints (hosts)."""

    def __init__(self, graph: nx.Graph, endpoints: List[str]):
        self.graph = graph
        self.endpoints = list(endpoints)
        self._hops_cache: dict[tuple[str, str], int] = {}

    def hops(self, src: str, dst: str) -> int:
        """Number of links on the shortest path between two endpoints."""
        if src == dst:
            return 0
        key = (src, dst)
        if key not in self._hops_cache:
            self._hops_cache[key] = nx.shortest_path_length(self.graph, src, dst)
        return self._hops_cache[key]

    def diameter(self) -> int:
        """Longest shortest path among endpoint pairs."""
        best = 0
        for i, a in enumerate(self.endpoints):
            for b in self.endpoints[i + 1 :]:
                best = max(best, self.hops(a, b))
        return best

    def bisection_links(self) -> int:
        """Number of links crossing a balanced endpoint bipartition.

        Computed as the minimum edge cut between two endpoint halves; used
        to scale the fabric's aggregate core bandwidth.
        """
        half = len(self.endpoints) // 2
        if half == 0:
            return 0
        g = self.graph.copy()
        s, t = "_s_", "_t_"
        g.add_node(s)
        g.add_node(t)
        for a in self.endpoints[:half]:
            g.add_edge(s, a, capacity=float("inf"))
        for b in self.endpoints[half:]:
            g.add_edge(b, t, capacity=float("inf"))
        for u, v in self.graph.edges:
            g[u][v]["capacity"] = 1
        cut_value, _ = nx.minimum_cut(g, s, t)
        return int(cut_value)


class FatTreeTopology(Topology):
    """A three-level k-ary fat tree.

    ``k`` must be even.  The standard construction yields ``k^3/4`` hosts,
    ``k^2/4`` core switches, and ``k`` pods of ``k`` switches each.  Host
    names are ``host<i>``.

    References: the ubiquitous datacenter/HPC fat-tree; InfiniBand fabrics
    in the paper's Fig. 1 are typically fat trees.
    """

    def __init__(self, k: int = 4):
        if k < 2 or k % 2:
            raise ValueError(f"fat-tree arity k must be even and >= 2, got {k}")
        g = nx.Graph()
        half = k // 2
        hosts: list[str] = []
        core = [f"core{i}" for i in range(half * half)]
        g.add_nodes_from(core, role="core")
        for pod in range(k):
            aggs = [f"agg{pod}_{i}" for i in range(half)]
            edges = [f"edge{pod}_{i}" for i in range(half)]
            g.add_nodes_from(aggs, role="agg")
            g.add_nodes_from(edges, role="edge")
            for a in aggs:
                for e in edges:
                    g.add_edge(a, e)
            for i, a in enumerate(aggs):
                for j in range(half):
                    g.add_edge(a, core[i * half + j])
            for i, e in enumerate(edges):
                for j in range(half):
                    h = f"host{pod * half * half + i * half + j}"
                    g.add_node(h, role="host")
                    g.add_edge(e, h)
                    hosts.append(h)
        super().__init__(g, hosts)
        self.k = k


class DragonflyTopology(Topology):
    """A simplified dragonfly: fully-connected groups, all-to-all global links.

    Parameters
    ----------
    groups:
        Number of dragonfly groups.
    routers_per_group:
        Routers in each group (intra-group all-to-all).
    hosts_per_router:
        Endpoints attached to each router.
    """

    def __init__(self, groups: int = 4, routers_per_group: int = 4, hosts_per_router: int = 2):
        if min(groups, routers_per_group, hosts_per_router) < 1:
            raise ValueError("all dragonfly dimensions must be >= 1")
        g = nx.Graph()
        hosts: list[str] = []
        routers: list[list[str]] = []
        for gi in range(groups):
            group_routers = [f"r{gi}_{ri}" for ri in range(routers_per_group)]
            g.add_nodes_from(group_routers, role="router")
            for i, a in enumerate(group_routers):
                for b in group_routers[i + 1 :]:
                    g.add_edge(a, b)
            for ri, r in enumerate(group_routers):
                for hi in range(hosts_per_router):
                    h = f"host{gi}_{ri}_{hi}"
                    g.add_node(h, role="host")
                    g.add_edge(r, h)
                    hosts.append(h)
            routers.append(group_routers)
        # Global links: group gi's router (gj mod R) connects to group gj's
        # router (gi mod R) -- one link per group pair.
        for gi in range(groups):
            for gj in range(gi + 1, groups):
                a = routers[gi][gj % routers_per_group]
                b = routers[gj][gi % routers_per_group]
                g.add_edge(a, b)
        super().__init__(g, hosts)
        self.groups = groups
        self.routers_per_group = routers_per_group
        self.hosts_per_router = hosts_per_router


def star_topology(endpoints: Iterable[str]) -> Topology:
    """A degenerate one-switch fabric (every endpoint two hops apart)."""
    g = nx.Graph()
    eps = list(endpoints)
    g.add_node("switch", role="core")
    for e in eps:
        g.add_node(e, role="host")
        g.add_edge("switch", e)
    return Topology(g, eps)
