"""Block device models.

A :class:`BlockDevice` serves byte-range accesses through a bounded pool of
service channels (1 for a disk head, several for SSD channels).  Each access
pays a fixed per-operation overhead, a *seek* penalty when the access is not
sequential with respect to the previous one on the same channel pool, and a
transfer time of ``nbytes / bandwidth``.

This is the component that makes the emerging-workload claims of the paper
(Sec. V) come out of the model instead of being assumed: deep-learning
training issues highly random small reads, so on a disk-backed OST it pays
the seek penalty almost every access, while IOR-style sequential I/O
amortises it away (claim C3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.des.resources import Resource
from repro.ops import StorageUnavailable


@dataclass
class DeviceStats:
    """Cumulative counters kept by every device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    busy_time: float = 0.0

    @property
    def ops(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    def seek_ratio(self) -> float:
        """Fraction of accesses that required a seek."""
        return self.seeks / self.ops if self.ops else 0.0


class BlockDevice:
    """A byte-addressable storage device with seek-aware service times.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Identifier used in monitoring output.
    bandwidth:
        Sustained sequential transfer rate, bytes/second.
    seek_time:
        Penalty (seconds) paid when an access is non-sequential.
    op_overhead:
        Fixed per-operation service overhead (seconds); bounds IOPS.
    channels:
        Number of accesses served concurrently (1 = single disk head).
    capacity_bytes:
        Advertised capacity; enforced by higher layers, recorded here for
        reporting.
    """

    def __init__(
        self,
        env,
        name: str,
        bandwidth: float,
        seek_time: float,
        op_overhead: float = 0.0,
        channels: int = 1,
        capacity_bytes: float = float("inf"),
    ):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if seek_time < 0 or op_overhead < 0:
            raise ValueError("seek_time and op_overhead must be non-negative")
        self.env = env
        self.name = name
        self.bandwidth = float(bandwidth)
        self.seek_time = float(seek_time)
        self.op_overhead = float(op_overhead)
        self.capacity_bytes = capacity_bytes
        self._channels = Resource(env, capacity=channels)
        self._head_position: Optional[int] = None
        self.stats = DeviceStats()
        # Fault injection: service-time multiplier (1.0 = healthy).  A
        # degraded OST is the classic storage straggler that server-side
        # monitoring exists to catch.
        self._degradation = 1.0
        # Fault injection: an OST taken out of service rejects new accesses
        # with StorageUnavailable until it recovers.  In-flight transfers
        # are allowed to finish (the outage models losing the target, not
        # corrupting what was already streaming).
        self._available = True

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a service channel."""
        return len(self._channels.queue)

    @property
    def degradation(self) -> float:
        """Current service-time multiplier (1.0 = healthy)."""
        return self._degradation

    def set_degradation(self, factor: float) -> None:
        """Inject a slowdown: every access takes ``factor``x its time.

        Models a failing/rebuilding drive or a throttled RAID array --
        the straggler scenario server-side statistics (Sec. IV-A-2) are
        collected to detect.  ``factor=1.0`` restores health.
        """
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1.0, got {factor}")
        self._degradation = float(factor)

    @property
    def available(self) -> bool:
        """Whether the device currently accepts accesses."""
        return self._available

    def fail(self) -> None:
        """Take the device out of service (injected outage)."""
        self._available = False

    def recover(self) -> None:
        """Bring the device back into service."""
        self._available = True

    def service_time(self, offset: int, nbytes: int) -> float:
        """Raw service time for an access, excluding queueing."""
        t = self.op_overhead + nbytes / self.bandwidth
        if self._head_position is None or offset != self._head_position:
            t += self.seek_time
        return t * self._degradation

    def plan_service_times(self, offsets, sizes):
        """Vectorized service times for a cohort of back-to-back accesses.

        Computes, without advancing the simulation, the per-access service
        time each access would take if the cohort ran sequentially on one
        channel starting from the current head position -- seek detection
        included (access ``i`` seeks unless it starts where access ``i-1``
        ended).  Float-for-float identical to calling
        :meth:`service_time` in a loop: elementwise float64 arithmetic in
        the same operation order.  Used by the cohort scale tier to plan
        per-OST completion cohorts without a per-access event cascade.
        """
        from repro.des.cohort import HAVE_NUMPY, np

        if not HAVE_NUMPY:
            times = []
            head = self._head_position
            for off, n in zip(offsets, sizes):
                t = self.op_overhead + n / self.bandwidth
                if head is None or off != head:
                    t += self.seek_time
                times.append(t * self._degradation)
                head = off + n
            return times
        offs = np.asarray(offsets, dtype=np.int64)
        ns = np.asarray(sizes, dtype=np.int64)
        if offs.shape != ns.shape or offs.ndim != 1:
            raise ValueError("offsets and sizes must be matching 1-D cohorts")
        if offs.size == 0:
            return np.zeros(0, dtype=np.float64)
        if bool((offs < 0).any()) or bool((ns < 0).any()):
            raise ValueError("offsets and sizes must be non-negative")
        base = self.op_overhead + ns / self.bandwidth
        seeked = np.empty(offs.shape, dtype=bool)
        seeked[0] = self._head_position is None or offs[0] != self._head_position
        seeked[1:] = offs[1:] != offs[:-1] + ns[:-1]
        return np.where(seeked, base + self.seek_time, base) * self._degradation

    def access(self, offset: int, nbytes: int, is_write: bool):
        """Simulated-process generator performing one access.

        Usage from a process: ``yield from device.access(off, n, True)``.
        Returns the service latency experienced (including queueing).
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        if not self._available:
            raise StorageUnavailable(f"device {self.name} is down")
        start = self.env.now
        with self._channels.request() as slot:
            yield slot
            if not self._available:
                # The outage started while this request sat in the queue.
                raise StorageUnavailable(f"device {self.name} is down")
            seeked = self._head_position is None or offset != self._head_position
            service = self.op_overhead + nbytes / self.bandwidth
            if seeked:
                service += self.seek_time
                self.stats.seeks += 1
            service *= self._degradation
            self._head_position = offset + nbytes
            self.stats.busy_time += service
            if is_write:
                self.stats.writes += 1
                self.stats.bytes_written += nbytes
            else:
                self.stats.reads += 1
                self.stats.bytes_read += nbytes
            yield self.env.timeout(service)
        return self.env.now - start

    def utilization(self) -> float:
        """Busy time as a fraction of elapsed virtual time."""
        if self.env.now <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / (self.env.now * self._channels.capacity))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} bw={self.bandwidth:.3g}B/s>"


class DiskDevice(BlockDevice):
    """A rotating disk: single head, milliseconds of seek.

    Defaults approximate a 7.2k-rpm nearline SAS drive as used in Lustre
    OSTs: ~150 MB/s sequential, ~8 ms average seek.
    """

    def __init__(
        self,
        env,
        name: str,
        bandwidth: float = 150e6,
        seek_time: float = 8e-3,
        op_overhead: float = 0.1e-3,
        capacity_bytes: float = 8e12,
    ):
        super().__init__(
            env,
            name,
            bandwidth=bandwidth,
            seek_time=seek_time,
            op_overhead=op_overhead,
            channels=1,
            capacity_bytes=capacity_bytes,
        )


class SSDDevice(BlockDevice):
    """A solid-state device: channel parallelism, negligible seek.

    Defaults approximate an NVMe burst-buffer drive: ~2 GB/s, 8 channels,
    ~20 us per-op overhead.
    """

    def __init__(
        self,
        env,
        name: str,
        bandwidth: float = 2e9,
        seek_time: float = 2e-5,
        op_overhead: float = 2e-5,
        channels: int = 8,
        capacity_bytes: float = 1.6e12,
    ):
        super().__init__(
            env,
            name,
            bandwidth=bandwidth,
            seek_time=seek_time,
            op_overhead=op_overhead,
            channels=channels,
            capacity_bytes=capacity_bytes,
        )
