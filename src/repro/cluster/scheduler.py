"""Batch scheduler (Slurm-like workload manager).

Paper Sec. IV-A-2 lists workload-manager logs among the collectable data;
Azevedo et al. [37] simulate an HTC system's scheduler to improve fairness.
This module provides the active side of that substrate: a node-allocating
batch scheduler with FCFS and EASY-backfill policies, writing a
:class:`~repro.monitoring.scheduler_log.SchedulerLog` as it runs -- so
queueing delay, utilisation and scheduling-policy questions can be studied
on the same simulated center the I/O experiments use.

Jobs carry either a fixed runtime or an arbitrary simulated-process body
(e.g. a workload run), so I/O-induced runtime variation feeds back into
the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional

from repro.des.engine import Environment
from repro.monitoring.scheduler_log import JobRecord, SchedulerLog


@dataclass
class _QueuedJob:
    record: JobRecord
    n_nodes: int
    runtime_estimate: float
    body: Optional[Callable[[], Generator]]
    done_event: object


class BatchScheduler:
    """A node-allocating batch scheduler.

    Parameters
    ----------
    env:
        Simulation environment.
    total_nodes:
        Node pool size.
    policy:
        ``"fcfs"`` (strict order) or ``"backfill"`` (EASY backfilling:
        later jobs may start out of order iff they cannot delay the
        reserved start of the queue head, judged by runtime estimates).
    log:
        Scheduler log to write (created if omitted).
    """

    def __init__(
        self,
        env: Environment,
        total_nodes: int,
        policy: str = "fcfs",
        log: Optional[SchedulerLog] = None,
    ):
        if total_nodes <= 0:
            raise ValueError("total_nodes must be positive")
        if policy not in ("fcfs", "backfill"):
            raise ValueError(f"unknown policy {policy!r}")
        self.env = env
        self.total_nodes = total_nodes
        self.policy = policy
        self.log = log or SchedulerLog()
        self.available = total_nodes
        self._queue: List[_QueuedJob] = []
        #: (n_nodes, estimated_end) of currently running jobs.
        self._running: List[List] = []
        self.jobs_completed = 0

    # -- submission --------------------------------------------------------------
    def submit(
        self,
        name: str,
        n_nodes: int,
        runtime_estimate: float,
        body: Optional[Callable[[], Generator]] = None,
        user: str = "user",
        n_ranks: Optional[int] = None,
    ):
        """Queue a job; returns an event that fires when the job completes.

        ``body`` is an optional zero-argument generator function executed
        as the job (its real duration may differ from the estimate, as in
        production); without one the job sleeps for its estimate.
        """
        if n_nodes > self.total_nodes:
            raise ValueError(
                f"job needs {n_nodes} nodes but the machine has {self.total_nodes}"
            )
        if runtime_estimate <= 0:
            raise ValueError("runtime_estimate must be positive")
        record = self.log.submit(
            name=name,
            user=user,
            n_nodes=n_nodes,
            n_ranks=n_ranks if n_ranks is not None else n_nodes,
            submit_time=self.env.now,
        )
        record.state = "PENDING"
        done = self.env.event()
        self._queue.append(
            _QueuedJob(
                record=record, n_nodes=n_nodes,
                runtime_estimate=runtime_estimate, body=body, done_event=done,
            )
        )
        self._try_schedule()
        return done

    # -- scheduling core -----------------------------------------------------------
    def _shadow_time(self, needed: int) -> float:
        """Earliest time ``needed`` nodes will be free (by estimates)."""
        free = self.available
        ends = sorted(self._running, key=lambda r: r[1])
        for n_nodes, est_end in ends:
            if free >= needed:
                break
            free += n_nodes
            if free >= needed:
                return est_end
        return self.env.now if free >= needed else float("inf")

    def _try_schedule(self) -> None:
        # Start in-order jobs while they fit.
        while self._queue and self._queue[0].n_nodes <= self.available:
            self._start(self._queue.pop(0))
        if self.policy != "backfill" or not self._queue:
            return
        # EASY backfill: the head gets a reservation at shadow_time; any
        # later job may start now if it fits AND (it finishes before the
        # reservation OR it only uses nodes the head will not need).
        head = self._queue[0]
        shadow = self._shadow_time(head.n_nodes)
        # Nodes that remain free even once the head starts at shadow time.
        extra = self.available - head.n_nodes
        i = 1
        while i < len(self._queue):
            job = self._queue[i]
            fits_now = job.n_nodes <= self.available
            ends_in_time = self.env.now + job.runtime_estimate <= shadow
            within_extra = extra >= 0 and job.n_nodes <= extra
            if fits_now and (ends_in_time or within_extra):
                self._start(self._queue.pop(i))
                if within_extra:
                    extra -= job.n_nodes
                continue
            i += 1

    def _start(self, job: _QueuedJob) -> None:
        self.available -= job.n_nodes
        self.log.start(job.record.job_id, self.env.now)
        entry = [job.n_nodes, self.env.now + job.runtime_estimate]
        self._running.append(entry)
        self.env.process(self._run(job, entry))

    def _run(self, job: _QueuedJob, entry) -> Generator:
        try:
            if job.body is not None:
                yield from job.body()
            else:
                yield self.env.timeout(job.runtime_estimate)
        finally:
            self.available += job.n_nodes
            self._running.remove(entry)
            self.log.complete(job.record.job_id, end_time=self.env.now)
            self.jobs_completed += 1
            job.done_event.succeed(job.record.job_id)
            self._try_schedule()

    # -- reporting ----------------------------------------------------------------
    def mean_wait(self) -> float:
        """Mean queueing delay of completed jobs."""
        waits = [
            j.wait_time for j in self.log.jobs() if j.state == "COMPLETED"
        ]
        if not waits:
            raise ValueError("no completed jobs")
        return sum(waits) / len(waits)

    def makespan(self) -> float:
        ends = [j.end_time for j in self.log.jobs() if j.end_time is not None]
        starts = [j.submit_time for j in self.log.jobs()]
        if not ends:
            raise ValueError("no completed jobs")
        return max(ends) - min(starts)
