"""Assembled platform presets (paper Fig. 1).

A :class:`Platform` wires together the simulation environment, the two
fabrics (fast compute fabric, slower storage fabric), compute nodes, I/O
nodes with burst buffers, and storage nodes.  The parallel file system
servers themselves are attached by :func:`repro.pfs.filesystem.build_pfs`.

The :data:`GENERATIONS` table records peak compute versus file-system
bandwidth for four real leadership-class systems; claim C1 uses it to
quantify the paper's motivating observation that the compute-to-storage
performance gap keeps widening.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.des.engine import Environment
from repro.des.rng import RandomStreams
from repro.cluster.burst_buffer import BurstBuffer
from repro.cluster.network import NetworkFabric
from repro.cluster.node import ComputeNode, IONode, NodeRole, StorageNode


@dataclass
class PlatformSpec:
    """Sizing knobs for a simulated platform.

    Bandwidths are bytes/second; latencies are seconds.
    """

    name: str = "cluster"
    n_compute: int = 8
    n_io: int = 1
    n_mds: int = 1
    n_oss: int = 2
    osts_per_oss: int = 2
    # Compute fabric (InfiniBand-like).
    ib_nic_bandwidth: float = 12.5e9  # 100 Gb/s
    ib_core_bandwidth: float = 100e9
    ib_base_latency: float = 1.5e-6
    # Storage fabric (10G-Ethernet-like, paper Sec. II).
    eth_nic_bandwidth: float = 1.25e9  # 10 Gb/s
    eth_core_bandwidth: float = 20e9
    eth_base_latency: float = 30e-6
    # Devices.
    ost_bandwidth: float = 150e6
    ost_seek_time: float = 8e-3
    bb_capacity: float = 1.6e12
    bb_bandwidth: float = 2e9
    # Server service overheads.
    mds_op_time: float = 50e-6
    oss_op_time: float = 20e-6
    #: Compute-fabric topology: None (uniform default hops), "fat_tree"
    #: (k chosen to fit the node count) or "dragonfly".
    ib_topology: Optional[str] = None
    seed: int = 1234

    def validate(self) -> None:
        if min(self.n_compute, self.n_mds, self.n_oss, self.osts_per_oss) < 1:
            raise ValueError("platform needs at least one of each server kind")
        if self.n_io < 0:
            raise ValueError("n_io must be non-negative")
        if self.ib_topology not in (None, "fat_tree", "dragonfly"):
            raise ValueError(f"unknown ib_topology {self.ib_topology!r}")


class Platform:
    """A fully-wired simulated HPC system.

    Construct via the preset helpers (:func:`tiny_cluster`,
    :func:`medium_cluster`, :func:`large_cluster`) or from a custom
    :class:`PlatformSpec`.
    """

    def __init__(self, spec: PlatformSpec, env: Optional[Environment] = None):
        spec.validate()
        self.spec = spec
        self.env = env or Environment()
        self.streams = RandomStreams(spec.seed)

        topology, topo_map = self._build_topology(spec)
        self.compute_fabric = NetworkFabric(
            self.env,
            "ib",
            nic_bandwidth=spec.ib_nic_bandwidth,
            core_bandwidth=spec.ib_core_bandwidth,
            base_latency=spec.ib_base_latency,
            topology=topology,
            topology_map=topo_map,
        )
        self.storage_fabric = NetworkFabric(
            self.env,
            "eth",
            nic_bandwidth=spec.eth_nic_bandwidth,
            core_bandwidth=spec.eth_core_bandwidth,
            base_latency=spec.eth_base_latency,
        )

        self.compute_nodes: List[ComputeNode] = []
        self.io_nodes: List[IONode] = []
        self.storage_nodes: List[StorageNode] = []
        self.burst_buffers: Dict[str, BurstBuffer] = {}

        for i in range(spec.n_compute):
            node = ComputeNode(name=f"c{i}", fabrics=["ib"])
            self.compute_nodes.append(node)
            self.compute_fabric.attach(node.name)

        for i in range(spec.n_io):
            node = IONode(name=f"io{i}", fabrics=["ib", "eth"])
            bb = BurstBuffer(
                self.env,
                f"bb{i}",
                capacity_bytes=spec.bb_capacity,
            )
            bb.device.bandwidth = spec.bb_bandwidth
            node.burst_buffer_name = bb.name
            self.io_nodes.append(node)
            self.burst_buffers[bb.name] = bb
            self.compute_fabric.attach(node.name)
            self.storage_fabric.attach(node.name)

        for i in range(spec.n_mds):
            node = StorageNode(name=f"mds{i}", service="mds", fabrics=["eth"])
            self.storage_nodes.append(node)
            self.storage_fabric.attach(node.name)
        for i in range(spec.n_oss):
            node = StorageNode(name=f"oss{i}", service="oss", fabrics=["eth"])
            self.storage_nodes.append(node)
            self.storage_fabric.attach(node.name)

        # Compute nodes also reach the storage fabric (via LNET-style
        # routing through I/O nodes in a real deployment; we attach them
        # directly and let the slower fabric's shared core model the
        # routing bottleneck).
        for node in self.compute_nodes:
            self.storage_fabric.attach(node.name)

    @staticmethod
    def _build_topology(spec: PlatformSpec):
        """Instantiate the requested compute-fabric topology, mapping the
        compute and I/O nodes onto its host slots."""
        if spec.ib_topology is None:
            return None, None
        import math

        from repro.cluster.topology import DragonflyTopology, FatTreeTopology

        needed = spec.n_compute + spec.n_io
        if spec.ib_topology == "fat_tree":
            k = 2
            while k**3 // 4 < needed:
                k += 2
            topo = FatTreeTopology(k)
        else:
            routers = 4
            hosts_per_router = 2
            groups = max(2, math.ceil(needed / (routers * hosts_per_router)))
            topo = DragonflyTopology(
                groups=groups, routers_per_group=routers,
                hosts_per_router=hosts_per_router,
            )
        names = [f"c{i}" for i in range(spec.n_compute)] + [
            f"io{i}" for i in range(spec.n_io)
        ]
        topo_map = {name: topo.endpoints[i] for i, name in enumerate(names)}
        return topo, topo_map

    # -- convenience accessors ---------------------------------------------
    @property
    def mds_nodes(self) -> List[StorageNode]:
        return [n for n in self.storage_nodes if n.service == "mds"]

    @property
    def oss_nodes(self) -> List[StorageNode]:
        return [n for n in self.storage_nodes if n.service == "oss"]

    def node_names(self, role: Optional[NodeRole] = None) -> List[str]:
        """Names of all nodes, optionally filtered by role."""
        out: List[str] = []
        for group in (self.compute_nodes, self.io_nodes, self.storage_nodes):
            for n in group:
                if role is None or n.role == role:
                    out.append(n.name)
        return out

    def describe(self) -> str:
        """One-line human-readable summary (used by the Fig. 1 renderer)."""
        s = self.spec
        return (
            f"{s.name}: {s.n_compute} compute + {s.n_io} I/O nodes | "
            f"IB {s.ib_nic_bandwidth/1e9:.1f} GB/s NIC | "
            f"{s.n_mds} MDS + {s.n_oss} OSS x {s.osts_per_oss} OST | "
            f"Eth {s.eth_nic_bandwidth/1e9:.2f} GB/s NIC"
        )


def platform_from_spec(
    spec: PlatformSpec,
    seed: Optional[int] = None,
    env: Optional[Environment] = None,
) -> Platform:
    """Spec-driven platform factory (the scenario layer's entry point).

    ``seed``, when given, overrides the spec's seed without mutating the
    caller's spec object (presets are shared constants).
    """
    if seed is not None and seed != spec.seed:
        from dataclasses import replace

        spec = replace(spec, seed=seed)
    return Platform(spec, env=env)


def tiny_spec(seed: int = 1234) -> PlatformSpec:
    """Spec of :func:`tiny_cluster` (4 compute, 1 BB, 1 MDS, 2 OSS x 2)."""
    return PlatformSpec(
        name="tiny", n_compute=4, n_io=1, n_mds=1, n_oss=2, osts_per_oss=2,
        seed=seed,
    )


def medium_spec(seed: int = 1234) -> PlatformSpec:
    """Spec of :func:`medium_cluster` (16 compute, 2 BB, 1 MDS, 4 OSS x 4)."""
    return PlatformSpec(
        name="medium", n_compute=16, n_io=2, n_mds=1, n_oss=4, osts_per_oss=4,
        seed=seed,
    )


def large_spec(seed: int = 1234) -> PlatformSpec:
    """Spec of :func:`large_cluster` (64 compute, 4 BB, 2 MDS, 8 OSS x 8)."""
    return PlatformSpec(
        name="large",
        n_compute=64,
        n_io=4,
        n_mds=2,
        n_oss=8,
        osts_per_oss=8,
        ib_core_bandwidth=400e9,
        eth_core_bandwidth=80e9,
        seed=seed,
    )


#: Named platform sizings, for scenario specs and the CLI.
PLATFORM_PRESETS = {
    "tiny": tiny_spec,
    "medium": medium_spec,
    "large": large_spec,
}


def tiny_cluster(seed: int = 1234) -> Platform:
    """4 compute nodes, 1 burst buffer, 1 MDS, 2 OSS x 2 OST.

    Small enough for unit tests and quick examples.
    """
    return platform_from_spec(tiny_spec(seed))


def medium_cluster(seed: int = 1234) -> Platform:
    """16 compute nodes, 2 burst buffers, 1 MDS, 4 OSS x 4 OST."""
    return platform_from_spec(medium_spec(seed))


def large_cluster(seed: int = 1234) -> Platform:
    """64 compute nodes, 4 burst buffers, 2 MDS, 8 OSS x 8 OST."""
    return platform_from_spec(large_spec(seed))


@dataclass(frozen=True)
class PlatformGeneration:
    """Peak compute vs. file-system bandwidth of a real leadership system.

    Public numbers for OLCF machines; used by claim C1 to quantify the
    widening compute-to-storage gap the paper's introduction motivates.
    """

    name: str
    year: int
    peak_flops: float
    fs_bandwidth: float  # bytes/second

    @property
    def bytes_per_flop(self) -> float:
        """Storage bandwidth available per FLOP/s of compute."""
        return self.fs_bandwidth / self.peak_flops


#: OLCF leadership systems, 2009-2022 (peak FLOPS, PFS aggregate bandwidth).
GENERATIONS: List[PlatformGeneration] = [
    PlatformGeneration("Jaguar", 2009, 1.75e15, 240e9),
    PlatformGeneration("Titan", 2012, 27e15, 1.0e12),
    PlatformGeneration("Summit", 2018, 200e15, 2.5e12),
    PlatformGeneration("Frontier", 2022, 1.6e18, 10e12),
]
