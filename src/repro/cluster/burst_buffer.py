"""Burst-buffer staging tier.

Paper Sec. II: "I/O nodes ... potentially integrate a tier of solid-state
devices to absorb the burst of random or high volume operations, so that
transfers to/from the staging area from/to the traditional parallel file
system can be done more efficiently."

A :class:`BurstBuffer` absorbs writes at SSD speed and drains them to a
backing target (normally the parallel file system) in the background.
Writers see SSD latency as long as the buffer has free capacity; once it
fills, backpressure throttles them to the drain rate -- exactly the
behaviour burst-buffer placement studies (Khetawat et al. [33], Liu et
al. [59]) examine, reproduced as claim C5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.des.engine import Environment
from repro.des.resources import Container, Store
from repro.cluster.devices import SSDDevice


@dataclass
class BurstBufferStats:
    """Cumulative burst-buffer counters."""

    bytes_absorbed: float = 0.0
    bytes_drained: float = 0.0
    bytes_read: float = 0.0
    peak_occupancy: float = 0.0
    stalls: int = 0  # writes that had to wait for free space


class BurstBuffer:
    """An SSD staging area with background drain.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Identifier.
    device:
        The SSD absorbing the writes.
    capacity_bytes:
        Staging capacity.
    drain_chunk:
        Granularity (bytes) of background drain transfers.
    drain_fn:
        Generator function ``fn(nbytes) -> yields events`` that moves bytes
        to the backing store.  Installed via :meth:`set_drain_target`;
        until one is installed, drained data accumulates in the queue.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        device: Optional[SSDDevice] = None,
        capacity_bytes: float = 1.6e12,
        drain_chunk: float = 64 * 1024 * 1024,
    ):
        if capacity_bytes <= 0 or drain_chunk <= 0:
            raise ValueError("capacity_bytes and drain_chunk must be positive")
        self.env = env
        self.name = name
        self.device = device or SSDDevice(env, f"{name}.ssd")
        self.capacity_bytes = float(capacity_bytes)
        self.drain_chunk = float(drain_chunk)
        self._free = Container(env, capacity=capacity_bytes, init=capacity_bytes)
        self._drain_queue = Store(env)
        self._outstanding = 0.0
        self._flush_waiters: list = []
        self._write_cursor = 0
        self.stats = BurstBufferStats()
        self._drain_fn: Optional[Callable[[float], Generator]] = None
        self._drain_proc = None

    # -- configuration -----------------------------------------------------
    def set_drain_target(self, drain_fn: Callable[[float], Generator]) -> None:
        """Install the backing-store writer and start the drain process."""
        self._drain_fn = drain_fn
        if self._drain_proc is None:
            self._drain_proc = self.env.process(self._drain_loop())

    # -- state ---------------------------------------------------------------
    @property
    def occupancy(self) -> float:
        """Bytes currently staged (written but not yet drained)."""
        return self.capacity_bytes - self._free.level

    @property
    def outstanding(self) -> float:
        """Bytes accepted but not yet durable on the backing store."""
        return self._outstanding

    # -- I/O -------------------------------------------------------------------
    def write(self, nbytes: float, offset: Optional[int] = None):
        """Absorb ``nbytes`` (generator; completes when staged on SSD)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        start = self.env.now
        if self._free.level < nbytes:
            self.stats.stalls += 1
        yield self._free.get(nbytes)
        if offset is None:
            offset = self._write_cursor
        self._write_cursor = offset + int(nbytes)
        yield from self.device.access(offset, int(nbytes), is_write=True)
        self.stats.bytes_absorbed += nbytes
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, self.occupancy)
        self._outstanding += nbytes
        # Enqueue for draining in chunks so one huge write does not serialise
        # the whole drain pipeline.
        remaining = nbytes
        while remaining > 0:
            chunk = min(self.drain_chunk, remaining)
            self._drain_queue.put(chunk)
            remaining -= chunk
        return self.env.now - start

    def read(self, offset: int, nbytes: float):
        """Read staged data back at SSD speed (generator)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes > 0:
            yield from self.device.access(int(offset), int(nbytes), is_write=False)
            self.stats.bytes_read += nbytes
        return nbytes

    def flush(self):
        """Generator that completes once all absorbed bytes are drained."""
        if self._outstanding <= 0:
            return
        ev = self.env.event()
        self._flush_waiters.append(ev)
        yield ev

    # -- internals ----------------------------------------------------------
    def _drain_loop(self):
        while True:
            chunk = yield self._drain_queue.get()
            if self._drain_fn is not None:
                yield from self._drain_fn(chunk)
            self.stats.bytes_drained += chunk
            self._outstanding -= chunk
            yield self._free.put(chunk)
            if self._outstanding <= 1e-9 and self._flush_waiters:
                waiters, self._flush_waiters = self._flush_waiters, []
                for ev in waiters:
                    ev.succeed()
