"""Big-data analytics (Spark-like scan/shuffle/reduce) workload.

Paper Sec. V-A: analytics frameworks "exhibit largely different kinds of
I/O patterns than the traditional simulation based workloads" [65] and
"perform poorly on HPC systems" [66].  The canonical three stages are
modelled:

1. **Scan**: each rank streams its partition of a large input file
   (large sequential reads -- the part HPC storage likes);
2. **Shuffle**: map outputs are spilled as per-(mapper, reducer) files and
   read back by reducers -- many small files, metadata-heavy, the part
   parallel file systems dislike (this is why Spark-on-Lustre papers exist);
3. **Reduce/output**: each rank writes its result partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.ops import IOOp, OpKind
from repro.workloads.base import Workload

MiB = 1024 * 1024


@dataclass
class AnalyticsConfig:
    """Analytics job parameters.

    Attributes
    ----------
    input_bytes:
        Total input dataset size (split evenly over ranks).
    shuffle_fraction:
        Fraction of the input that flows through the shuffle.
    output_fraction:
        Fraction of the input written as the final result.
    scan_transfer:
        Read size used during the scan.
    compute_per_mb:
        Seconds of computation per MiB scanned (the "query" cost).
    input_path / work_dir / output_path:
        File locations.
    """

    input_bytes: int = 256 * MiB
    shuffle_fraction: float = 0.5
    output_fraction: float = 0.1
    scan_transfer: int = 8 * MiB
    compute_per_mb: float = 0.002
    input_path: str = "/data/input.parquet"
    work_dir: str = "/data/shuffle"
    output_path: str = "/data/output.parquet"

    def validate(self) -> None:
        if self.input_bytes <= 0 or self.scan_transfer <= 0:
            raise ValueError("sizes must be positive")
        if not 0 <= self.shuffle_fraction <= 1:
            raise ValueError("shuffle_fraction must be in [0, 1]")
        if not 0 <= self.output_fraction <= 1:
            raise ValueError("output_fraction must be in [0, 1]")
        if self.compute_per_mb < 0:
            raise ValueError("compute_per_mb must be non-negative")


class AnalyticsWorkload(Workload):
    """A runnable analytics job.

    Includes a data-preparation op stream (:meth:`generation_ops`) that
    writes the input file, mirroring how such jobs consume data produced by
    ingest pipelines.
    """

    def __init__(self, config: AnalyticsConfig, n_ranks: int):
        config.validate()
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.config = config
        self.n_ranks = n_ranks
        self.name = "analytics"

    def partition_bytes(self) -> int:
        return self.config.input_bytes // self.n_ranks

    def shuffle_file(self, mapper: int, reducer: int) -> str:
        return f"{self.config.work_dir}/m{mapper:05d}_r{reducer:05d}.spill"

    @property
    def shuffle_files_total(self) -> int:
        return self.n_ranks * self.n_ranks

    def generation_ops(self, rank: int) -> Iterator[IOOp]:
        """Write the input dataset (rank 0 creates, all ranks fill)."""
        c = self.config
        part = self.partition_bytes()
        if rank == 0:
            yield IOOp(OpKind.MKDIR, "/data", rank=rank)
            yield IOOp(OpKind.CREATE, c.input_path, rank=rank, meta={"stripe_count": -1})
            yield IOOp(OpKind.MKDIR, c.work_dir, rank=rank)
        yield IOOp(OpKind.BARRIER, rank=rank)
        base = rank * part
        pos = 0
        while pos < part:
            take = min(8 * MiB, part - pos)
            yield IOOp(OpKind.WRITE, c.input_path, offset=base + pos, nbytes=take, rank=rank)
            pos += take
        yield IOOp(OpKind.CLOSE, c.input_path, rank=rank)
        yield IOOp(OpKind.BARRIER, rank=rank)

    def ops(self, rank: int) -> Iterator[IOOp]:
        c = self.config
        part = self.partition_bytes()
        base = rank * part

        # Stage 1: scan my partition sequentially.
        pos = 0
        while pos < part:
            take = min(c.scan_transfer, part - pos)
            yield IOOp(OpKind.READ, c.input_path, offset=base + pos, nbytes=take, rank=rank)
            if c.compute_per_mb:
                yield IOOp(
                    OpKind.COMPUTE, duration=c.compute_per_mb * take / MiB, rank=rank
                )
            pos += take
        yield IOOp(OpKind.CLOSE, c.input_path, rank=rank)
        yield IOOp(OpKind.BARRIER, rank=rank)

        # Stage 2a: spill map output, one file per reducer.
        spill_total = int(part * c.shuffle_fraction)
        per_reducer = max(1, spill_total // self.n_ranks)
        for reducer in range(self.n_ranks):
            path = self.shuffle_file(rank, reducer)
            yield IOOp(OpKind.CREATE, path, rank=rank)
            yield IOOp(OpKind.WRITE, path, offset=0, nbytes=per_reducer, rank=rank)
            yield IOOp(OpKind.CLOSE, path, rank=rank)
        yield IOOp(OpKind.BARRIER, rank=rank)

        # Stage 2b: as reducer, fetch my spill from every mapper.
        for mapper in range(self.n_ranks):
            path = self.shuffle_file(mapper, rank)
            yield IOOp(OpKind.STAT, path, rank=rank)
            yield IOOp(OpKind.READ, path, offset=0, nbytes=per_reducer, rank=rank)
            yield IOOp(OpKind.CLOSE, path, rank=rank)
        yield IOOp(OpKind.BARRIER, rank=rank)

        # Stage 3: write my output partition.
        out_bytes = max(1, int(part * c.output_fraction))
        if rank == 0:
            yield IOOp(OpKind.CREATE, c.output_path, rank=rank, meta={"stripe_count": -1})
        yield IOOp(OpKind.BARRIER, rank=rank)
        yield IOOp(
            OpKind.WRITE, c.output_path, offset=rank * out_bytes, nbytes=out_bytes, rank=rank
        )
        yield IOOp(OpKind.CLOSE, c.output_path, rank=rank)

        # Cleanup: remove my spill files (matching Spark's shuffle GC).
        for reducer in range(self.n_ranks):
            yield IOOp(OpKind.UNLINK, self.shuffle_file(rank, reducer), rank=rank)
        yield IOOp(OpKind.BARRIER, rank=rank)

    def describe(self) -> str:
        c = self.config
        return (
            f"analytics {self.n_ranks} ranks, {c.input_bytes / MiB:.0f} MiB input, "
            f"shuffle {c.shuffle_fraction:.0%} -> {self.shuffle_files_total} spill files"
        )
