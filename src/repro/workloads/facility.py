"""Observational-facility ingest workload.

Paper Sec. V-A: experimental facilities such as the National Center for
Electron Microscopy [67] and the Advanced Photon Source [68] "currently
generate hundreds of megabytes of data per second but are projected to
generate tens to hundreds of gigabytes of data per second".  Continuity of
storage matters: the detector does not stop when the file system stalls.

The workload models a detector producing fixed-size frames at a steady
rate, grouped into acquisition bursts; each rank handles one detector
stream and appends frames to per-burst files.  The interesting metric is
how far the writer falls behind real time (ingest lag) -- the burst-buffer
tier exists to keep that lag bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.ops import IOOp, OpKind
from repro.workloads.base import Workload

MiB = 1024 * 1024


@dataclass
class FacilityConfig:
    """Ingest parameters.

    Attributes
    ----------
    frame_bytes:
        Bytes per detector frame.
    frames_per_burst:
        Frames in one acquisition burst.
    bursts:
        Number of bursts.
    frame_interval:
        Seconds between frames (the detector's real-time cadence).
    burst_gap:
        Idle seconds between bursts (sample change, beam refill).
    data_dir:
        Destination directory.
    """

    frame_bytes: int = 4 * MiB
    frames_per_burst: int = 16
    bursts: int = 4
    frame_interval: float = 0.01
    burst_gap: float = 1.0
    data_dir: str = "/ingest"

    def validate(self) -> None:
        if self.frame_bytes <= 0 or self.frames_per_burst <= 0 or self.bursts <= 0:
            raise ValueError("frame/burst parameters must be positive")
        if self.frame_interval < 0 or self.burst_gap < 0:
            raise ValueError("intervals must be non-negative")

    @property
    def detector_rate(self) -> float:
        """Sustained bytes/second the detector produces during a burst."""
        if self.frame_interval == 0:
            return float("inf")
        return self.frame_bytes / self.frame_interval


class FacilityIngestWorkload(Workload):
    """A runnable ingest instance (one detector stream per rank)."""

    def __init__(self, config: FacilityConfig, n_ranks: int = 1):
        config.validate()
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.config = config
        self.n_ranks = n_ranks
        self.name = "facility-ingest"

    def burst_path(self, rank: int, burst: int) -> str:
        return f"{self.config.data_dir}/det{rank:03d}_burst{burst:05d}.h5"

    @property
    def total_bytes(self) -> int:
        c = self.config
        return c.frame_bytes * c.frames_per_burst * c.bursts * self.n_ranks

    @property
    def acquisition_seconds(self) -> float:
        """Wall time the detector takes to produce everything."""
        c = self.config
        burst_t = c.frames_per_burst * c.frame_interval
        return c.bursts * burst_t + (c.bursts - 1) * c.burst_gap

    def ops(self, rank: int) -> Iterator[IOOp]:
        c = self.config
        if rank == 0:
            yield IOOp(OpKind.MKDIR, c.data_dir, rank=rank, meta={"exist_ok": True})
        yield IOOp(OpKind.BARRIER, rank=rank)
        for burst in range(c.bursts):
            path = self.burst_path(rank, burst)
            yield IOOp(OpKind.CREATE, path, rank=rank)
            for frame in range(c.frames_per_burst):
                # The detector cadence: data arrives every frame_interval.
                if c.frame_interval:
                    yield IOOp(OpKind.COMPUTE, duration=c.frame_interval, rank=rank)
                yield IOOp(
                    OpKind.WRITE,
                    path,
                    offset=frame * c.frame_bytes,
                    nbytes=c.frame_bytes,
                    rank=rank,
                    meta={"burst": burst, "frame": frame},
                )
            yield IOOp(OpKind.CLOSE, path, rank=rank)
            if c.burst_gap and burst < c.bursts - 1:
                yield IOOp(OpKind.COMPUTE, duration=c.burst_gap, rank=rank)

    def ingest_lag(self, measured_duration: float) -> float:
        """Seconds the writer finished behind the detector's real time."""
        return max(0.0, measured_duration - self.acquisition_seconds)

    def describe(self) -> str:
        c = self.config
        return (
            f"facility ingest {self.n_ranks} streams, {c.bursts} bursts x "
            f"{c.frames_per_burst} frames x {c.frame_bytes / MiB:.0f} MiB "
            f"@ {c.detector_rate / 1e6:.0f} MB/s"
        )
