"""DLIO-like deep-learning training I/O workload.

Paper Sec. V-B: "the DL training phase gives rise to highly random small
file accesses.  The requirement of randomly shuffled input imposes
significant pressure to parallel file systems, which are typically designed
and optimized for large sequential I/O."  Devarajan et al.'s DLIO [80] is
the paper's exemplar data-centric DL benchmark; this workload reproduces
its core loop:

* a dataset of ``n_samples`` records of ``sample_bytes`` each, packed into
  ``n_shards`` shard files (TFRecord-style);
* each epoch, a seeded global shuffle assigns samples to ranks; each rank
  reads its mini-batch samples (random offsets in the shards), then spends
  ``compute_per_batch`` seconds in forward/backward;
* every ``checkpoint_epochs`` epochs, rank 0 writes the model checkpoint.

Claim C3 compares this read pattern against IOR sequential I/O of equal
volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.ops import IOOp, OpKind
from repro.workloads.base import Workload

MiB = 1024 * 1024
KiB = 1024


@dataclass
class DLIOConfig:
    """DL training I/O parameters.

    Attributes
    ----------
    n_samples:
        Total dataset records.
    sample_bytes:
        Bytes per record (e.g. a JPEG ~150 KiB in ImageNet-like sets).
    n_shards:
        Number of shard files holding the records.
    batch_size:
        Global batch size (records per step across all ranks).
    epochs:
        Training epochs.
    compute_per_batch:
        Seconds of computation per global batch.
    checkpoint_epochs:
        Checkpoint every k epochs (0 disables).
    model_bytes:
        Checkpoint size.
    shuffle:
        Reshuffle sample order every epoch (the pressure source).
    data_dir:
        Directory of shard files.
    seed:
        Shuffle seed.
    """

    n_samples: int = 1024
    sample_bytes: int = 128 * KiB
    n_shards: int = 8
    batch_size: int = 32
    epochs: int = 1
    compute_per_batch: float = 0.05
    checkpoint_epochs: int = 0
    model_bytes: int = 64 * MiB
    shuffle: bool = True
    data_dir: str = "/dlio"
    seed: int = 0

    def validate(self) -> None:
        if min(self.n_samples, self.sample_bytes, self.n_shards, self.batch_size) <= 0:
            raise ValueError("dataset parameters must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.compute_per_batch < 0:
            raise ValueError("compute_per_batch must be non-negative")
        if self.n_shards > self.n_samples:
            raise ValueError("cannot have more shards than samples")


class DLIOWorkload(Workload):
    """A runnable DL-training I/O instance."""

    def __init__(self, config: DLIOConfig, n_ranks: int):
        config.validate()
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        if config.batch_size % n_ranks:
            raise ValueError("batch_size must be divisible by n_ranks")
        self.config = config
        self.n_ranks = n_ranks
        self.name = "dlio"

    # -- dataset geometry ---------------------------------------------------------
    def samples_per_shard(self) -> int:
        c = self.config
        return (c.n_samples + c.n_shards - 1) // c.n_shards

    def shard_path(self, shard: int) -> str:
        return f"{self.config.data_dir}/shard{shard:05d}.rec"

    def sample_location(self, sample: int) -> Tuple[str, int]:
        """(shard path, byte offset) of one record."""
        c = self.config
        if not 0 <= sample < c.n_samples:
            raise ValueError(f"sample {sample} out of range")
        sps = self.samples_per_shard()
        shard = sample // sps
        return self.shard_path(shard), (sample % sps) * c.sample_bytes

    def epoch_order(self, epoch: int) -> np.ndarray:
        """The global sample order for one epoch."""
        c = self.config
        order = np.arange(c.n_samples)
        if c.shuffle:
            rng = np.random.default_rng(c.seed + epoch)
            order = rng.permutation(order)
        return order

    @property
    def bytes_read_per_epoch(self) -> int:
        c = self.config
        steps = c.n_samples // c.batch_size
        return steps * c.batch_size * c.sample_bytes

    # -- generation phase (run once, like DLIO's data-gen) -------------------------------
    def generation_ops(self, rank: int) -> Iterator[IOOp]:
        """Ops that create the dataset (round-robin shards over ranks)."""
        c = self.config
        if rank == 0:
            yield IOOp(OpKind.MKDIR, c.data_dir, rank=rank)
        yield IOOp(OpKind.BARRIER, rank=rank)
        sps = self.samples_per_shard()
        for shard in range(c.n_shards):
            if shard % self.n_ranks != rank:
                continue
            path = self.shard_path(shard)
            first = shard * sps
            n_here = max(0, min(sps, c.n_samples - first))
            yield IOOp(OpKind.CREATE, path, rank=rank)
            pos = 0
            shard_bytes = n_here * c.sample_bytes
            while pos < shard_bytes:
                take = min(8 * MiB, shard_bytes - pos)
                yield IOOp(OpKind.WRITE, path, offset=pos, nbytes=take, rank=rank)
                pos += take
            yield IOOp(OpKind.CLOSE, path, rank=rank)
        yield IOOp(OpKind.BARRIER, rank=rank)

    # -- training phase -----------------------------------------------------------------
    def ops(self, rank: int) -> Iterator[IOOp]:
        c = self.config
        steps = c.n_samples // c.batch_size
        per_rank = c.batch_size // self.n_ranks
        for epoch in range(c.epochs):
            order = self.epoch_order(epoch)
            for step in range(steps):
                batch = order[step * c.batch_size : (step + 1) * c.batch_size]
                mine = batch[rank * per_rank : (rank + 1) * per_rank]
                for sample in mine:
                    path, offset = self.sample_location(int(sample))
                    yield IOOp(
                        OpKind.READ, path, offset=offset, nbytes=c.sample_bytes,
                        rank=rank, meta={"epoch": epoch, "step": step},
                    )
                if c.compute_per_batch:
                    yield IOOp(OpKind.COMPUTE, duration=c.compute_per_batch, rank=rank)
                yield IOOp(OpKind.BARRIER, rank=rank)  # allreduce of gradients
            if c.checkpoint_epochs and (epoch + 1) % c.checkpoint_epochs == 0:
                if rank == 0:
                    ckpt = f"{c.data_dir}/model.ckpt.{epoch:04d}"
                    yield IOOp(OpKind.CREATE, ckpt, rank=rank)
                    pos = 0
                    while pos < c.model_bytes:
                        take = min(8 * MiB, c.model_bytes - pos)
                        yield IOOp(OpKind.WRITE, ckpt, offset=pos, nbytes=take, rank=rank)
                        pos += take
                    yield IOOp(OpKind.CLOSE, ckpt, rank=rank)
                yield IOOp(OpKind.BARRIER, rank=rank)

    def describe(self) -> str:
        c = self.config
        return (
            f"DLIO {self.n_ranks} ranks, {c.n_samples} samples x "
            f"{c.sample_bytes / KiB:.0f} KiB in {c.n_shards} shards, "
            f"batch {c.batch_size}, {c.epochs} epochs"
            f"{', shuffled' if c.shuffle else ''}"
        )
