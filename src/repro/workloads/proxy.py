"""Phase-structured proxy applications.

Paper Sec. IV-A-1: "*Proxy applications* are manually derived from
large-scale application codes and require in-depth understanding and/or
access to the source code" (Messer et al. [10]).  The manual derivation is
captured here as an explicit list of :class:`Phase` objects -- the
distilled compute/read/write rhythm of the parent application -- which is
exactly what miniapp authors encode by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.ops import IOOp, OpKind
from repro.workloads.base import Workload

MiB = 1024 * 1024


@dataclass
class Phase:
    """One compute/I-O phase of the proxy app.

    Attributes
    ----------
    compute_seconds:
        Computation time.
    read_bytes / write_bytes:
        Per-rank I/O volume in this phase.
    transfer_size:
        I/O call granularity.
    barrier_after:
        Whether the phase ends in a barrier (bulk-synchronous style).
    """

    compute_seconds: float = 0.0
    read_bytes: int = 0
    write_bytes: int = 0
    transfer_size: int = 4 * MiB
    barrier_after: bool = True

    def validate(self) -> None:
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")
        if self.read_bytes < 0 or self.write_bytes < 0:
            raise ValueError("I/O volumes must be non-negative")
        if self.transfer_size <= 0:
            raise ValueError("transfer_size must be positive")


class PhasedProxyApp(Workload):
    """A proxy application defined by its phase list.

    Each rank owns one input file (read phases) and one output file (write
    phases), mirroring the file-per-process miniapp convention.
    """

    def __init__(
        self,
        phases: List[Phase],
        n_ranks: int,
        name: str = "proxy",
        data_dir: str = "/proxy",
    ):
        if not phases:
            raise ValueError("need at least one phase")
        for p in phases:
            p.validate()
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.phases = phases
        self.n_ranks = n_ranks
        self.name = name
        self.data_dir = data_dir

    def input_path(self, rank: int) -> str:
        return f"{self.data_dir}/{self.name}.in.{rank:06d}"

    def output_path(self, rank: int) -> str:
        return f"{self.data_dir}/{self.name}.out.{rank:06d}"

    def total_read_bytes(self) -> int:
        return self.n_ranks * sum(p.read_bytes for p in self.phases)

    def total_write_bytes(self) -> int:
        return self.n_ranks * sum(p.write_bytes for p in self.phases)

    def generation_ops(self, rank: int) -> Iterator[IOOp]:
        """Create the input files the read phases will consume."""
        need = sum(p.read_bytes for p in self.phases)
        if rank == 0:
            yield IOOp(OpKind.MKDIR, self.data_dir, rank=rank, meta={"exist_ok": True})
        yield IOOp(OpKind.BARRIER, rank=rank)
        if need:
            path = self.input_path(rank)
            yield IOOp(OpKind.CREATE, path, rank=rank)
            pos = 0
            while pos < need:
                take = min(8 * MiB, need - pos)
                yield IOOp(OpKind.WRITE, path, offset=pos, nbytes=take, rank=rank)
                pos += take
            yield IOOp(OpKind.CLOSE, path, rank=rank)
        yield IOOp(OpKind.BARRIER, rank=rank)

    def ops(self, rank: int) -> Iterator[IOOp]:
        read_pos = 0
        write_pos = 0
        wrote_anything = any(p.write_bytes for p in self.phases)
        if wrote_anything:
            yield IOOp(OpKind.CREATE, self.output_path(rank), rank=rank)
        for phase in self.phases:
            if phase.compute_seconds:
                yield IOOp(OpKind.COMPUTE, duration=phase.compute_seconds, rank=rank)
            pos = 0
            while pos < phase.read_bytes:
                take = min(phase.transfer_size, phase.read_bytes - pos)
                yield IOOp(
                    OpKind.READ, self.input_path(rank),
                    offset=read_pos + pos, nbytes=take, rank=rank,
                )
                pos += take
            read_pos += phase.read_bytes
            pos = 0
            while pos < phase.write_bytes:
                take = min(phase.transfer_size, phase.write_bytes - pos)
                yield IOOp(
                    OpKind.WRITE, self.output_path(rank),
                    offset=write_pos + pos, nbytes=take, rank=rank,
                )
                pos += take
            write_pos += phase.write_bytes
            if phase.barrier_after:
                yield IOOp(OpKind.BARRIER, rank=rank)
        if wrote_anything:
            yield IOOp(OpKind.CLOSE, self.output_path(rank), rank=rank)
        if any(p.read_bytes for p in self.phases):
            yield IOOp(OpKind.CLOSE, self.input_path(rank), rank=rank)

    def describe(self) -> str:
        return (
            f"proxy {self.name}: {len(self.phases)} phases, "
            f"{self.total_read_bytes() / MiB:.0f} MiB read / "
            f"{self.total_write_bytes() / MiB:.0f} MiB written total"
        )
