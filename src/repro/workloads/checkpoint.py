"""HACC-IO-like checkpoint/restart workload.

The bursty, write-intensive pattern the paper calls the "traditional
well-structured HPC I/O pattern" (Sec. V-B): long compute phases punctuated
by synchronised full-state dumps.  Used as the traditional baseline against
the emerging workloads, and as the burst source for the burst-buffer
experiment (claim C5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.ops import IOOp, OpKind
from repro.workloads.base import Workload

MiB = 1024 * 1024


@dataclass
class CheckpointConfig:
    """Checkpoint/restart parameters.

    Attributes
    ----------
    bytes_per_rank:
        Checkpoint state each rank owns (HACC-IO's particle buffer).
    steps:
        Number of compute+checkpoint cycles.
    compute_seconds:
        Simulated computation between checkpoints.
    file_per_process:
        One file per rank per step vs. one shared file per step.
    transfer_size:
        Bytes per write call.
    restart:
        Read the final checkpoint back in (restart phase).
    fsync:
        Fsync each checkpoint file.
    path_prefix:
        Directory/name prefix for checkpoint files.
    stripe_count:
        Stripe count for shared checkpoint files.
    """

    bytes_per_rank: int = 16 * MiB
    steps: int = 3
    compute_seconds: float = 1.0
    file_per_process: bool = True
    transfer_size: int = 4 * MiB
    restart: bool = False
    fsync: bool = True
    path_prefix: str = "/ckpt"
    stripe_count: Optional[int] = -1

    def validate(self) -> None:
        if self.bytes_per_rank <= 0 or self.transfer_size <= 0:
            raise ValueError("sizes must be positive")
        if self.steps <= 0:
            raise ValueError("steps must be positive")
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")


class CheckpointWorkload(Workload):
    """A runnable checkpoint/restart instance."""

    def __init__(self, config: CheckpointConfig, n_ranks: int):
        config.validate()
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.config = config
        self.n_ranks = n_ranks
        self.name = "checkpoint"

    def step_path(self, step: int, rank: int) -> str:
        if self.config.file_per_process:
            return f"{self.config.path_prefix}.{step:04d}.{rank:06d}"
        return f"{self.config.path_prefix}.{step:04d}"

    @property
    def total_bytes(self) -> int:
        return self.config.bytes_per_rank * self.n_ranks * self.config.steps

    def _write_ops(self, path: str, rank: int, base_offset: int) -> Iterator[IOOp]:
        c = self.config
        pos = 0
        while pos < c.bytes_per_rank:
            take = min(c.transfer_size, c.bytes_per_rank - pos)
            yield IOOp(OpKind.WRITE, path, offset=base_offset + pos, nbytes=take, rank=rank)
            pos += take

    def ops(self, rank: int) -> Iterator[IOOp]:
        c = self.config
        for step in range(c.steps):
            if c.compute_seconds:
                yield IOOp(OpKind.COMPUTE, duration=c.compute_seconds, rank=rank)
            yield IOOp(OpKind.BARRIER, rank=rank)
            path = self.step_path(step, rank)
            if c.file_per_process:
                yield IOOp(OpKind.CREATE, path, rank=rank)
                base = 0
            else:
                if rank == 0:
                    yield IOOp(
                        OpKind.CREATE, path, rank=rank,
                        meta={"stripe_count": c.stripe_count},
                    )
                yield IOOp(OpKind.BARRIER, rank=rank)
                base = rank * c.bytes_per_rank
            yield from self._write_ops(path, rank, base)
            if c.fsync:
                yield IOOp(OpKind.FSYNC, path, rank=rank)
            yield IOOp(OpKind.CLOSE, path, rank=rank)
            yield IOOp(OpKind.BARRIER, rank=rank)
        if c.restart:
            last = c.steps - 1
            path = self.step_path(last, rank)
            base = 0 if c.file_per_process else rank * c.bytes_per_rank
            pos = 0
            while pos < c.bytes_per_rank:
                take = min(c.transfer_size, c.bytes_per_rank - pos)
                yield IOOp(OpKind.READ, path, offset=base + pos, nbytes=take, rank=rank)
                pos += take
            yield IOOp(OpKind.CLOSE, path, rank=rank)

    def describe(self) -> str:
        c = self.config
        return (
            f"checkpoint {self.n_ranks} ranks x {c.steps} steps x "
            f"{c.bytes_per_rank / MiB:.0f} MiB"
            f" ({'FPP' if c.file_per_process else 'shared'})"
        )
