"""Data-intensive scientific workflow workload (paper Sec. V-C).

"In sharp contrast to the traditional highly coherent, sequential,
large-transaction reads and writes, data-intensive workflows have been
shown to often utilize non-sequential, metadata-intensive, and
small-transaction reads and writes" [73].

A workflow is a DAG of :class:`WorkflowTask` nodes.  Tasks communicate
through files: each task stats and reads the files its predecessors wrote,
computes, and writes its own outputs.  Execution proceeds in topological
generations; within a generation, ready tasks are distributed round-robin
over the ranks (a simple workflow-manager model), with a barrier between
generations.  The file-per-edge communication is exactly what makes these
workloads metadata-intensive (claim C4).

:func:`montage_like_workflow` builds a DAG shaped like the Montage mosaic
pipeline, the standard exemplar in the workflow characterisation
literature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import networkx as nx

from repro.ops import IOOp, OpKind
from repro.workloads.base import Workload

MiB = 1024 * 1024
KiB = 1024


@dataclass
class WorkflowTask:
    """One node of the workflow DAG.

    Attributes
    ----------
    name:
        Unique task name.
    inputs:
        Files read: list of (path, nbytes).  Paths produced by predecessor
        tasks must match their outputs.
    outputs:
        Files written: list of (path, nbytes).
    compute_seconds:
        Computation between reading inputs and writing outputs.
    """

    name: str
    inputs: List[Tuple[str, int]] = field(default_factory=list)
    outputs: List[Tuple[str, int]] = field(default_factory=list)
    compute_seconds: float = 0.1


class WorkflowWorkload(Workload):
    """A runnable workflow instance.

    Parameters
    ----------
    tasks:
        The task set.
    edges:
        Dependency pairs ``(upstream_name, downstream_name)``.
    n_ranks:
        Worker ranks available to the workflow manager.
    work_dir:
        Directory holding intermediate files (created by rank 0).
    """

    def __init__(
        self,
        tasks: List[WorkflowTask],
        edges: List[Tuple[str, str]],
        n_ranks: int,
        work_dir: str = "/wf",
        name: str = "workflow",
    ):
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        if not tasks:
            raise ValueError("workflow needs at least one task")
        self.n_ranks = n_ranks
        self.work_dir = work_dir
        self.name = name
        self.tasks: Dict[str, WorkflowTask] = {}
        for t in tasks:
            if t.name in self.tasks:
                raise ValueError(f"duplicate task name {t.name!r}")
            self.tasks[t.name] = t
        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(self.tasks)
        for a, b in edges:
            if a not in self.tasks or b not in self.tasks:
                raise ValueError(f"edge references unknown task: {(a, b)}")
            self.graph.add_edge(a, b)
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValueError("workflow graph has a cycle")
        #: Topological generations: lists of task names runnable in parallel.
        self.generations: List[List[str]] = [
            sorted(gen) for gen in nx.topological_generations(self.graph)
        ]

    # -- structure metrics ---------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def critical_path_length(self) -> int:
        return len(self.generations)

    def total_intermediate_bytes(self) -> int:
        return sum(n for t in self.tasks.values() for _, n in t.outputs)

    def metadata_op_estimate(self) -> int:
        """Expected metadata ops (create/open/stat/close per file touched)."""
        n = 0
        for t in self.tasks.values():
            n += 2 * len(t.inputs)  # stat + close (open folded into read)
            n += 2 * len(t.outputs)  # create + close
        return n

    # -- execution -----------------------------------------------------------
    def assignment(self) -> Dict[str, int]:
        """Task -> rank mapping (round-robin within each generation)."""
        out: Dict[str, int] = {}
        for gen in self.generations:
            for i, tname in enumerate(gen):
                out[tname] = i % self.n_ranks
        return out

    def ops(self, rank: int) -> Iterator[IOOp]:
        assign = self.assignment()
        if rank == 0:
            yield IOOp(OpKind.MKDIR, self.work_dir, rank=rank, meta={"exist_ok": True})
        yield IOOp(OpKind.BARRIER, rank=rank)
        for gen in self.generations:
            for tname in gen:
                if assign[tname] != rank:
                    continue
                task = self.tasks[tname]
                for path, nbytes in task.inputs:
                    yield IOOp(OpKind.STAT, path, rank=rank)
                    yield IOOp(OpKind.READ, path, offset=0, nbytes=nbytes, rank=rank)
                    yield IOOp(OpKind.CLOSE, path, rank=rank)
                if task.compute_seconds:
                    yield IOOp(OpKind.COMPUTE, duration=task.compute_seconds, rank=rank)
                for path, nbytes in task.outputs:
                    yield IOOp(OpKind.CREATE, path, rank=rank)
                    yield IOOp(OpKind.WRITE, path, offset=0, nbytes=nbytes, rank=rank)
                    yield IOOp(OpKind.CLOSE, path, rank=rank)
            yield IOOp(OpKind.BARRIER, rank=rank)

    def describe(self) -> str:
        return (
            f"workflow {self.name}: {self.n_tasks} tasks in "
            f"{self.critical_path_length} generations on {self.n_ranks} ranks"
        )


def montage_like_workflow(
    n_inputs: int = 8,
    n_ranks: int = 4,
    input_bytes: int = 4 * MiB,
    work_dir: str = "/wf",
) -> WorkflowWorkload:
    """A Montage-mosaic-shaped DAG.

    Structure (as in the Montage characterisation literature):
    ``mProject`` per input image -> pairwise ``mDiffFit`` -> ``mConcatFit``
    -> ``mBgModel`` -> per-image ``mBackground`` -> ``mAdd`` mosaic.
    """
    if n_inputs < 2:
        raise ValueError("montage workflow needs at least 2 inputs")
    tasks: List[WorkflowTask] = []
    edges: List[Tuple[str, str]] = []

    proj_out = {}
    for i in range(n_inputs):
        name = f"mProject{i}"
        out = (f"{work_dir}/proj_{i}.fits", input_bytes)
        proj_out[i] = out
        tasks.append(
            WorkflowTask(
                name,
                inputs=[(f"{work_dir}/raw_{i}.fits", input_bytes)],
                outputs=[out],
                compute_seconds=0.2,
            )
        )

    fit_files = []
    for i in range(n_inputs - 1):
        name = f"mDiffFit{i}"
        fit = (f"{work_dir}/fit_{i}.tbl", 16 * KiB)
        fit_files.append(fit)
        tasks.append(
            WorkflowTask(
                name,
                inputs=[proj_out[i], proj_out[i + 1]],
                outputs=[fit],
                compute_seconds=0.05,
            )
        )
        edges.append((f"mProject{i}", name))
        edges.append((f"mProject{i + 1}", name))

    concat_out = (f"{work_dir}/fits.tbl", 64 * KiB)
    tasks.append(
        WorkflowTask(
            "mConcatFit", inputs=list(fit_files), outputs=[concat_out],
            compute_seconds=0.05,
        )
    )
    edges.extend((f"mDiffFit{i}", "mConcatFit") for i in range(n_inputs - 1))

    corr_out = (f"{work_dir}/corrections.tbl", 16 * KiB)
    tasks.append(
        WorkflowTask(
            "mBgModel", inputs=[concat_out], outputs=[corr_out],
            compute_seconds=0.1,
        )
    )
    edges.append(("mConcatFit", "mBgModel"))

    bg_out = {}
    for i in range(n_inputs):
        name = f"mBackground{i}"
        out = (f"{work_dir}/bg_{i}.fits", input_bytes)
        bg_out[i] = out
        tasks.append(
            WorkflowTask(
                name, inputs=[proj_out[i], corr_out], outputs=[out],
                compute_seconds=0.1,
            )
        )
        edges.append(("mBgModel", name))
        edges.append((f"mProject{i}", name))

    tasks.append(
        WorkflowTask(
            "mAdd",
            inputs=list(bg_out.values()),
            outputs=[(f"{work_dir}/mosaic.fits", input_bytes * n_inputs)],
            compute_seconds=0.3,
        )
    )
    edges.extend((f"mBackground{i}", "mAdd") for i in range(n_inputs))

    wf = WorkflowWorkload(tasks, edges, n_ranks, work_dir=work_dir, name="montage")
    return wf


def workflow_bootstrap_ops(wf: WorkflowWorkload, input_bytes: int, n_inputs: int):
    """Op stream (rank 0) that creates the raw input files a Montage-like
    workflow expects."""
    yield IOOp(OpKind.MKDIR, wf.work_dir, rank=0, meta={"exist_ok": True})
    for i in range(n_inputs):
        path = f"{wf.work_dir}/raw_{i}.fits"
        yield IOOp(OpKind.CREATE, path, rank=0)
        yield IOOp(OpKind.WRITE, path, offset=0, nbytes=input_bytes, rank=0)
        yield IOOp(OpKind.CLOSE, path, rank=0)
