"""IOR-like synthetic benchmark.

IOR [76] is the benchmark the paper notes "the majority of the examined
research still relies on".  This implementation reproduces its parameter
space: block size ``b``, transfer size ``t``, segment count ``s``,
file-per-process vs. shared file, sequential vs. random offsets within the
block, write and/or read phases, POSIX vs. MPI-IO API with optional
collective I/O.

Shared-file data layout (as in IOR): segment ``k`` occupies bytes
``[k * N * b, (k+1) * N * b)`` and rank ``r``'s block within it starts at
``k * N * b + r * b``; each block is written in ``b / t`` transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from repro.mpi.runtime import RankContext
from repro.ops import IOOp, OpKind
from repro.workloads.base import Workload

MiB = 1024 * 1024


@dataclass
class IORConfig:
    """IOR parameters (names follow the original's flags).

    Attributes
    ----------
    block_size:
        Bytes each rank writes per segment (``-b``).
    transfer_size:
        Bytes per I/O call (``-t``); must divide ``block_size``.
    segments:
        Segment count (``-s``).
    file_per_process:
        ``-F``: each rank uses its own file instead of one shared file.
    api:
        ``"posix"`` or ``"mpiio"``.
    collective:
        Use collective MPI-IO calls (``-c``); requires ``api="mpiio"``.
    write:
        Perform the write phase (``-w``).
    read:
        Perform the read phase (``-r``).
    random_offsets:
        ``-z``: permute transfer order within each block.
    fsync:
        Fsync after the write phase (``-e``).
    intra_test_barriers:
        Barrier between phases (``-g``).
    stripe_count:
        Stripe count for created files (-1 = all OSTs).
    seed:
        Seed for the random-offset permutation.
    """

    block_size: int = 4 * MiB
    transfer_size: int = 1 * MiB
    segments: int = 1
    file_per_process: bool = False
    api: str = "posix"
    collective: bool = False
    write: bool = True
    read: bool = False
    random_offsets: bool = False
    fsync: bool = False
    intra_test_barriers: bool = True
    stripe_count: Optional[int] = -1
    seed: int = 0
    test_file: str = "/ior.data"

    def validate(self) -> None:
        if self.block_size <= 0 or self.transfer_size <= 0:
            raise ValueError("block_size and transfer_size must be positive")
        if self.block_size % self.transfer_size:
            raise ValueError("transfer_size must divide block_size")
        if self.segments <= 0:
            raise ValueError("segments must be positive")
        if self.api not in ("posix", "mpiio"):
            raise ValueError(f"unknown api {self.api!r}")
        if self.collective and self.api != "mpiio":
            raise ValueError("collective I/O requires api='mpiio'")
        if not (self.write or self.read):
            raise ValueError("enable at least one of write/read")


class IORWorkload(Workload):
    """A runnable IOR instance.

    Parameters
    ----------
    config:
        The benchmark parameters.
    n_ranks:
        Number of ranks.
    """

    def __init__(self, config: IORConfig, n_ranks: int):
        config.validate()
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.config = config
        self.n_ranks = n_ranks
        self.name = f"ior[{'fpp' if config.file_per_process else 'shared'}]"

    # -- geometry ------------------------------------------------------------
    def path_for(self, rank: int) -> str:
        if self.config.file_per_process:
            return f"{self.config.test_file}.{rank:08d}"
        return self.config.test_file

    def transfers_per_block(self) -> int:
        return self.config.block_size // self.config.transfer_size

    def offsets(self, rank: int) -> List[int]:
        """All file offsets rank ``rank`` touches, in issue order."""
        c = self.config
        tpb = self.transfers_per_block()
        out: List[int] = []
        for seg in range(c.segments):
            if c.file_per_process:
                base = seg * c.block_size
            else:
                base = seg * self.n_ranks * c.block_size + rank * c.block_size
            order = np.arange(tpb)
            if c.random_offsets:
                rng = np.random.default_rng(c.seed + rank * 7919 + seg)
                order = rng.permutation(tpb)
            out.extend(int(base + i * c.transfer_size) for i in order)
        return out

    @property
    def bytes_per_rank(self) -> int:
        return self.config.block_size * self.config.segments

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_rank * self.n_ranks

    # -- op stream (posix api only) ------------------------------------------------
    def ops(self, rank: int) -> Iterator[IOOp]:
        c = self.config
        if c.api != "posix":
            raise NotImplementedError("op stream only models the posix api")
        path = self.path_for(rank)
        if c.file_per_process or rank == 0:
            yield IOOp(OpKind.CREATE, path, rank=rank, meta={"stripe_count": c.stripe_count})
        yield IOOp(OpKind.BARRIER, rank=rank)
        if c.write:
            for off in self.offsets(rank):
                yield IOOp(OpKind.WRITE, path, offset=off, nbytes=c.transfer_size, rank=rank)
            if c.fsync:
                yield IOOp(OpKind.FSYNC, path, rank=rank)
        if c.intra_test_barriers:
            yield IOOp(OpKind.BARRIER, rank=rank)
        if c.read:
            for off in self.offsets(rank):
                yield IOOp(OpKind.READ, path, offset=off, nbytes=c.transfer_size, rank=rank)
        yield IOOp(OpKind.CLOSE, path, rank=rank)

    # -- execution-driven program (supports both apis) ---------------------------------
    def program(self, ctx: RankContext):
        c = self.config
        if c.api == "posix":
            yield from super().program(ctx)
            return
        mpiio = ctx.io.mpiio
        path = self.path_for(ctx.rank)
        handle = yield from mpiio.open_all(
            path, create=True, stripe_count=c.stripe_count
        )
        offsets = self.offsets(ctx.rank)
        if c.write:
            if c.collective:
                tpb = self.transfers_per_block()
                for seg in range(c.segments):
                    batch = offsets[seg * tpb : (seg + 1) * tpb]
                    yield from mpiio.write_at_all(
                        handle, [(off, c.transfer_size) for off in batch]
                    )
            else:
                for off in offsets:
                    yield from mpiio.write_at(handle, off, c.transfer_size)
        if c.intra_test_barriers:
            yield from ctx.barrier()
        if c.read:
            if c.collective:
                tpb = self.transfers_per_block()
                for seg in range(c.segments):
                    batch = offsets[seg * tpb : (seg + 1) * tpb]
                    yield from mpiio.read_at_all(
                        handle, [(off, c.transfer_size) for off in batch]
                    )
            else:
                for off in offsets:
                    yield from mpiio.read_at(handle, off, c.transfer_size)
        yield from mpiio.close_all(handle)

    def describe(self) -> str:
        c = self.config
        return (
            f"IOR {self.n_ranks} ranks, b={c.block_size}, t={c.transfer_size}, "
            f"s={c.segments}, {'FPP' if c.file_per_process else 'shared'}, "
            f"api={c.api}{' collective' if c.collective else ''}"
        )
