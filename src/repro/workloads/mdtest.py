"""mdtest-like metadata benchmark.

Paper Sec. IV-A-1: "Benchmarks stressing the metadata services such as
*mdtest* provide a measure to quantify file and directory based
operations."  Each rank works in its own subdirectory and runs the classic
phases -- create, stat, (optional tiny write/read), unlink -- separated by
barriers; the figure of merit is operations per second per phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.ops import IOOp, OpKind
from repro.workloads.base import Workload


@dataclass
class MdtestConfig:
    """mdtest parameters.

    Attributes
    ----------
    files_per_rank:
        Number of files each rank creates (``-n``).
    write_bytes:
        Bytes written to each file after creation (``-w``), 0 to skip.
    read_bytes:
        Bytes read from each file in the stat phase (``-e``), 0 to skip.
    do_stat / do_unlink:
        Enable the respective phases.
    dir_prefix:
        Root directory of the benchmark tree.
    """

    files_per_rank: int = 64
    write_bytes: int = 0
    read_bytes: int = 0
    do_stat: bool = True
    do_unlink: bool = True
    dir_prefix: str = "/mdtest"

    def validate(self) -> None:
        if self.files_per_rank <= 0:
            raise ValueError("files_per_rank must be positive")
        if self.write_bytes < 0 or self.read_bytes < 0:
            raise ValueError("write_bytes/read_bytes must be non-negative")
        if self.read_bytes > 0 and self.write_bytes < self.read_bytes:
            raise ValueError("cannot read more than was written")


class MdtestWorkload(Workload):
    """A runnable mdtest instance."""

    def __init__(self, config: MdtestConfig, n_ranks: int):
        config.validate()
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.config = config
        self.n_ranks = n_ranks
        self.name = "mdtest"

    def rank_dir(self, rank: int) -> str:
        return f"{self.config.dir_prefix}/rank{rank:06d}"

    def file_path(self, rank: int, i: int) -> str:
        return f"{self.rank_dir(rank)}/f{i:08d}"

    @property
    def total_creates(self) -> int:
        return self.config.files_per_rank * self.n_ranks

    def ops(self, rank: int) -> Iterator[IOOp]:
        c = self.config
        # Setup: rank 0 makes the root; every rank makes its own directory.
        if rank == 0:
            # The shared test root may already exist (repeat runs, several
            # mdtest jobs on one system), as with the real tool's -d dir.
            yield IOOp(OpKind.MKDIR, c.dir_prefix, rank=rank, meta={"exist_ok": True})
        yield IOOp(OpKind.BARRIER, rank=rank)
        yield IOOp(OpKind.MKDIR, self.rank_dir(rank), rank=rank)
        yield IOOp(OpKind.BARRIER, rank=rank)
        # Create phase.
        for i in range(c.files_per_rank):
            path = self.file_path(rank, i)
            yield IOOp(OpKind.CREATE, path, rank=rank)
            if c.write_bytes:
                yield IOOp(OpKind.WRITE, path, offset=0, nbytes=c.write_bytes, rank=rank)
            yield IOOp(OpKind.CLOSE, path, rank=rank)
        yield IOOp(OpKind.BARRIER, rank=rank)
        # Stat phase.
        if c.do_stat:
            for i in range(c.files_per_rank):
                path = self.file_path(rank, i)
                yield IOOp(OpKind.STAT, path, rank=rank)
                if c.read_bytes:
                    yield IOOp(OpKind.READ, path, offset=0, nbytes=c.read_bytes, rank=rank)
                    yield IOOp(OpKind.CLOSE, path, rank=rank)
            yield IOOp(OpKind.BARRIER, rank=rank)
        # Unlink phase.
        if c.do_unlink:
            for i in range(c.files_per_rank):
                yield IOOp(OpKind.UNLINK, self.file_path(rank, i), rank=rank)
            yield IOOp(OpKind.BARRIER, rank=rank)
            yield IOOp(OpKind.RMDIR, self.rank_dir(rank), rank=rank)

    def describe(self) -> str:
        return (
            f"mdtest {self.n_ranks} ranks x {self.config.files_per_rank} files"
            f" (stat={self.config.do_stat}, unlink={self.config.do_unlink})"
        )
