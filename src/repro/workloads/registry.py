"""Named workload presets.

Small, second-scale configurations of every workload in the zoo, usable
from the CLI (``repro-io run-workload dlio``) and from quick scripts.
Each preset returns ``(setup_workloads, main_workload)``: the setup list
creates whatever data the main workload consumes (datasets, raw inputs).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.workloads.analytics import AnalyticsConfig, AnalyticsWorkload
from repro.workloads.base import OpStreamWorkload, Workload
from repro.workloads.checkpoint import CheckpointConfig, CheckpointWorkload
from repro.workloads.dlio import DLIOConfig, DLIOWorkload
from repro.workloads.facility import FacilityConfig, FacilityIngestWorkload
from repro.workloads.h5bench import H5BenchConfig, H5BenchWorkload
from repro.workloads.ior import IORConfig, IORWorkload
from repro.workloads.mdtest import MdtestConfig, MdtestWorkload
from repro.workloads.npb import BTIOConfig, BTIOWorkload
from repro.workloads.proxy import Phase, PhasedProxyApp
from repro.workloads.skeleton import AppModel, IOSkeleton, OutputGroup, VariableSpec
from repro.workloads.workflow import montage_like_workflow, workflow_bootstrap_ops

MiB = 1024 * 1024
KiB = 1024

Preset = Callable[[int], Tuple[List[Workload], Workload]]


def _ior(n_ranks: int):
    return [], IORWorkload(
        IORConfig(block_size=8 * MiB, transfer_size=MiB, read=True,
                  stripe_count=-1),
        n_ranks,
    )


def _mdtest(n_ranks: int):
    return [], MdtestWorkload(MdtestConfig(files_per_rank=32), n_ranks)


def _checkpoint(n_ranks: int):
    return [], CheckpointWorkload(
        CheckpointConfig(bytes_per_rank=16 * MiB, steps=3, compute_seconds=0.5,
                         fsync=False),
        n_ranks,
    )


def _btio(n_ranks: int):
    return [], BTIOWorkload(
        BTIOConfig(grid=32, dumps=2, compute_seconds=0.2), n_ranks
    )


def _h5bench(n_ranks: int):
    dims = (256 * n_ranks, 64)
    return [], H5BenchWorkload(
        H5BenchConfig(dims=dims, steps=2, mode="write+read",
                      compute_seconds=0.1),
        n_ranks,
    )


def _dlio(n_ranks: int):
    w = DLIOWorkload(
        DLIOConfig(n_samples=64 * n_ranks, sample_bytes=128 * KiB,
                   n_shards=n_ranks, batch_size=4 * n_ranks, epochs=2,
                   compute_per_batch=0.01),
        n_ranks,
    )
    gen = OpStreamWorkload(
        "dlio-gen", [list(w.generation_ops(r)) for r in range(n_ranks)]
    )
    return [gen], w


def _analytics(n_ranks: int):
    w = AnalyticsWorkload(
        AnalyticsConfig(input_bytes=32 * MiB * n_ranks, compute_per_mb=0.001),
        n_ranks,
    )
    gen = OpStreamWorkload(
        "analytics-gen", [list(w.generation_ops(r)) for r in range(n_ranks)]
    )
    return [gen], w


def _workflow(n_ranks: int):
    wf = montage_like_workflow(
        n_inputs=max(4, 2 * n_ranks), n_ranks=n_ranks, input_bytes=2 * MiB
    )
    boot = OpStreamWorkload(
        "wf-boot",
        [list(workflow_bootstrap_ops(wf, 2 * MiB, max(4, 2 * n_ranks)))],
    )
    return [boot], wf


def _facility(n_ranks: int):
    return [], FacilityIngestWorkload(
        FacilityConfig(frame_bytes=4 * MiB, frames_per_burst=8, bursts=3,
                       frame_interval=0.01, burst_gap=0.5),
        n_ranks,
    )


def _skeleton(n_ranks: int):
    model = AppModel(
        name="demo-app",
        steps=4,
        compute_per_step=0.25,
        groups=[
            OutputGroup("restart", [VariableSpec("state", 4 * MiB)], every_steps=2),
            OutputGroup("diag", [VariableSpec("series", 256 * KiB)], every_steps=1),
        ],
    )
    return [], IOSkeleton(model, n_ranks)


def _proxy(n_ranks: int):
    app = PhasedProxyApp(
        [
            Phase(0.2, read_bytes=4 * MiB),
            Phase(0.5, write_bytes=8 * MiB),
            Phase(0.2, write_bytes=2 * MiB),
        ],
        n_ranks,
    )
    gen = OpStreamWorkload(
        "proxy-gen", [list(app.generation_ops(r)) for r in range(n_ranks)]
    )
    return [gen], app


#: All CLI-visible presets.
PRESETS: Dict[str, Preset] = {
    "ior": _ior,
    "mdtest": _mdtest,
    "checkpoint": _checkpoint,
    "btio": _btio,
    "h5bench": _h5bench,
    "dlio": _dlio,
    "analytics": _analytics,
    "workflow": _workflow,
    "facility": _facility,
    "skeleton": _skeleton,
    "proxy": _proxy,
}


def make_preset(name: str, n_ranks: int = 4) -> Tuple[List[Workload], Workload]:
    """Instantiate a preset; raises ``KeyError`` with the known names."""
    factory = PRESETS.get(name)
    if factory is None:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(PRESETS))}"
        )
    return factory(n_ranks)
