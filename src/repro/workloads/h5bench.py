"""h5bench-like HDF5 I/O kernel workload.

The paper's key-findings section calls for "new open-source benchmarks"
for the high-level interfaces tools actually see (HDF5 is the top of its
Fig. 2 stack).  This workload mirrors the h5bench read/write kernels: an
n-dimensional dataset written/read collectively or independently through
the HDF5-like layer, in contiguous or chunked layout, one time step per
iteration -- which exercises dataset allocation, hyperslab extent
computation, chunk amplification, and the MPI-IO layer underneath.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.mpi.runtime import RankContext
from repro.workloads.base import Workload

MiB = 1024 * 1024


@dataclass
class H5BenchConfig:
    """h5bench-style parameters.

    Attributes
    ----------
    dims:
        Global dataset shape per time step (first dim is decomposed over
        ranks, as h5bench does).
    itemsize:
        Bytes per element.
    steps:
        Time steps; each writes (mode="write") or reads (mode="read") one
        dataset named ``step_<k>``.
    mode:
        "write", "read", or "write+read".
    collective:
        Collective vs independent transfers.
    chunks:
        Optional chunk shape (chunked layout).
    compute_seconds:
        Emulated computation between steps.
    path:
        The HDF5 file.
    """

    dims: Tuple[int, ...] = (1024, 64)
    itemsize: int = 8
    steps: int = 3
    mode: str = "write"
    collective: bool = True
    chunks: Optional[Tuple[int, ...]] = None
    compute_seconds: float = 0.1
    path: str = "/h5bench.h5"
    stripe_count: int = -1

    def validate(self) -> None:
        if not self.dims or any(d <= 0 for d in self.dims):
            raise ValueError(f"invalid dims {self.dims}")
        if self.itemsize <= 0 or self.steps <= 0:
            raise ValueError("itemsize and steps must be positive")
        if self.mode not in ("write", "read", "write+read"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")


class H5BenchWorkload(Workload):
    """A runnable h5bench-like kernel."""

    def __init__(self, config: H5BenchConfig, n_ranks: int):
        config.validate()
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        if config.dims[0] % n_ranks:
            raise ValueError(
                f"first dimension {config.dims[0]} not divisible by {n_ranks} ranks"
            )
        self.config = config
        self.n_ranks = n_ranks
        self.name = f"h5bench[{config.mode}{',chunked' if config.chunks else ''}]"

    @property
    def rows_per_rank(self) -> int:
        return self.config.dims[0] // self.n_ranks

    @property
    def bytes_per_step(self) -> int:
        total = self.config.itemsize
        for d in self.config.dims:
            total *= d
        return total

    @property
    def total_bytes(self) -> int:
        factor = 2 if self.config.mode == "write+read" else 1
        return self.bytes_per_step * self.config.steps * factor

    def _selection(self, rank: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """This rank's hyperslab: a block of rows, full trailing dims."""
        c = self.config
        start = (rank * self.rows_per_rank,) + (0,) * (len(c.dims) - 1)
        count = (self.rows_per_rank,) + tuple(c.dims[1:])
        return start, count

    def program(self, ctx: RankContext):
        c = self.config
        h5 = ctx.io.h5
        do_write = c.mode in ("write", "write+read")
        do_read = c.mode in ("read", "write+read")
        if do_write:
            yield from h5.create(c.path, stripe_count=c.stripe_count)
        else:
            # Pure-read mode expects the file from a previous write run.
            yield from h5.open(c.path)
        start, count = self._selection(ctx.rank)
        for step in range(c.steps):
            if c.compute_seconds:
                yield from ctx.compute(c.compute_seconds)
            name = f"step_{step:05d}"
            if do_write:
                dset = yield from h5.create_dataset(
                    name, c.dims, c.itemsize, chunks=c.chunks
                )
                yield from h5.write(dset, start, count, collective=c.collective)
            if do_read:
                dset = h5.dataset(name)
                yield from h5.read(dset, start, count, collective=c.collective)
            yield from ctx.barrier()
        yield from h5.close()

    def describe(self) -> str:
        c = self.config
        return (
            f"h5bench {self.n_ranks} ranks, dims {c.dims} x {c.steps} steps, "
            f"{c.mode}, {'collective' if c.collective else 'independent'}"
            f"{f', chunks {c.chunks}' if c.chunks else ''}"
        )
