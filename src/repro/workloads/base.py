"""The workload abstraction.

Paper Sec. IV-B-4 distinguishes three workload information sources (traces,
synthetic descriptions, characterization profiles) and the IOWA framework
[20] abstracts *workload producers* from *workload consumers*.  Here the
producer interface is :meth:`Workload.ops` -- a per-rank stream of
:class:`~repro.ops.IOOp` -- and every workload is also directly consumable
as an SPMD *program* (the execution-driven path) via :meth:`Workload.program`,
which executes the op stream through the rank's I/O stack.

Dynamic workloads (whose behaviour depends on simulated time, e.g. the
workflow scheduler) override :meth:`program` directly and may not offer an
op stream.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.mpi.runtime import RankContext
from repro.ops import IOOp, OpKind


@dataclass
class WorkloadResult:
    """Outcome of one workload run (filled by the execution driver)."""

    name: str
    n_ranks: int
    duration: float
    per_rank_seconds: List[float] = field(default_factory=list)
    bytes_written: int = 0
    bytes_read: int = 0
    meta_ops: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def write_bandwidth(self) -> float:
        """Aggregate write bandwidth in bytes/second."""
        return self.bytes_written / self.duration if self.duration > 0 else 0.0

    @property
    def read_bandwidth(self) -> float:
        """Aggregate read bandwidth in bytes/second."""
        return self.bytes_read / self.duration if self.duration > 0 else 0.0

    def summary(self) -> str:
        return (
            f"{self.name}: {self.duration:.3f}s, "
            f"W {self.bytes_written / 1e6:.1f} MB @ {self.write_bandwidth / 1e6:.1f} MB/s, "
            f"R {self.bytes_read / 1e6:.1f} MB @ {self.read_bandwidth / 1e6:.1f} MB/s, "
            f"{self.meta_ops} metadata ops"
        )


class Workload(ABC):
    """Base class of every workload."""

    #: Human-readable workload name.
    name: str = "workload"
    #: Number of MPI ranks the workload expects.
    n_ranks: int = 1

    def ops(self, rank: int) -> Iterator[IOOp]:
        """The rank's intended operation stream (IOWA producer side).

        Optional: dynamic workloads raise ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose a static op stream"
        )

    def has_op_stream(self) -> bool:
        """Whether :meth:`ops` is available."""
        try:
            iter(self.ops(0))
            return True
        except NotImplementedError:
            return False

    def program(self, ctx: RankContext):
        """Run this workload's rank ``ctx.rank`` (execution-driven path).

        The default implementation replays the op stream through the
        rank's POSIX layer (``ctx.io.posix``).
        """
        executor = OpStreamExecutor(ctx)
        for op in self.ops(ctx.rank):
            yield from executor.execute(op)
        yield from executor.close_all()

    def describe(self) -> str:
        return f"{self.name} ({self.n_ranks} ranks)"


class OpStreamExecutor:
    """Executes :class:`~repro.ops.IOOp` streams against a rank's I/O stack.

    Keeps per-path descriptors so repeated data ops on one file reuse one
    open; any descriptors still open at the end are closed by
    :meth:`close_all`.
    """

    def __init__(self, ctx: RankContext):
        if ctx.io is None:
            raise RuntimeError(
                "rank context has no I/O stack; launch with an io_factory"
            )
        self.ctx = ctx
        self.posix = ctx.io.posix
        self._fds: Dict[str, int] = {}

    def _fd(self, path: str, create: bool = False, **kwargs):
        fd = self._fds.get(path)
        if fd is None:
            fd = yield from self.posix.open(path, create=create, **kwargs)
            self._fds[path] = fd
        return fd

    def execute(self, op: IOOp):
        """Generator: perform one operation."""
        kind = op.kind
        # Propagate workload annotations (epoch, step, burst, ...) to the
        # POSIX layer so traces can be sliced by application phase.
        self.posix.context = op.meta if op.meta else {}
        if kind == OpKind.COMPUTE:
            yield from self.ctx.compute(op.duration)
        elif kind == OpKind.BARRIER:
            yield from self.ctx.barrier()
        elif kind == OpKind.CREATE:
            stripe_count = op.meta.get("stripe_count")
            fd = yield from self.posix.open(
                op.path, create=True, stripe_count=stripe_count
            )
            self._fds[op.path] = fd
        elif kind == OpKind.OPEN:
            # create=True keeps replayed traces runnable on a fresh file
            # system (the original CREATE may predate the trace window).
            yield from self._fd(
                op.path, create=True, stripe_count=op.meta.get("stripe_count")
            )
        elif kind == OpKind.CLOSE:
            fd = self._fds.pop(op.path, None)
            if fd is not None:
                yield from self.posix.close(fd)
        elif kind == OpKind.WRITE:
            fd = yield from self._fd(op.path, create=True)
            yield from self.posix.pwrite(fd, op.offset, op.nbytes)
        elif kind == OpKind.READ:
            fd = yield from self._fd(op.path)
            yield from self.posix.pread(fd, op.offset, op.nbytes)
        elif kind == OpKind.STAT:
            yield from self.posix.stat(op.path)
        elif kind == OpKind.UNLINK:
            self._fds.pop(op.path, None)
            yield from self.posix.unlink(op.path)
        elif kind == OpKind.MKDIR:
            if op.meta.get("exist_ok"):
                try:
                    yield from self.posix.mkdir(op.path)
                except FileExistsError:
                    pass
            else:
                yield from self.posix.mkdir(op.path)
        elif kind == OpKind.RMDIR:
            yield from self.posix.rmdir(op.path)
        elif kind == OpKind.READDIR:
            yield from self.posix.readdir(op.path)
        elif kind == OpKind.FSYNC:
            fd = yield from self._fd(op.path)
            yield from self.posix.fsync(fd)
        else:  # pragma: no cover - exhaustive over OpKind
            raise ValueError(f"unhandled op kind {kind}")

    def close_all(self):
        """Generator: close every descriptor still open."""
        for path in list(self._fds):
            fd = self._fds.pop(path)
            yield from self.posix.close(fd)


class OpStreamWorkload(Workload):
    """A workload defined directly by per-rank op lists.

    The consumer-side building block for replayed traces and DSL-generated
    workloads: anything that can produce op lists becomes runnable.
    """

    def __init__(self, name: str, per_rank_ops: List[List[IOOp]]):
        if not per_rank_ops:
            raise ValueError("need at least one rank's ops")
        self.name = name
        self.n_ranks = len(per_rank_ops)
        self._ops = per_rank_ops

    def ops(self, rank: int) -> Iterator[IOOp]:
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range")
        return iter(self._ops[rank])

    def total_ops(self) -> int:
        return sum(len(ops) for ops in self._ops)
