"""NPB-BT-IO-like nested strided output workload.

The NAS Parallel Benchmarks' BT-IO [77] appends a 3-D solution array,
block-distributed over ranks, to a shared file every few time steps.  Each
rank's subarray is non-contiguous in the file (nested strides), which makes
BT-IO *the* classic demonstration of collective I/O: independent mode
issues thousands of small strided writes, collective mode coalesces them.
Claim C9 uses this workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.iostack.extents import Extent, coalesce
from repro.mpi.runtime import RankContext
from repro.ops import IOOp, OpKind
from repro.workloads.base import Workload


@dataclass
class BTIOConfig:
    """BT-IO parameters.

    Attributes
    ----------
    grid:
        Global 3-D grid dimension (the array is ``grid^3`` cells).
    cell_bytes:
        Bytes per grid cell (BT uses 5 doubles = 40 bytes).
    dumps:
        Number of solution dumps.
    compute_seconds:
        Computation between dumps.
    collective:
        Use collective MPI-IO (the "full" BT-IO class) or independent
        ("simple" class).
    path:
        Shared output file.
    """

    grid: int = 64
    cell_bytes: int = 40
    dumps: int = 5
    compute_seconds: float = 0.5
    collective: bool = True
    path: str = "/btio.out"
    stripe_count: int = -1

    def validate(self) -> None:
        if self.grid <= 0 or self.cell_bytes <= 0 or self.dumps <= 0:
            raise ValueError("grid, cell_bytes and dumps must be positive")
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")


def _block_decompose(n_ranks: int) -> Tuple[int, int, int]:
    """Factor ``n_ranks`` into a 3-D processor grid (px >= py >= pz)."""
    best = (n_ranks, 1, 1)
    best_score = float("inf")
    for px in range(1, n_ranks + 1):
        if n_ranks % px:
            continue
        rest = n_ranks // px
        for py in range(1, rest + 1):
            if rest % py:
                continue
            pz = rest // py
            score = max(px, py, pz) - min(px, py, pz)
            if score < best_score:
                best_score = score
                best = tuple(sorted((px, py, pz), reverse=True))  # type: ignore
    return best  # type: ignore


class BTIOWorkload(Workload):
    """A runnable BT-IO instance."""

    def __init__(self, config: BTIOConfig, n_ranks: int):
        config.validate()
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.config = config
        self.n_ranks = n_ranks
        self.name = f"btio[{'collective' if config.collective else 'independent'}]"
        self.pgrid = _block_decompose(n_ranks)
        g = config.grid
        for p in self.pgrid:
            if g % p:
                raise ValueError(
                    f"grid {g} not divisible by processor grid {self.pgrid}"
                )
        self.local = tuple(g // p for p in self.pgrid)

    def rank_coords(self, rank: int) -> Tuple[int, int, int]:
        px, py, pz = self.pgrid
        return (rank // (py * pz), (rank // pz) % py, rank % pz)

    def extents_for(self, rank: int, dump: int) -> List[Extent]:
        """The file extents of one rank's subarray in one dump.

        The file holds dumps back-to-back; within a dump the global array
        is laid out row-major (x slowest).  A rank's subarray is contiguous
        only along z; each (x, y) pair contributes one run.
        """
        c = self.config
        g = c.grid
        lx, ly, lz = self.local
        cx, cy, cz = self.rank_coords(rank)
        dump_base = dump * g * g * g * c.cell_bytes
        run = lz * c.cell_bytes
        out: List[Extent] = []
        for x in range(lx):
            gx = cx * lx + x
            for y in range(ly):
                gy = cy * ly + y
                off = dump_base + ((gx * g + gy) * g + cz * lz) * c.cell_bytes
                out.append((off, run))
        return coalesce(out)

    @property
    def bytes_per_dump(self) -> int:
        c = self.config
        return c.grid**3 * c.cell_bytes

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_dump * self.config.dumps

    def program(self, ctx: RankContext):
        c = self.config
        mpiio = ctx.io.mpiio
        handle = yield from mpiio.open_all(
            c.path, create=True, stripe_count=c.stripe_count
        )
        for dump in range(c.dumps):
            if c.compute_seconds:
                yield from ctx.compute(c.compute_seconds)
            yield from ctx.barrier()
            extents = self.extents_for(ctx.rank, dump)
            if c.collective:
                yield from mpiio.write_at_all(handle, extents)
            else:
                for off, n in extents:
                    yield from mpiio.write_at(handle, off, n)
        yield from mpiio.close_all(handle)

    def describe(self) -> str:
        c = self.config
        return (
            f"BT-IO grid {c.grid}^3 on {self.pgrid} pgrid, {c.dumps} dumps, "
            f"{'collective' if c.collective else 'independent'}"
        )
