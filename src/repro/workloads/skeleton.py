"""Skel-like I/O skeletons from declarative application models.

Paper Sec. IV-A-1: "*I/O Skeletons* and auto-generated benchmarks for given
applications are created by utilizing a model of the application derived
from the properties of its regular diagnostic and/or checkpoint output.
An example is the tool *Skel* [14], which generates I/O skeletons for
applications that rely on ADIOS to describe the data that may need to be
written."

An :class:`AppModel` describes, per output *group* (ADIOS-style), the
variables an application writes: their per-rank sizes (possibly scaling
with rank count) and how often the group is dumped.  :class:`IOSkeleton`
compiles the model into a runnable workload that reproduces the
application's I/O without any of its physics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

from repro.ops import IOOp, OpKind
from repro.workloads.base import Workload

MiB = 1024 * 1024


@dataclass
class VariableSpec:
    """One variable in an output group.

    Attributes
    ----------
    name:
        Variable name (for bookkeeping).
    bytes_per_rank:
        Fixed per-rank size, or ``None`` when ``size_fn`` is given.
    size_fn:
        Optional ``fn(rank, n_ranks) -> int`` for rank-dependent sizes
        (e.g. irregular decompositions as in Herbein et al. [11]).
    """

    name: str
    bytes_per_rank: Optional[int] = None
    size_fn: Optional[Callable[[int, int], int]] = None

    def size(self, rank: int, n_ranks: int) -> int:
        if self.size_fn is not None:
            n = int(self.size_fn(rank, n_ranks))
        elif self.bytes_per_rank is not None:
            n = self.bytes_per_rank
        else:
            raise ValueError(f"variable {self.name!r} has no size specification")
        if n < 0:
            raise ValueError(f"variable {self.name!r} has negative size {n}")
        return n


@dataclass
class OutputGroup:
    """A set of variables dumped together every ``every_steps`` steps."""

    name: str
    variables: List[VariableSpec]
    every_steps: int = 1
    shared_file: bool = True

    def bytes_for(self, rank: int, n_ranks: int) -> int:
        return sum(v.size(rank, n_ranks) for v in self.variables)


@dataclass
class AppModel:
    """Declarative application I/O model (what Skel reads from ADIOS XML).

    Attributes
    ----------
    name:
        Application name.
    steps:
        Number of simulated time steps.
    compute_per_step:
        Seconds of computation per step.
    groups:
        The output groups.
    """

    name: str
    steps: int
    compute_per_step: float
    groups: List[OutputGroup] = field(default_factory=list)

    def validate(self) -> None:
        if self.steps <= 0:
            raise ValueError("steps must be positive")
        if self.compute_per_step < 0:
            raise ValueError("compute_per_step must be non-negative")
        if not self.groups:
            raise ValueError("model needs at least one output group")
        for g in self.groups:
            if g.every_steps <= 0:
                raise ValueError(f"group {g.name!r}: every_steps must be positive")
            if not g.variables:
                raise ValueError(f"group {g.name!r} has no variables")


class IOSkeleton(Workload):
    """A workload generated from an :class:`AppModel`.

    The skeleton preserves the model's dump schedule, volumes, and
    file organisation while replacing computation with timed no-ops.
    """

    def __init__(self, model: AppModel, n_ranks: int, out_dir: str = "/skel"):
        model.validate()
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.model = model
        self.n_ranks = n_ranks
        self.out_dir = out_dir
        self.name = f"skel[{model.name}]"

    def group_path(self, group: OutputGroup, step: int, rank: int) -> str:
        base = f"{self.out_dir}/{self.model.name}_{group.name}_{step:06d}"
        if group.shared_file:
            return f"{base}.bp"
        return f"{base}.{rank:06d}.bp"

    def total_bytes(self) -> int:
        total = 0
        for g in self.model.groups:
            dumps = self.model.steps // g.every_steps
            for r in range(self.n_ranks):
                total += dumps * g.bytes_for(r, self.n_ranks)
        return total

    def _group_offset(self, group: OutputGroup, rank: int) -> int:
        """Rank's offset within a shared group file (prefix sums)."""
        return sum(group.bytes_for(r, self.n_ranks) for r in range(rank))

    def ops(self, rank: int) -> Iterator[IOOp]:
        m = self.model
        if rank == 0:
            yield IOOp(OpKind.MKDIR, self.out_dir, rank=rank, meta={"exist_ok": True})
        yield IOOp(OpKind.BARRIER, rank=rank)
        for step in range(1, m.steps + 1):
            if m.compute_per_step:
                yield IOOp(OpKind.COMPUTE, duration=m.compute_per_step, rank=rank)
            for group in m.groups:
                if step % group.every_steps:
                    continue
                path = self.group_path(group, step, rank)
                nbytes = group.bytes_for(rank, self.n_ranks)
                if group.shared_file:
                    if rank == 0:
                        yield IOOp(OpKind.CREATE, path, rank=rank,
                                   meta={"stripe_count": -1})
                    yield IOOp(OpKind.BARRIER, rank=rank)
                    offset = self._group_offset(group, rank)
                else:
                    yield IOOp(OpKind.CREATE, path, rank=rank)
                    offset = 0
                if nbytes:
                    yield IOOp(OpKind.WRITE, path, offset=offset, nbytes=nbytes, rank=rank)
                yield IOOp(OpKind.CLOSE, path, rank=rank)
                yield IOOp(OpKind.BARRIER, rank=rank)

    def describe(self) -> str:
        m = self.model
        groups = ", ".join(
            f"{g.name}/every {g.every_steps}" for g in m.groups
        )
        return f"I/O skeleton of {m.name}: {m.steps} steps, groups [{groups}]"
