"""Workload zoo (paper Sec. IV-A-1 and Sec. V).

Traditional synthetic benchmarks and the emerging workloads the paper
argues they fail to represent:

* :mod:`repro.workloads.base` -- the workload abstraction: a workload is
  either an op-stream source (IOWA-style) or an SPMD program, and every
  op-stream source is automatically runnable as a program.
* :mod:`repro.workloads.ior` -- IOR-like synthetic benchmark [76]
  (sequential/strided/random, shared-file vs file-per-process, POSIX or
  MPI-IO collective).
* :mod:`repro.workloads.mdtest` -- mdtest-like metadata benchmark [8].
* :mod:`repro.workloads.checkpoint` -- HACC-IO-like checkpoint/restart [78].
* :mod:`repro.workloads.npb` -- NPB-BT-IO-like nested strided output [77].
* :mod:`repro.workloads.dlio` -- DLIO-like deep-learning training I/O [80]:
  shuffled mini-batch reads, epochs, model checkpoints (Sec. V-B).
* :mod:`repro.workloads.analytics` -- big-data scan/shuffle/reduce job
  (Sec. V-A).
* :mod:`repro.workloads.workflow` -- multi-step scientific workflow DAGs
  (Sec. V-C).
* :mod:`repro.workloads.facility` -- observational-facility ingest streams
  (Sec. V-A's electron microscopy / photon source example).
* :mod:`repro.workloads.skeleton` -- Skel-like I/O skeletons generated from
  a declarative application model [14].
* :mod:`repro.workloads.proxy` -- phase-structured proxy applications [10].
"""

from repro.workloads.base import OpStreamWorkload, Workload, WorkloadResult
from repro.workloads.ior import IORConfig, IORWorkload
from repro.workloads.mdtest import MdtestConfig, MdtestWorkload
from repro.workloads.checkpoint import CheckpointConfig, CheckpointWorkload
from repro.workloads.npb import BTIOConfig, BTIOWorkload
from repro.workloads.dlio import DLIOConfig, DLIOWorkload
from repro.workloads.analytics import AnalyticsConfig, AnalyticsWorkload
from repro.workloads.workflow import (
    WorkflowTask,
    WorkflowWorkload,
    montage_like_workflow,
)
from repro.workloads.facility import FacilityConfig, FacilityIngestWorkload
from repro.workloads.h5bench import H5BenchConfig, H5BenchWorkload
from repro.workloads.skeleton import AppModel, IOSkeleton, VariableSpec
from repro.workloads.proxy import Phase, PhasedProxyApp

__all__ = [
    "AnalyticsConfig",
    "AnalyticsWorkload",
    "AppModel",
    "BTIOConfig",
    "BTIOWorkload",
    "CheckpointConfig",
    "CheckpointWorkload",
    "DLIOConfig",
    "DLIOWorkload",
    "FacilityConfig",
    "FacilityIngestWorkload",
    "H5BenchConfig",
    "H5BenchWorkload",
    "IORConfig",
    "IORWorkload",
    "IOSkeleton",
    "MdtestConfig",
    "MdtestWorkload",
    "OpStreamWorkload",
    "Phase",
    "PhasedProxyApp",
    "VariableSpec",
    "Workload",
    "WorkloadResult",
    "WorkflowTask",
    "WorkflowWorkload",
    "montage_like_workflow",
]
