"""IOWA-style workload producer/consumer abstraction.

Snyder et al. [20] introduce "an I/O workload abstraction based on
different I/O workload generators ... and workload consumers (such as
storage system simulation and I/O replay tool)".  The point of the
abstraction is decoupling: any source can feed any consumer.

Sources produce a :class:`~repro.workloads.base.Workload`:

* :class:`TraceSource` -- from recorded trace records,
* :class:`ProfileSource` -- from a characterization profile,
* :class:`SyntheticSource` -- from a DSL description.

Consumers accept a workload:

* :class:`SimulationConsumer` -- runs it on a simulated system and returns
  the :class:`~repro.workloads.base.WorkloadResult`.

The :class:`IOWA` registry names sources and consumers and runs any pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cluster.platform import Platform
from repro.monitoring.profiler import JobProfile
from repro.ops import IORecord
from repro.pfs.filesystem import ParallelFileSystem
from repro.simulate.execsim import run_workload
from repro.simulate.tracesim import trace_to_workload
from repro.wgen.dsl import parse_workload
from repro.wgen.from_profile import synthesize_from_profile
from repro.workloads.base import Workload, WorkloadResult


class WorkloadSource:
    """Base class of workload producers."""

    def produce(self) -> Workload:
        raise NotImplementedError


@dataclass
class TraceSource(WorkloadSource):
    """Trace workload: replays recorded records exactly (Sec. IV-B-4's
    'I/O Trace Workloads')."""

    records: List[IORecord]
    layer: str = "posix"
    preserve_think_time: bool = True
    name: str = "trace"

    def produce(self) -> Workload:
        return trace_to_workload(
            self.records,
            name=self.name,
            layer=self.layer,
            preserve_think_time=self.preserve_think_time,
        )


@dataclass
class ProfileSource(WorkloadSource):
    """Characterization workload: synthesized from counters
    ('I/O Characterization Workloads')."""

    profile: JobProfile
    seed: int = 0
    include_think_time: bool = True

    def produce(self) -> Workload:
        return synthesize_from_profile(
            self.profile, seed=self.seed, include_think_time=self.include_think_time
        )


@dataclass
class SyntheticSource(WorkloadSource):
    """Synthetic workload: parsed from a DSL text
    ('Synthetic I/O Workloads')."""

    text: str

    def produce(self) -> Workload:
        return parse_workload(self.text)


@dataclass
class CallableSource(WorkloadSource):
    """Escape hatch: any zero-argument factory of a Workload."""

    factory: Callable[[], Workload]
    name: str = "custom"

    def produce(self) -> Workload:
        return self.factory()


class WorkloadConsumer:
    """Base class of workload consumers."""

    def consume(self, workload: Workload) -> object:
        raise NotImplementedError


@dataclass
class SimulationConsumer(WorkloadConsumer):
    """Feeds the workload to the storage-system simulation."""

    platform: Platform
    pfs: ParallelFileSystem
    observers: Optional[list] = None

    def consume(self, workload: Workload) -> WorkloadResult:
        return run_workload(
            self.platform, self.pfs, workload, observers=self.observers
        )


class IOWA:
    """Named registry of sources and consumers.

    >>> iowa = IOWA()
    >>> iowa.register_source("ckpt", SyntheticSource(DSL_TEXT))   # doctest: +SKIP
    >>> iowa.register_consumer("sim", SimulationConsumer(p, fs))  # doctest: +SKIP
    >>> result = iowa.run("ckpt", "sim")                          # doctest: +SKIP
    """

    def __init__(self):
        self._sources: Dict[str, WorkloadSource] = {}
        self._consumers: Dict[str, WorkloadConsumer] = {}

    def register_source(self, name: str, source: WorkloadSource) -> None:
        if name in self._sources:
            raise ValueError(f"source {name!r} already registered")
        self._sources[name] = source

    def register_consumer(self, name: str, consumer: WorkloadConsumer) -> None:
        if name in self._consumers:
            raise ValueError(f"consumer {name!r} already registered")
        self._consumers[name] = consumer

    def sources(self) -> List[str]:
        return sorted(self._sources)

    def consumers(self) -> List[str]:
        return sorted(self._consumers)

    def run(self, source: str, consumer: str) -> object:
        """Produce from ``source`` and feed to ``consumer``."""
        if source not in self._sources:
            raise KeyError(f"unknown source {source!r} (have {self.sources()})")
        if consumer not in self._consumers:
            raise KeyError(f"unknown consumer {consumer!r} (have {self.consumers()})")
        workload = self._sources[source].produce()
        return self._consumers[consumer].consume(workload)
