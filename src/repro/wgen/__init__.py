"""Workload generation (paper Sec. IV-B-4).

"Three major sources of workload information can be distinguished": I/O
trace workloads, synthetic I/O workloads, and I/O characterization
workloads.  All three are implemented, behind an IOWA-style [20]
producer/consumer abstraction:

* :mod:`repro.wgen.dsl` -- a CODES-I/O-language-like [59] domain-specific
  language for describing synthetic workloads ("manually designed I/O
  behavior descriptions").
* :mod:`repro.wgen.from_profile` -- synthesis of representative workloads
  from Darshan-like characterization profiles (the IOWA paper's novel
  technique).
* Trace workloads come from :func:`repro.simulate.tracesim.trace_to_workload`.
* :mod:`repro.wgen.iowa` -- the source/consumer registry tying them
  together.
"""

from repro.wgen.dsl import DSLError, parse_workload
from repro.wgen.from_profile import synthesize_from_profile
from repro.wgen.iowa import (
    IOWA,
    ProfileSource,
    SimulationConsumer,
    SyntheticSource,
    TraceSource,
)

__all__ = [
    "DSLError",
    "IOWA",
    "ProfileSource",
    "SimulationConsumer",
    "SyntheticSource",
    "TraceSource",
    "parse_workload",
    "synthesize_from_profile",
]
