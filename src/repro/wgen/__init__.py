"""Workload generation (paper Sec. IV-B-4).

"Three major sources of workload information can be distinguished": I/O
trace workloads, synthetic I/O workloads, and I/O characterization
workloads.  All three are implemented, behind an IOWA-style [20]
producer/consumer abstraction:

* :mod:`repro.wgen.dsl` -- a CODES-I/O-language-like [59] domain-specific
  language for describing synthetic workloads ("manually designed I/O
  behavior descriptions").
* :mod:`repro.wgen.from_profile` -- synthesis of representative workloads
  from Darshan-like characterization profiles (the IOWA paper's novel
  technique).
* Trace workloads come from :func:`repro.simulate.tracesim.trace_to_workload`.
* :mod:`repro.wgen.iowa` -- the source/consumer registry tying them
  together.
* :mod:`repro.wgen.grammar` -- a frozen, digest-identified context-free
  grammar over I/O patterns whose seeded derivations compile (through the
  DSL) to runnable scenarios: unbounded what-if exploration from a few
  production rules.
* :mod:`repro.wgen.synth` -- the inverse: beam search over grammar
  derivations that turns a monitored trace back into the smallest
  scenario spec reproducing its access pattern.
"""

from repro.wgen.dsl import DSLError, parse_workload
from repro.wgen.from_profile import synthesize_from_profile
from repro.wgen.grammar import (
    Derivation,
    GrammarError,
    GrammarSpec,
    Production,
    Rule,
    default_grammar,
    expand,
    sample,
)
from repro.wgen.iowa import (
    IOWA,
    ProfileSource,
    SimulationConsumer,
    SyntheticSource,
    TraceSource,
)
from repro.wgen.synth import (
    SynthesisResult,
    normalize_ops,
    store_synthesis,
    synthesize,
    target_ops,
)

__all__ = [
    "DSLError",
    "Derivation",
    "GrammarError",
    "GrammarSpec",
    "IOWA",
    "Production",
    "ProfileSource",
    "Rule",
    "SimulationConsumer",
    "SyntheticSource",
    "SynthesisResult",
    "TraceSource",
    "default_grammar",
    "expand",
    "normalize_ops",
    "parse_workload",
    "sample",
    "store_synthesis",
    "synthesize",
    "synthesize_from_profile",
    "target_ops",
]
