"""Trace-to-spec synthesis: search the workload grammar for a trace.

The inverse of :mod:`repro.wgen.grammar` -- and the mechanical closure of
the paper's Fig. 4 feedback loop: monitoring output (a trace or profile)
becomes evaluation-tool *input* (a replayable, mutatable scenario).

Given a target op stream, :func:`synthesize` runs beam search over
grammar derivations.  A search state is a prefix of production choices;
its children extend the prefix by every alternative of the leftmost
pending nonterminal; each child is scored by greedily completing it
(cheapest-terminating production at every remaining step), compiling the
resulting DSL program, and measuring
:func:`repro.modeling.trace_distance.trace_distance` against the target,
plus a small per-choice penalty so the search prefers the *smallest*
derivation that reproduces the access pattern.  The search is fully
deterministic: no RNG, ties broken by choice order.

:func:`store_synthesis` persists the result into the content-addressed
store as a ``synthesis`` artifact (with the grammar as a ``grammar``
artifact) and refs ``synthesis/<source digest>`` / ``grammar/<name>``,
with provenance linking result -> grammar -> source trace.

What synthesis recovers is the access *pattern* -- phase structure, op
mix, transfer sizes, access modes, sequentiality -- not exact byte
offsets, timestamps or compute durations; anything outside the grammar's
production rules (e.g. a workload the default grammar has no phase for)
is approximated by the nearest derivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.ioutil import canonical_json_bytes, sha256_hex
from repro.modeling.trace_distance import DISTANCE_THRESHOLD, trace_distance
from repro.ops import IOOp, IORecord, OpKind
from repro.wgen.dsl import DSLError, parse_workload
from repro.wgen.grammar import (
    Derivation,
    GrammarError,
    GrammarSpec,
    default_grammar,
    expand,
    pending_rule,
)

#: Per-choice score penalty: large enough to prefer a strictly smaller
#: derivation among near-equal fits, far too small to outweigh a real
#: distance difference.
SIZE_PENALTY = 1e-4


def derivation_ops(derivation: Derivation) -> List[IOOp]:
    """Compile a derivation and flatten its per-rank op streams."""
    workload = parse_workload(derivation.text)
    ops: List[IOOp] = []
    for rank in range(workload.n_ranks):
        ops.extend(workload.ops(rank))
    return ops


def target_ops(stream: Iterable[Union[IOOp, IORecord]]) -> List[IOOp]:
    """Normalize a trace/op stream into the op list synthesis targets."""
    out: List[IOOp] = []
    for item in stream:
        if isinstance(item, IORecord):
            out.append(item.to_op())
        elif isinstance(item, IOOp):
            out.append(item)
        else:
            raise TypeError(
                f"expected IOOp or IORecord, got {type(item).__name__}"
            )
    return out


def normalize_ops(ops: Iterable[IOOp]) -> List[IOOp]:
    """Project an op stream onto the observable posix-layer dialect.

    Intended streams (DSL compilations) and observed traces (posix-layer
    records) speak different dialects, and scoring must not punish the
    difference.  This mimics what
    :class:`~repro.workloads.base.OpStreamExecutor` does to an intended
    stream: compute/barrier markers are dropped (they never reach the
    file system), ``CREATE`` is observed as ``OPEN`` (the posix layer
    emits OPEN for both), data ops and fsync on a not-yet-open (rank,
    path) inject the executor's lazy ``OPEN``, ``CLOSE`` on an unopened
    path is a no-op, and descriptors still open at the end are closed
    (``close_all``).  Applied to an already-observed stream it is
    (almost) the identity, so both sides meet in the middle.
    """
    out: List[IOOp] = []
    open_files: set = set()  # (rank, path) with a live descriptor
    for op in ops:
        if op.kind.is_marker:
            continue
        key = (op.rank, op.path)
        if op.kind is OpKind.CREATE:
            out.append(replace(op, kind=OpKind.OPEN, meta={}))
            open_files.add(key)
        elif op.kind is OpKind.OPEN:
            out.append(op)
            open_files.add(key)
        elif op.kind in (OpKind.WRITE, OpKind.READ, OpKind.FSYNC):
            if key not in open_files:
                out.append(IOOp(OpKind.OPEN, op.path, rank=op.rank))
                open_files.add(key)
            out.append(op)
        elif op.kind is OpKind.CLOSE:
            if key in open_files:
                open_files.discard(key)
                out.append(op)
        elif op.kind is OpKind.UNLINK:
            open_files.discard(key)
            out.append(op)
        else:
            out.append(op)
    for rank, path in sorted(open_files):
        out.append(IOOp(OpKind.CLOSE, path, rank=rank))
    return out


def ops_digest(ops: Sequence[IOOp]) -> str:
    """Content identity of an op stream (rank-sensitive signatures)."""
    doc = [[op.rank, *op.signature()] for op in ops]
    return sha256_hex(canonical_json_bytes(doc))


@dataclass(frozen=True)
class SynthesisResult:
    """The outcome of one grammar search against a target trace."""

    derivation: Derivation
    distance: float
    source_digest: str
    n_candidates: int
    threshold: float = DISTANCE_THRESHOLD

    @property
    def ok(self) -> bool:
        """Did the best derivation land under the acceptance threshold?"""
        return self.distance <= self.threshold

    def scenario_spec(self, seed: int = 0):
        return self.derivation.scenario_spec(seed=seed)

    def to_dict(self) -> Dict[str, Any]:
        """JSON document persisted as the ``synthesis`` store artifact."""
        return {
            "schema": "repro.wgen.synthesis/1",
            "source_digest": self.source_digest,
            "grammar_digest": self.derivation.grammar_digest,
            "choices": list(self.derivation.choices),
            "program": self.derivation.text,
            "n_ranks": self.derivation.n_ranks,
            "distance": self.distance,
            "threshold": self.threshold,
            "ok": self.ok,
            "n_candidates": self.n_candidates,
            "scenario": self.scenario_spec().to_dict(),
        }


@dataclass(order=True)
class _Candidate:
    """A scored search state; orders by (score, fewest choices)."""

    score: float
    n_choices: int
    choices: Tuple[int, ...] = field(compare=False)
    complete: bool = field(compare=False, default=False)


def synthesize(
    stream: Iterable[Union[IOOp, IORecord]],
    grammar: Optional[GrammarSpec] = None,
    n_ranks: Optional[int] = None,
    beam_width: int = 8,
    max_steps: int = 64,
    threshold: float = DISTANCE_THRESHOLD,
) -> SynthesisResult:
    """Find the smallest grammar derivation reproducing ``stream``.

    Deterministic beam search; ``beam_width`` states survive per round,
    ``max_steps`` bounds the derivation length searched.  ``n_ranks``
    defaults to the target's own rank population.  The returned result's
    :attr:`~SynthesisResult.ok` says whether the best distance landed
    under ``threshold`` -- the search always returns its best effort.
    """
    if grammar is None:
        grammar = default_grammar()
    grammar.validate()
    target = target_ops(stream)
    if not target:
        raise ValueError("cannot synthesize from an empty trace")
    if n_ranks is None:
        n_ranks = max(op.rank for op in target) + 1
    if beam_width < 1:
        raise ValueError("beam_width must be >= 1")
    normalized_target = normalize_ops(target)
    if not normalized_target:
        raise ValueError(
            "target trace has no file-system operations to reproduce"
        )

    def score(choices: Tuple[int, ...]) -> Optional[_Candidate]:
        """Greedily complete, compile and measure a prefix; None if the
        completion is not a valid program (kept out of the beam)."""
        try:
            completed = expand(grammar, choices, n_ranks=n_ranks,
                               complete=True)
            ops = normalize_ops(derivation_ops(completed))
        except (GrammarError, DSLError):
            return None
        dist = trace_distance(normalized_target, ops)
        return _Candidate(
            score=dist + SIZE_PENALTY * len(completed.choices),
            n_choices=len(choices),
            choices=choices,
            complete=len(completed.choices) == len(choices),
        )

    # Every scored prefix stands for a full derivation (its greedy
    # completion), so the answer is the best-scoring candidate seen
    # anywhere in the search, not just the last beam.
    n_candidates = 0
    best: Optional[_Candidate] = None
    root = score(())
    if root is not None:
        n_candidates = 1
        best = root
    beam: List[_Candidate] = [root] if root is not None else []

    for _ in range(max_steps):
        frontier: List[_Candidate] = []
        for cand in beam:
            if cand.complete:
                continue  # nothing left to expand
            rule = pending_rule(grammar, cand.choices)
            for index in range(len(rule.productions)):
                child = score(cand.choices + (index,))
                if child is None:
                    continue
                n_candidates += 1
                frontier.append(child)
                if best is None or child < best:
                    best = child
        if not frontier:
            break
        frontier.sort()
        beam = frontier[:beam_width]

    if best is None:  # every completion failed -- grammar/DSL mismatch
        raise GrammarError(
            "synthesis found no valid derivation; the grammar generates no "
            "parseable program"
        )
    final = expand(grammar, best.choices, n_ranks=n_ranks, complete=True)
    best_distance = trace_distance(
        normalized_target, normalize_ops(derivation_ops(final))
    )
    return SynthesisResult(
        derivation=final,
        distance=best_distance,
        source_digest=ops_digest(target),
        n_candidates=n_candidates,
        threshold=threshold,
    )


def store_synthesis(store, result: SynthesisResult,
                    grammar: Optional[GrammarSpec] = None) -> Dict[str, str]:
    """Persist a synthesis result (and its grammar) with provenance refs.

    Writes a ``grammar`` artifact + ``grammar/<name>`` ref (when the
    grammar is given) and a ``synthesis`` artifact + a
    ``synthesis/<source digest16>`` ref whose meta links source trace,
    grammar and distance.  Returns the digests keyed by artifact kind.
    """
    from repro.store.artifact import RunArtifact

    digests: Dict[str, str] = {}
    if grammar is not None:
        if grammar.digest() != result.derivation.grammar_digest:
            raise GrammarError(
                "grammar does not match the one the result was searched on"
            )
        gd = store.put(RunArtifact.from_grammar(grammar.to_dict()))
        store.set_ref(f"grammar/{grammar.name}", gd,
                      meta={"grammar_digest": grammar.digest()})
        digests["grammar"] = gd
    sd = store.put(RunArtifact.from_synthesis(result.to_dict()))
    store.set_ref(
        f"synthesis/{result.source_digest[:16]}", sd,
        meta={
            "source_digest": result.source_digest,
            "grammar_digest": result.derivation.grammar_digest,
            "distance": result.distance,
            "ok": result.ok,
        },
    )
    digests["synthesis"] = sd
    return digests
