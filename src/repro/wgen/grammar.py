"""A context-free grammar over parallel I/O patterns.

FBench-style what-if exploration: instead of 23 hand-written presets, a
few production rules span an unbounded family of workloads.  A
:class:`GrammarSpec` is a frozen, digest-identified CFG whose *terminals*
are fragments of the :mod:`repro.wgen.dsl` language; a derivation
therefore expands to a complete DSL program, which compiles to a runnable
:class:`~repro.workloads.base.OpStreamWorkload` and wraps into a
JSON-native ``WorkloadSpec(kind="dsl")`` -- so every sampled workload is
a first-class scenario citizen (presets, sweeps, the run service, the
content-addressed store) without any of those layers knowing about
grammars.

Structure
---------

* Nonterminals are written ``<name>``; anything else in a production's
  symbol list is emitted literally into the DSL program text.
* Each nonterminal owns an ordered tuple of :class:`Production`
  alternatives with positive weights; a *derivation* is the sequence of
  alternative indices chosen at each leftmost expansion step, which makes
  derivations compact, replayable (:func:`expand`) and searchable
  (:mod:`repro.wgen.synth` runs beam search over them).
* :func:`sample` draws the choices from a dedicated seeded stream --
  ``RandomStreams(seed).stream("grammar")``, the same named-substream
  convention the fault injector uses for its ``"faults"`` jitter -- so
  the same grammar + seed always yields a byte-identical program text,
  ``WorkloadSpec`` and scenario digest.
* Recursion is depth-bounded: when the remaining budget cannot cover a
  production's minimum completion cost, sampling falls back to the
  cheapest alternatives, so every sample terminates (validation rejects
  grammars with non-terminating nonterminals outright).

The :func:`default_grammar` covers the paper's emerging-workload phase
vocabulary: bulk-synchronous checkpoints, strided/segmented writes,
read-back analysis loops (sequential or shuffled), and mdtest-style
metadata storms, over shared-file and file-per-process access modes with
varying sizes, transfer granularities and metadata mixes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.des.rng import RandomStreams

GRAMMAR_SCHEMA = "repro.wgen.grammar/1"

#: Name of the dedicated seeded stream grammar sampling draws from (the
#: ``"faults"``-jitter convention: a named substream per consumer).
GRAMMAR_STREAM = "grammar"


class GrammarError(ValueError):
    """A grammar is invalid, or a derivation cannot be expanded."""


def _is_nonterminal(symbol: str) -> bool:
    return len(symbol) > 2 and symbol.startswith("<") and symbol.endswith(">")


def _nt_name(symbol: str) -> str:
    return symbol[1:-1]


@dataclass(frozen=True)
class Production:
    """One alternative of a rule: a symbol sequence plus a sampling weight."""

    symbols: Tuple[str, ...]
    weight: float = 1.0

    def __post_init__(self):
        if not isinstance(self.symbols, tuple):
            object.__setattr__(self, "symbols", tuple(self.symbols))

    def validate(self, lhs: str) -> None:
        if not self.symbols:
            raise GrammarError(f"rule <{lhs}>: empty production (use a "
                               f"literal like ';' or drop the alternative)")
        for s in self.symbols:
            if not isinstance(s, str) or not s:
                raise GrammarError(f"rule <{lhs}>: bad symbol {s!r}")
            if _is_nonterminal(s) and not _nt_name(s).replace("-", "_").isidentifier():
                raise GrammarError(f"rule <{lhs}>: bad nonterminal name {s!r}")
        if not (isinstance(self.weight, (int, float)) and self.weight > 0):
            raise GrammarError(f"rule <{lhs}>: weight must be positive, "
                               f"got {self.weight!r}")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"symbols": list(self.symbols)}
        if self.weight != 1.0:
            out["weight"] = self.weight
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Production":
        if not isinstance(payload, Mapping):
            raise GrammarError(f"production must be a mapping, got "
                               f"{type(payload).__name__}")
        unknown = sorted(set(payload) - {"symbols", "weight"})
        if unknown:
            raise GrammarError(f"unknown production field(s): "
                               f"{', '.join(unknown)}")
        return cls(symbols=tuple(payload.get("symbols", ())),
                   weight=payload.get("weight", 1.0))


@dataclass(frozen=True)
class Rule:
    """A nonterminal and its ordered alternatives."""

    lhs: str
    productions: Tuple[Production, ...]

    def __post_init__(self):
        if not isinstance(self.productions, tuple):
            object.__setattr__(self, "productions", tuple(self.productions))

    def validate(self) -> None:
        if not self.lhs or not self.lhs.replace("-", "_").isidentifier():
            raise GrammarError(f"bad rule name {self.lhs!r}")
        if not self.productions:
            raise GrammarError(f"rule <{self.lhs}> has no productions")
        for p in self.productions:
            p.validate(self.lhs)

    def to_dict(self) -> Dict[str, Any]:
        return {"lhs": self.lhs,
                "productions": [p.to_dict() for p in self.productions]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Rule":
        if not isinstance(payload, Mapping):
            raise GrammarError(f"rule must be a mapping, got "
                               f"{type(payload).__name__}")
        unknown = sorted(set(payload) - {"lhs", "productions"})
        if unknown:
            raise GrammarError(f"unknown rule field(s): {', '.join(unknown)}")
        if "lhs" not in payload:
            raise GrammarError("rule needs an 'lhs'")
        return cls(
            lhs=payload["lhs"],
            productions=tuple(
                Production.from_dict(p) for p in payload.get("productions", ())
            ),
        )


@dataclass(frozen=True)
class GrammarSpec:
    """A frozen, digest-identified workload grammar."""

    name: str
    rules: Tuple[Rule, ...]
    start: str = "workload"

    def __post_init__(self):
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    # -- validation ----------------------------------------------------------
    def validate(self) -> "GrammarSpec":
        if not self.name:
            raise GrammarError("grammar needs a name")
        seen = set()
        for rule in self.rules:
            rule.validate()
            if rule.lhs in seen:
                raise GrammarError(f"duplicate rule <{rule.lhs}>")
            seen.add(rule.lhs)
        if self.start not in seen:
            raise GrammarError(f"start symbol <{self.start}> has no rule")
        by_name = self.rule_map()
        for rule in self.rules:
            for p in rule.productions:
                for s in p.symbols:
                    if _is_nonterminal(s) and _nt_name(s) not in by_name:
                        raise GrammarError(
                            f"rule <{rule.lhs}> references undefined "
                            f"nonterminal {s}"
                        )
        # Least-fixpoint termination check: every nonterminal must have at
        # least one production whose nonterminals all terminate.
        terminating: set = set()
        changed = True
        while changed:
            changed = False
            for rule in self.rules:
                if rule.lhs in terminating:
                    continue
                for p in rule.productions:
                    if all(
                        _nt_name(s) in terminating
                        for s in p.symbols
                        if _is_nonterminal(s)
                    ):
                        terminating.add(rule.lhs)
                        changed = True
                        break
        dead = sorted(seen - terminating)
        if dead:
            raise GrammarError(
                f"nonterminal(s) cannot terminate: "
                f"{', '.join('<' + d + '>' for d in dead)}"
            )
        return self

    # -- lookups -------------------------------------------------------------
    def rule_map(self) -> Dict[str, Rule]:
        return {r.lhs: r for r in self.rules}

    def min_costs(self) -> Dict[str, int]:
        """Minimum expansion steps to fully terminate each nonterminal.

        Computed by value iteration; used to depth-bound sampling and to
        complete partial derivations greedily during synthesis.
        """
        INF = float("inf")
        cost: Dict[str, float] = {r.lhs: INF for r in self.rules}
        changed = True
        while changed:
            changed = False
            for rule in self.rules:
                best = INF
                for p in rule.productions:
                    c = 1.0
                    for s in p.symbols:
                        if _is_nonterminal(s):
                            c += cost[_nt_name(s)]
                    best = min(best, c)
                if best < cost[rule.lhs]:
                    cost[rule.lhs] = best
                    changed = True
        return {k: int(v) for k, v in cost.items() if v != INF}

    def production_cost(self, prod: Production, costs: Mapping[str, int]) -> int:
        """Minimum steps to terminate after choosing ``prod``."""
        return 1 + sum(
            costs[_nt_name(s)] for s in prod.symbols if _is_nonterminal(s)
        )

    # -- canonical serialization ---------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": GRAMMAR_SCHEMA,
            "name": self.name,
            "start": self.start,
            "rules": [r.to_dict() for r in self.rules],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GrammarSpec":
        if not isinstance(payload, Mapping):
            raise GrammarError(f"grammar document must be a mapping, got "
                               f"{type(payload).__name__}")
        schema = payload.get("schema", GRAMMAR_SCHEMA)
        if schema != GRAMMAR_SCHEMA:
            raise GrammarError(f"unsupported grammar schema {schema!r} "
                               f"(expected {GRAMMAR_SCHEMA!r})")
        unknown = sorted(set(payload) - {"schema", "name", "start", "rules"})
        if unknown:
            raise GrammarError(f"unknown grammar field(s): "
                               f"{', '.join(unknown)}")
        if "name" not in payload:
            raise GrammarError("grammar document needs a 'name'")
        return cls(
            name=payload["name"],
            start=payload.get("start", "workload"),
            rules=tuple(Rule.from_dict(r) for r in payload.get("rules", ())),
        )

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "GrammarSpec":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise GrammarError(f"invalid grammar JSON: {exc}") from exc
        return cls.from_dict(payload)

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 content identity of the grammar."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def describe(self) -> str:
        n_prods = sum(len(r.productions) for r in self.rules)
        return (f"grammar {self.name}: {len(self.rules)} rule(s), "
                f"{n_prods} production(s), start <{self.start}>, "
                f"digest {self.digest()[:16]}")


# -- derivations --------------------------------------------------------------


@dataclass(frozen=True)
class Derivation:
    """One complete leftmost derivation of a grammar.

    ``choices`` replays it exactly (:func:`expand`); ``text`` is the
    DSL program it expands to.  ``seed`` is ``None`` for derivations not
    produced by :func:`sample` (e.g. synthesis search results).
    """

    grammar_digest: str
    choices: Tuple[int, ...]
    text: str
    n_ranks: int
    seed: Optional[int] = None

    def workload_spec(self):
        """The JSON-native ``WorkloadSpec(kind="dsl")`` of this derivation."""
        from repro.scenario.spec import WorkloadSpec

        return WorkloadSpec(kind="dsl", n_ranks=self.n_ranks,
                            params={"program": self.text})

    def scenario_spec(self, name: Optional[str] = None, seed: int = 0):
        """A complete runnable scenario (tiny platform) for this derivation."""
        from repro.cluster.platform import tiny_spec
        from repro.scenario.spec import ScenarioSpec

        if name is None:
            suffix = f"-s{self.seed}" if self.seed is not None else ""
            name = f"grammar-{self.grammar_digest[:8]}{suffix}"
        return ScenarioSpec(
            name=name, platform=tiny_spec(), seed=seed,
            workloads=(self.workload_spec(),),
        ).validate()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "grammar_digest": self.grammar_digest,
            "choices": list(self.choices),
            "n_ranks": self.n_ranks,
            "text": self.text,
        }
        if self.seed is not None:
            out["seed"] = self.seed
        return out


def _render(fragments: Sequence[str], name: str, n_ranks: int) -> str:
    """Join terminal fragments into a complete DSL program.

    Fragments are whitespace-split into tokens and re-laid-out
    deterministically (one statement per line, blocks indented), because
    rendering is part of the byte-identity contract: same fragments, same
    bytes.  The DSL lexer itself is whitespace-insensitive, so layout is
    purely for humans and goldens.
    """
    tokens: List[str] = []
    for frag in fragments:
        tokens.extend(frag.split())
    lines = [f"workload {name} {{", f"  ranks {n_ranks};"]
    indent = 1
    cur: List[str] = []

    def flush() -> None:
        if cur:
            lines.append("  " * indent + " ".join(cur).replace(" ;", ";"))
            cur.clear()

    for tok in tokens:
        if tok == "{":
            cur.append("{")
            flush()
            indent += 1
        elif tok == "}":
            flush()
            indent = max(1, indent - 1)
            lines.append("  " * indent + "}")
        elif tok.endswith(";"):
            cur.append(tok)
            flush()
        else:
            cur.append(tok)
    flush()
    lines.append("}")
    return "\n".join(lines) + "\n"


@dataclass
class _Expansion:
    """Mutable state of one leftmost expansion (shared by sample/expand)."""

    grammar: GrammarSpec
    rules: Dict[str, Rule] = field(init=False)
    costs: Dict[str, int] = field(init=False)
    stack: List[str] = field(init=False)
    fragments: List[str] = field(init=False)
    choices: List[int] = field(init=False)
    steps: int = 0

    def __post_init__(self):
        self.rules = self.grammar.rule_map()
        self.costs = self.grammar.min_costs()
        self.stack = [f"<{self.grammar.start}>"]
        self.fragments = []
        self.choices = []

    def pending_cost(self) -> int:
        """Minimum steps needed to finish everything still on the stack."""
        return sum(
            self.costs[_nt_name(s)] for s in self.stack if _is_nonterminal(s)
        )

    def next_nonterminal(self) -> Optional[Rule]:
        """Advance past literals; return the leftmost pending rule."""
        while self.stack:
            top = self.stack[-1]
            if _is_nonterminal(top):
                return self.rules[_nt_name(top)]
            self.fragments.append(self.stack.pop())
        return None

    def apply(self, rule: Rule, index: int) -> None:
        if not 0 <= index < len(rule.productions):
            raise GrammarError(
                f"choice {index} out of range for rule <{rule.lhs}> "
                f"({len(rule.productions)} production(s))"
            )
        self.stack.pop()
        prod = rule.productions[index]
        self.stack.extend(reversed(prod.symbols))
        self.choices.append(index)
        self.steps += 1

    def done(self) -> bool:
        return not self.stack


def _min_choice(rule: Rule, costs: Mapping[str, int],
                grammar: GrammarSpec) -> int:
    """Index of the cheapest-terminating production (ties: first)."""
    best_i, best_c = 0, None
    for i, p in enumerate(rule.productions):
        c = grammar.production_cost(p, costs)
        if best_c is None or c < best_c:
            best_i, best_c = i, c
    return best_i


def sample(
    grammar: GrammarSpec,
    seed: int = 0,
    n_ranks: int = 4,
    name: Optional[str] = None,
    max_steps: int = 256,
) -> Derivation:
    """Draw one deterministic derivation of ``grammar`` at ``seed``.

    Choices are weighted draws from the dedicated ``"grammar"`` substream
    of :class:`~repro.des.rng.RandomStreams`, so two samples of the same
    grammar + seed are byte-identical (program text, choices, and the
    ``WorkloadSpec``/scenario digests built from them).  ``max_steps``
    bounds recursion: once the remaining budget cannot cover a choice's
    minimum completion cost, only affordable productions stay eligible.
    """
    grammar.validate()
    if name is None:
        name = f"g_{grammar.name}_s{seed}".replace("-", "_")
    rng = RandomStreams(seed).stream(GRAMMAR_STREAM)
    state = _Expansion(grammar)
    while True:
        rule = state.next_nonterminal()
        if rule is None:
            break
        budget = max_steps - state.steps - state.pending_cost()
        eligible = [
            i for i, p in enumerate(rule.productions)
            if grammar.production_cost(p, state.costs)
            - state.costs[rule.lhs] <= budget
        ]
        if not eligible:
            eligible = [_min_choice(rule, state.costs, grammar)]
        weights = [rule.productions[i].weight for i in eligible]
        total = sum(weights)
        probs = [w / total for w in weights]
        index = eligible[int(rng.choice(len(eligible), p=probs))]
        state.apply(rule, index)
    return Derivation(
        grammar_digest=grammar.digest(),
        choices=tuple(state.choices),
        text=_render(state.fragments, name, n_ranks),
        n_ranks=n_ranks,
        seed=seed,
    )


def expand(
    grammar: GrammarSpec,
    choices: Sequence[int],
    n_ranks: int = 4,
    name: Optional[str] = None,
    complete: bool = False,
) -> Derivation:
    """Replay an explicit choice sequence into a derivation.

    With ``complete=False`` the choices must expand the start symbol
    exactly (too few or too many raises :class:`GrammarError`); with
    ``complete=True`` a short sequence is finished greedily with the
    cheapest-terminating production at every remaining step -- the
    completion the synthesis beam search scores partial derivations with.
    """
    grammar.validate()
    if name is None:
        name = f"g_{grammar.name}_d".replace("-", "_")
    state = _Expansion(grammar)
    it = iter(choices)
    pending = list(choices)
    used = 0
    while True:
        rule = state.next_nonterminal()
        if rule is None:
            break
        if used < len(pending):
            index = pending[used]
            if not isinstance(index, int) or isinstance(index, bool):
                raise GrammarError(f"choice #{used} must be an integer, "
                                   f"got {index!r}")
            used += 1
        elif complete:
            index = _min_choice(rule, state.costs, grammar)
        else:
            raise GrammarError(
                f"derivation incomplete: {len(pending)} choice(s) consumed "
                f"but <{rule.lhs}> still pending (pass complete=True to "
                f"finish greedily)"
            )
        state.apply(rule, index)
    if used < len(pending):
        raise GrammarError(
            f"derivation complete after {used} choice(s) but "
            f"{len(pending) - used} left over"
        )
    del it
    return Derivation(
        grammar_digest=grammar.digest(),
        choices=tuple(state.choices),
        text=_render(state.fragments, name, n_ranks),
        n_ranks=n_ranks,
    )


def pending_rule(grammar: GrammarSpec, choices: Sequence[int]) -> Optional[Rule]:
    """The leftmost nonterminal still pending after replaying ``choices``.

    Returns ``None`` when the prefix is already a complete derivation.
    The synthesis beam search uses this to enumerate a prefix's children
    (one per production of the pending rule).
    """
    state = _Expansion(grammar)
    used = 0
    pending = list(choices)
    while True:
        rule = state.next_nonterminal()
        if rule is None:
            if used < len(pending):
                raise GrammarError(
                    f"derivation complete after {used} choice(s) but "
                    f"{len(pending) - used} left over"
                )
            return None
        if used >= len(pending):
            return rule
        state.apply(rule, pending[used])
        used += 1


# -- the default grammar ------------------------------------------------------


def _r(lhs: str, *prods) -> Rule:
    """Rule helper: each production is a (weight, fragments...) tuple or a
    plain fragments tuple with weight 1."""
    out = []
    for p in prods:
        if p and isinstance(p[0], (int, float)) and not isinstance(p[0], bool):
            out.append(Production(symbols=tuple(p[1:]), weight=float(p[0])))
        else:
            out.append(Production(symbols=tuple(p)))
    return Rule(lhs=lhs, productions=tuple(out))


def default_grammar() -> GrammarSpec:
    """The built-in I/O-pattern grammar.

    Phases (checkpoint, strided write, read-back analysis, metadata
    storm) over access modes (shared / file-per-process), access orders
    (sequential / random), write sizes, transfer granularities and
    metadata mixes.  Access mode is chosen once per phase (a production
    alternative, not a free nonterminal) so create/write/close within a
    phase always agree.  Transfer sizes divide every write size, so any
    size x transfer combination is a valid DSL statement, and the
    analysis phase writes its dataset before reading it -- every
    derivation is a valid, runnable :mod:`repro.wgen.dsl` program by
    construction (pinned by test).
    """
    return GrammarSpec(
        name="default",
        start="workload",
        rules=(
            # A job is one to a few phases, biased short.
            _r("workload", ("<phase>",), (0.6, "<phase>", "<workload>")),
            _r("phase",
               (1.5, "<checkpoint>"), ("<strided>",),
               ("<analysis>",), ("<mdstorm>",)),

            # Bulk-synchronous checkpoint: compute, barrier, dump, fsync.
            _r("checkpoint",
               (1.5,
                "loop", "<steps>", "{",
                "compute", "<think>", ";",
                "barrier;",
                "create shared \"/ckpt\" stripe", "<stripe>", ";",
                "write shared \"/ckpt\" size", "<size>",
                "transfer", "<xfer>", ";",
                "<fsync_s>",
                "close \"/ckpt\";",
                "}"),
               ("loop", "<steps>", "{",
                "compute", "<think>", ";",
                "barrier;",
                "create fpp \"/ckpt\";",
                "write fpp \"/ckpt\" size", "<size>",
                "transfer", "<xfer>", ";",
                "<fsync_f>",
                "close fpp \"/ckpt\";",
                "}")),
            _r("fsync_s", ("fsync \"/ckpt\";",), (0.5, "barrier;")),
            _r("fsync_f", ("fsync fpp \"/ckpt\";",), (0.5, "barrier;")),

            # Segmented/strided write: each loop iteration appends one
            # block per rank (IOR "segments"), interleaving rank blocks.
            _r("strided",
               ("create shared \"/seg\";",
                "loop", "<segments>", "{",
                "write shared \"/seg\"", "<segblk>", ";",
                "}",
                "close \"/seg\";"),
               ("create fpp \"/seg\";",
                "loop", "<segments>", "{",
                "write fpp \"/seg\"", "<segblk>", ";",
                "}",
                "close fpp \"/seg\";")),
            _r("segblk",
               ("size 256KB transfer 256KB",),
               ("size 1MB transfer 1MB",)),

            # Write-once / read-many analysis: sequential or shuffled
            # epochs over a shared dataset (written first, so the read
            # always finds the file).
            _r("analysis",
               ("create shared \"/data\";",
                "write shared \"/data\" size 16MB transfer 1MB;",
                "barrier;",
                "loop", "<epochs>", "{",
                "read shared \"/data\"", "<readblk>",
                "pattern", "<order>", ";",
                "}",
                "close \"/data\";")),
            _r("readblk",
               ("size 16MB transfer 1MB",),
               ("size 4MB transfer 1MB",),
               ("size 1MB transfer 256KB",)),
            _r("order", ("sequential",), ("random",)),

            # mdtest-style metadata storm: many small files, optional
            # stat/unlink mix.
            _r("mdstorm",
               ("mkdir \"/md\";",
                "loop", "<files>", "as i {",
                "create fpp \"/md/f${i}\";",
                "<mdmix>",
                "}")),
            _r("mdmix",
               ("close fpp \"/md/f${i}\";",),
               ("stat fpp \"/md/f${i}\";", "close fpp \"/md/f${i}\";"),
               ("close fpp \"/md/f${i}\";", "unlink fpp \"/md/f${i}\";")),

            # Quantities.  256KB and 1MB divide 1MB/4MB/16MB, so any
            # size x transfer pairing parses.
            _r("steps", ("2",), ("3",), ("4",)),
            _r("segments", ("4",), ("8",), ("16",)),
            _r("epochs", ("1",), ("2",)),
            _r("files", ("8",), ("16",), ("32",)),
            _r("size", ("1MB",), ("4MB",), ("16MB",)),
            _r("xfer", ("256KB",), ("1MB",)),
            _r("stripe", ("1",), ("2",), ("-1",)),
            _r("think", ("0.05s",), ("0.2s",)),
        ),
    ).validate()
