"""Workload synthesis from characterization profiles.

Snyder et al.'s IOWA paper [20] "presents an innovative technique for
synthesizing representative I/O workloads from Darshan logs".  Given a
:class:`~repro.monitoring.profiler.JobProfile` (counters only -- no trace),
this module generates an op stream that matches the profile's:

* per-(file, rank) operation counts and byte totals,
* access-size distribution (sampled from the profile's histograms),
* sequentiality (the observed fraction of ops continue the previous
  offset; the rest jump pseudo-randomly),
* think time (the non-I/O fraction of the job's runtime, spread evenly).

The synthesis is deterministic given the seed.  Ablation A2 quantifies how
closely the synthesized workload's simulated behaviour matches the
original's.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

import numpy as np

from repro.monitoring.counters import FileCounters
from repro.monitoring.profiler import JobProfile
from repro.ops import IOOp, OpKind, SIZE_BUCKETS
from repro.workloads.base import OpStreamWorkload


def _bucket_size(idx: int) -> int:
    """Representative size for one histogram bucket (geometric midpoint)."""
    hi = SIZE_BUCKETS[idx] if idx < len(SIZE_BUCKETS) else SIZE_BUCKETS[-1] * 10
    lo = SIZE_BUCKETS[idx - 1] if idx > 0 else 1
    return int(np.sqrt(lo * hi))


def _synthesize_sizes(
    hist: List[int], total_bytes: int, n_ops: int, rng: np.random.Generator
) -> List[int]:
    """Draw op sizes from the histogram, then rescale to hit total bytes."""
    if n_ops == 0:
        return []
    weights = np.asarray(hist, dtype=float)
    if weights.sum() == 0:
        base = max(1, total_bytes // n_ops)
        sizes = [base] * n_ops
    else:
        probs = weights / weights.sum()
        buckets = rng.choice(len(hist), size=n_ops, p=probs)
        sizes = [_bucket_size(int(b)) for b in buckets]
    # Rescale so the volume matches exactly (adjusting the last op).
    current = sum(sizes)
    if current > 0 and total_bytes > 0:
        scale = total_bytes / current
        sizes = [max(1, int(s * scale)) for s in sizes]
    diff = total_bytes - sum(sizes)
    sizes[-1] = max(1, sizes[-1] + diff)
    return sizes


def _synthesize_stream(
    fc: FileCounters, kind: OpKind, rng: np.random.Generator
) -> List[IOOp]:
    """Generate one direction's ops for one (file, rank) record."""
    if kind == OpKind.WRITE:
        n_ops, total = fc.writes, fc.bytes_written
        hist, seq_frac = fc.write_size_hist, fc.seq_write_fraction()
        extent = max(fc.max_byte_written, total)
    else:
        n_ops, total = fc.reads, fc.bytes_read
        hist, seq_frac = fc.read_size_hist, fc.seq_read_fraction()
        extent = max(fc.max_byte_read, total)
    if n_ops == 0:
        return []
    sizes = _synthesize_sizes(hist, total, n_ops, rng)
    ops: List[IOOp] = []
    offset = 0
    for i, size in enumerate(sizes):
        if i > 0 and rng.random() >= seq_frac:
            # Non-sequential jump to an aligned position in the extent.
            max_start = max(1, extent - size)
            offset = int(rng.integers(0, max_start))
        ops.append(IOOp(kind, fc.path, offset=offset, nbytes=size, rank=fc.rank))
        offset += size
    return ops


def synthesize_from_profile(
    profile: JobProfile, seed: int = 0, include_think_time: bool = True
) -> OpStreamWorkload:
    """Generate a representative workload from a job profile.

    Parameters
    ----------
    profile:
        The characterization profile (Darshan-like).
    seed:
        Determinism seed.
    include_think_time:
        Insert COMPUTE ops reproducing the job's non-I/O time.
    """
    per_rank_ops: Dict[int, List[IOOp]] = {r: [] for r in range(profile.n_ranks)}

    # Recreate the directory skeleton first (rank 0), so the synthetic
    # workload runs on a fresh file system: the profile's paths imply it.
    dirs: List[str] = []
    for path, _rank in profile.per_file:
        parent = path.rsplit("/", 1)[0]
        chain = []
        while parent and parent != "/":
            chain.append(parent)
            parent = parent.rsplit("/", 1)[0]
        for d in reversed(chain):
            if d not in dirs:
                dirs.append(d)
    dirs.sort(key=lambda d: d.count("/"))
    for d in dirs:
        per_rank_ops[0].append(
            IOOp(OpKind.MKDIR, d, rank=0, meta={"exist_ok": True})
        )
    if dirs:
        for rank in per_rank_ops:
            per_rank_ops[rank].append(IOOp(OpKind.BARRIER, rank=rank))

    for (path, rank), fc in sorted(profile.per_file.items()):
        if rank < 0 or rank >= profile.n_ranks:
            continue
        # crc32 rather than hash(): stable across interpreter runs.
        rng = np.random.default_rng(
            seed + zlib.crc32(f"{path}:{rank}".encode("utf-8"))
        )
        stream: List[IOOp] = []
        open_meta = {}
        if fc.stripe_count is not None:
            open_meta["stripe_count"] = fc.stripe_count
        stream.append(IOOp(OpKind.OPEN, path, rank=rank, meta=open_meta))
        writes = _synthesize_stream(fc, OpKind.WRITE, rng)
        reads = _synthesize_stream(fc, OpKind.READ, rng)
        # Interleave in the common order: writes then reads is arbitrary;
        # shuffle deterministically to avoid phase artifacts.
        merged = writes + reads
        stream.extend(merged)
        stream.append(IOOp(OpKind.CLOSE, path, rank=rank))
        per_rank_ops[rank].extend(stream)

    if include_think_time and profile.duration > 0 and profile.n_ranks > 0:
        io_per_rank = profile.job.io_time / profile.n_ranks
        think_total = max(0.0, profile.duration - io_per_rank)
        for rank, ops in per_rank_ops.items():
            n_io = max(1, len(ops))
            gap = think_total / n_io
            if gap <= 0:
                continue
            interleaved: List[IOOp] = []
            for op in ops:
                interleaved.append(IOOp(OpKind.COMPUTE, duration=gap, rank=rank))
                interleaved.append(op)
            per_rank_ops[rank] = interleaved

    streams = [per_rank_ops[r] for r in range(profile.n_ranks)]
    # Ranks that touched no files still participate (empty streams).
    return OpStreamWorkload(f"synth[{profile.job_name}]", streams)
