"""A CODES-I/O-language-like workload description DSL.

Paper Sec. IV-B-4: "An example is the CODES I/O language [59], which
allows researchers to model real or artificial I/O workloads using
domain-specific language constructs."

Grammar (informal)::

    workload <name> {
        ranks <int>;
        [seed <int>;]
        <statement>*
    }

    statement :=
        compute <float>s ;
      | barrier ;
      | mkdir "<path>" ;
      | create shared|fpp "<path>" [stripe <int>] ;
      | write  shared|fpp "<path>" size <SIZE> [transfer <SIZE>]
               [pattern sequential|random] ;
      | read   shared|fpp "<path>" size <SIZE> [transfer <SIZE>]
               [pattern sequential|random] ;
      | stat   [shared|fpp] "<path>" ;
      | fsync  [shared|fpp] "<path>" ;
      | close  [shared|fpp] "<path>" ;
      | unlink [shared|fpp] "<path>" ;
      | loop <int> [as <name>] { <statement>* }

Loops may bind an index variable (``loop 64 as i { ... }``); paths then
substitute ``${i}`` with the current index, which is how mdtest-style
many-files patterns are expressed::

    loop 64 as i {
        create fpp "/md/f${i}";
        close "/md/f${i}";
    }

Sizes accept ``B``/``KB``/``MB``/``GB`` suffixes (binary, e.g. ``4MB`` =
4 MiB).  Semantics of ``shared`` data ops: each rank transfers ``size``
bytes into its own block at ``rank * size`` (IOR-style); ``fpp`` targets
``<path>.<rank>`` starting at that file's running cursor.  ``random``
permutes the transfer order within the block (seeded).

Example::

    workload checkpoint {
        ranks 4;
        loop 3 {
            compute 1.5s;
            barrier;
            create shared "/ckpt" stripe -1;
            write shared "/ckpt" size 16MB transfer 4MB;
            fsync "/ckpt";
            close "/ckpt";
        }
    }
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.ops import IOOp, OpKind
from repro.workloads.base import OpStreamWorkload

_SIZE_RE = re.compile(r"^(\d+(?:\.\d+)?)(B|KB|MB|GB)?$", re.IGNORECASE)
_TIME_RE = re.compile(r"^(\d+(?:\.\d+)?)(s|ms|us)$", re.IGNORECASE)
_UNITS = {"B": 1, "KB": 1024, "MB": 1024**2, "GB": 1024**3}
_TIME_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6}


class DSLError(ValueError):
    """Raised on any lexing/parsing/semantic error, with a line number."""


# -- lexer ---------------------------------------------------------------------


@dataclass(frozen=True)
class _Token:
    kind: str  # "word" | "string" | "punct"
    value: str
    line: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
        elif ch.isspace():
            i += 1
        elif ch == "#":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == '"':
            j = text.find('"', i + 1)
            if j < 0:
                raise DSLError(f"line {line}: unterminated string")
            tokens.append(_Token("string", text[i + 1 : j], line))
            i = j + 1
        elif ch in "{};":
            tokens.append(_Token("punct", ch, line))
            i += 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in '{};"#':
                j += 1
            tokens.append(_Token("word", text[i:j], line))
            i = j
    return tokens


def _parse_size(token: _Token) -> int:
    m = _SIZE_RE.match(token.value)
    if not m:
        raise DSLError(f"line {token.line}: bad size {token.value!r}")
    value = float(m.group(1))
    unit = (m.group(2) or "B").upper()
    return int(value * _UNITS[unit])


def _parse_time(token: _Token) -> float:
    m = _TIME_RE.match(token.value)
    if not m:
        raise DSLError(f"line {token.line}: bad duration {token.value!r} (use e.g. 1.5s)")
    return float(m.group(1)) * _TIME_UNITS[m.group(2).lower()]


# -- AST ----------------------------------------------------------------------


@dataclass
class _Stmt:
    line: int


@dataclass
class _Simple(_Stmt):
    op: str
    path: str = ""
    mode: str = ""  # shared | fpp
    size: int = 0
    transfer: int = 0
    pattern: str = "sequential"
    stripe: Optional[int] = None
    seconds: float = 0.0


@dataclass
class _LoopStmt(_Stmt):
    count: int = 0
    var: Optional[str] = None
    body: List[_Stmt] = field(default_factory=list)


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self, expect: Optional[str] = None) -> _Token:
        tok = self.peek()
        if tok is None:
            raise DSLError("unexpected end of input")
        if expect is not None and tok.value != expect:
            raise DSLError(f"line {tok.line}: expected {expect!r}, got {tok.value!r}")
        self.pos += 1
        return tok

    def next_kind(self, kind: str) -> _Token:
        tok = self.next()
        if tok.kind != kind:
            raise DSLError(f"line {tok.line}: expected {kind}, got {tok.value!r}")
        return tok

    def parse(self) -> Tuple[str, int, int, List[_Stmt]]:
        self.next(expect="workload")
        name = self.next_kind("word").value
        self.next(expect="{")
        self.next(expect="ranks")
        ranks_tok = self.next_kind("word")
        try:
            ranks = int(ranks_tok.value)
        except ValueError:
            raise DSLError(f"line {ranks_tok.line}: ranks must be an integer")
        if ranks <= 0:
            raise DSLError(f"line {ranks_tok.line}: ranks must be positive")
        self.next(expect=";")
        seed = 0
        if self.peek() and self.peek().value == "seed":
            self.next()
            seed = int(self.next_kind("word").value)
            self.next(expect=";")
        body = self.parse_block()
        if self.peek() is not None:
            tok = self.peek()
            raise DSLError(f"line {tok.line}: trailing input {tok.value!r}")
        return name, ranks, seed, body

    def parse_block(self) -> List[_Stmt]:
        out: List[_Stmt] = []
        while True:
            tok = self.peek()
            if tok is None:
                raise DSLError("unexpected end of input: missing '}'")
            if tok.value == "}":
                self.next()
                return out
            out.append(self.parse_stmt())

    def parse_stmt(self) -> _Stmt:
        tok = self.next_kind("word")
        op = tok.value
        if op == "loop":
            count_tok = self.next_kind("word")
            try:
                count = int(count_tok.value)
            except ValueError:
                raise DSLError(f"line {count_tok.line}: loop count must be an integer")
            if count <= 0:
                raise DSLError(f"line {count_tok.line}: loop count must be positive")
            var = None
            if self.peek() and self.peek().value == "as":
                self.next()
                var = self.next_kind("word").value
                if not var.isidentifier():
                    raise DSLError(
                        f"line {count_tok.line}: bad loop variable {var!r}"
                    )
            self.next(expect="{")
            body = self.parse_block()
            return _LoopStmt(line=tok.line, count=count, var=var, body=body)
        if op == "compute":
            seconds = _parse_time(self.next_kind("word"))
            self.next(expect=";")
            return _Simple(line=tok.line, op="compute", seconds=seconds)
        if op == "barrier":
            self.next(expect=";")
            return _Simple(line=tok.line, op="barrier")
        if op in ("mkdir", "stat", "fsync", "close", "unlink"):
            mode = ""
            if (
                op != "mkdir"
                and self.peek() is not None
                and self.peek().value in ("shared", "fpp")
            ):
                mode = self.next().value
            path = self.next_kind("string").value
            self.next(expect=";")
            return _Simple(line=tok.line, op=op, path=path, mode=mode)
        if op == "create":
            mode = self.next_kind("word").value
            if mode not in ("shared", "fpp"):
                raise DSLError(f"line {tok.line}: create needs shared|fpp, got {mode!r}")
            path = self.next_kind("string").value
            stmt = _Simple(line=tok.line, op="create", path=path, mode=mode)
            if self.peek() and self.peek().value == "stripe":
                self.next()
                stmt.stripe = int(self.next_kind("word").value)
            self.next(expect=";")
            return stmt
        if op in ("write", "read"):
            mode = self.next_kind("word").value
            if mode not in ("shared", "fpp"):
                raise DSLError(f"line {tok.line}: {op} needs shared|fpp, got {mode!r}")
            path = self.next_kind("string").value
            self.next(expect="size")
            size = _parse_size(self.next_kind("word"))
            stmt = _Simple(
                line=tok.line, op=op, path=path, mode=mode, size=size, transfer=size
            )
            while self.peek() and self.peek().value in ("transfer", "pattern"):
                word = self.next().value
                if word == "transfer":
                    stmt.transfer = _parse_size(self.next_kind("word"))
                else:
                    pattern = self.next_kind("word").value
                    if pattern not in ("sequential", "random"):
                        raise DSLError(
                            f"line {tok.line}: pattern must be sequential|random"
                        )
                    stmt.pattern = pattern
            self.next(expect=";")
            if stmt.size <= 0 or stmt.transfer <= 0:
                raise DSLError(f"line {tok.line}: size/transfer must be positive")
            if stmt.size % stmt.transfer:
                raise DSLError(
                    f"line {tok.line}: transfer must divide size"
                )
            return stmt
        raise DSLError(f"line {tok.line}: unknown statement {op!r}")


# -- compiler ------------------------------------------------------------------


class _Compiler:
    def __init__(self, name: str, n_ranks: int, seed: int):
        self.name = name
        self.n_ranks = n_ranks
        self.seed = seed
        self._cursors: dict = {}

    def compile(self, body: List[_Stmt]) -> OpStreamWorkload:
        per_rank: List[List[IOOp]] = []
        for rank in range(self.n_ranks):
            self._cursors = {}
            per_rank.append(list(self._emit_block(body, rank, {})))
        return OpStreamWorkload(self.name, per_rank)

    @staticmethod
    def _subst(path: str, env: dict, line: int) -> str:
        """Substitute ``${var}`` loop variables in a path."""
        if "${" not in path:
            return path
        out = path
        for name, value in env.items():
            out = out.replace("${" + name + "}", str(value))
        if "${" in out:
            missing = out[out.index("${") : out.index("}", out.index("${")) + 1]
            raise DSLError(f"line {line}: unbound variable {missing} in path")
        return out

    def _path_for(self, stmt: _Simple, rank: int, env: dict) -> str:
        path = self._subst(stmt.path, env, stmt.line)
        if stmt.mode == "fpp":
            return f"{path}.{rank:08d}"
        return path

    def _emit_block(self, body: List[_Stmt], rank: int, env: dict) -> Iterator[IOOp]:
        for stmt in body:
            if isinstance(stmt, _LoopStmt):
                for i in range(stmt.count):
                    inner = env
                    if stmt.var is not None:
                        inner = dict(env)
                        inner[stmt.var] = i
                    yield from self._emit_block(stmt.body, rank, inner)
                continue
            yield from self._emit_simple(stmt, rank, env)

    def _emit_simple(self, stmt: _Simple, rank: int, env: dict) -> Iterator[IOOp]:
        op = stmt.op
        if op == "compute":
            yield IOOp(OpKind.COMPUTE, duration=stmt.seconds, rank=rank)
        elif op == "barrier":
            yield IOOp(OpKind.BARRIER, rank=rank)
        elif op == "mkdir":
            if rank == 0:
                yield IOOp(
                    OpKind.MKDIR, self._subst(stmt.path, env, stmt.line),
                    rank=rank, meta={"exist_ok": True},
                )
            yield IOOp(OpKind.BARRIER, rank=rank)
        elif op in ("stat", "fsync", "unlink", "close"):
            kind = {
                "stat": OpKind.STAT,
                "fsync": OpKind.FSYNC,
                "unlink": OpKind.UNLINK,
                "close": OpKind.CLOSE,
            }[op]
            # Metadata statements accept an optional shared|fpp mode; fpp
            # targets this rank's file, the default targets the literal path.
            if stmt.mode == "fpp":
                path = self._path_for(stmt, rank, env)
            else:
                path = self._subst(stmt.path, env, stmt.line)
            yield IOOp(kind, path, rank=rank)
        elif op == "create":
            path = self._path_for(stmt, rank, env)
            meta = {}
            if stmt.stripe is not None:
                meta["stripe_count"] = stmt.stripe
            if stmt.mode == "fpp" or rank == 0:
                yield IOOp(OpKind.CREATE, path, rank=rank, meta=meta)
            yield IOOp(OpKind.BARRIER, rank=rank)
        elif op in ("write", "read"):
            path = self._path_for(stmt, rank, env)
            kind = OpKind.WRITE if op == "write" else OpKind.READ
            cursor_key = (path, stmt.mode)
            base = self._cursors.get(cursor_key, 0)
            if stmt.mode == "shared":
                start = base + rank * stmt.size
            else:
                start = base
            n_transfers = stmt.size // stmt.transfer
            order = np.arange(n_transfers)
            if stmt.pattern == "random":
                rng = np.random.default_rng(self.seed + rank * 9973 + stmt.line)
                order = rng.permutation(order)
            for i in order:
                yield IOOp(
                    kind,
                    path,
                    offset=start + int(i) * stmt.transfer,
                    nbytes=stmt.transfer,
                    rank=rank,
                )
            if stmt.mode == "shared":
                self._cursors[cursor_key] = base + self.n_ranks * stmt.size
            else:
                self._cursors[cursor_key] = base + stmt.size
        else:  # pragma: no cover - parser guarantees exhaustiveness
            raise DSLError(f"line {stmt.line}: unknown op {op!r}")


def parse_workload(text: str) -> OpStreamWorkload:
    """Parse a DSL description into a runnable workload.

    Raises :class:`DSLError` with a line number on any problem.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise DSLError("empty workload description")
    name, ranks, seed, body = _Parser(tokens).parse()
    return _Compiler(name, ranks, seed).compile(body)
