"""Command-line interface: ``repro-io``.

Subcommands::

    repro-io figures [1|2|3|4|all]     render the paper's figures
    repro-io taxonomy [--modules]      print the Sec. IV taxonomy tree
    repro-io corpus                    survey-corpus distributions
    repro-io experiment <id>|all       run reproduction experiments
                                       (--jobs N fans out over processes,
                                       --seeds a,b,c sweeps seeds, results
                                       are cached under results/cache;
                                       --no-cache forces recomputation;
                                       --trace/--metrics enable the
                                       simulator's self-telemetry)
    repro-io scenario list             named scenario presets
    repro-io scenario run <name|file>  build + run one declared scenario
    repro-io scenario sweep <name|file> key=v1,v2 ...
                                       cartesian sweep over a base
                                       scenario (--jobs fans out, points
                                       are cached, a sweep manifest
                                       records per-point provenance)
    repro-io telemetry <file|token>    summarize a trace / manifest /
                                       metrics / timeseries / sweep JSON
                                       -- a file path, or a store token
                                       (run id, ref, digest, 'latest')
    repro-io watch [dir|file]          live monitor: tails a running
                                       sweep's sweep-progress.json or a
                                       service's service-jobs.json
                                       (--fail-on-errors exits nonzero
                                       on any failed point/job)
    repro-io serve                     run the multi-tenant run service:
                                       an async job server over the
                                       store with fair-share scheduling,
                                       digest coalescing and warm hits
    repro-io submit <name|file> [k=v1,v2 ...]
                                       submit a scenario or sweep to a
                                       running service (discovery via
                                       results/service.json)
    repro-io jobs list|show|cancel|stats|shutdown
                                       inspect or control a running
                                       service
    repro-io loadgen                   hammer a service with simulated
                                       tenants; reports p50/p99 latency,
                                       throughput, store-hit ratio
    repro-io store ls|show|diff|gc|verify|export|migrate|table
                                       inspect the content-addressed run
                                       store (results/store): list runs
                                       and refs, show artifacts, diff two
                                       runs by content, collect garbage,
                                       check integrity, bundle for
                                       sharing, migrate a legacy
                                       results/ layout, or regenerate
                                       the EXPERIMENTS table from stored
                                       records without re-running
    repro-io run-dsl <file>            run a DSL workload on a simulated
                                       cluster and print its profile
    repro-io cycle                     run one evaluation-cycle iteration

Global flags: ``--log-level debug|info|warning|error`` configures stdlib
logging for every ``repro.*`` module-level logger.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

log = logging.getLogger(__name__)


def _cmd_figures(args) -> int:
    from repro.cluster import medium_cluster
    from repro.survey.figures import (
        fig1_platform,
        fig2_stack,
        fig3_distribution,
        fig4_cycle,
    )

    renders = {
        "1": lambda: fig1_platform(medium_cluster()),
        "2": fig2_stack,
        "3": fig3_distribution,
        "4": fig4_cycle,
    }
    which = [args.figure] if args.figure != "all" else ["1", "2", "3", "4"]
    for key in which:
        print(renders[key]())
        print()
    return 0


def _cmd_taxonomy(args) -> int:
    from repro.core.taxonomy import render_tree

    print(render_tree(show_modules=args.modules))
    return 0


def _cmd_corpus(args) -> int:
    from repro.survey.analysis import (
        distribution_by_publisher,
        distribution_by_type,
        distribution_by_year,
        taxonomy_coverage,
    )

    print("by type   :", {k: f"{v:.1f}%" for k, v in distribution_by_type().items()})
    print("by pub    :", {k: f"{v:.1f}%" for k, v in distribution_by_publisher().items()})
    print("by year   :", distribution_by_year())
    print("by category:")
    for cat, n in taxonomy_coverage().items():
        print(f"  {cat:<35} {n}")
    return 0


def _cmd_experiment(args) -> int:
    from repro import telemetry
    from repro.core.experiment import ResultsCollector
    from repro.experiments import ALL_EXPERIMENTS
    from repro.experiments.runner import run_experiments

    want_telemetry = bool(
        args.trace or args.metrics or args.metrics_json or args.series
    )
    if want_telemetry:
        telemetry.enable()

    ids = list(ALL_EXPERIMENTS) if args.id == "all" else [args.id.upper()]
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {unknown}; have {sorted(ALL_EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    if args.seeds:
        try:
            seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
        except ValueError:
            print(f"bad --seeds value {args.seeds!r} (want e.g. 0,1,2)",
                  file=sys.stderr)
            return 2
        if not seeds:
            print("--seeds parsed to an empty list", file=sys.stderr)
            return 2
    else:
        seeds = [args.seed]
    kwargs = dict(
        seeds=seeds,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        manifest=not args.no_manifest,
        fail_fast=args.fail_fast,
    )
    if want_telemetry:
        with telemetry.span(
            "repro-io experiment", cat="cli",
            ids=len(ids), seeds=len(seeds), jobs=args.jobs,
        ):
            results = run_experiments(ids, **kwargs)
    else:
        results = run_experiments(ids, **kwargs)
    collector = ResultsCollector()
    failed = 0
    errored = 0
    for res in results:
        record = res.record
        if record is None:
            print(f"[{res.experiment_id}#s{res.seed}] FAILED: {res.error}")
            print()
            errored += 1
            continue
        key = record.id if len(seeds) == 1 else f"{record.id}#s{res.seed}"
        collector.records[key] = record
        print(record.summary())
        print()
        if record.supported is False:
            failed += 1
    n_cached = sum(1 for r in results if r.cached)
    print(
        f"{len(ids)} experiment(s) x {len(seeds)} seed(s): "
        f"{len(results) - n_cached} computed, {n_cached} from cache "
        f"(jobs={args.jobs})"
        + (f", {errored} FAILED" if errored else "")
    )
    if args.json:
        collector.save(args.json)
        print(f"results written to {args.json}")
    if args.trace:
        from repro.telemetry.collect import write_merged_chrome

        path = write_merged_chrome(args.trace)
        n_remote = sum(
            len(s.get("spans", ())) for s in telemetry.TELEMETRY.remote
        )
        print(f"telemetry trace written to {path} "
              f"({len(telemetry.TELEMETRY.tracer)} local + {n_remote} worker "
              f"span(s); load in Perfetto or chrome://tracing)")
    if args.metrics:
        print()
        print("-- self-telemetry metrics " + "-" * 34)
        print(telemetry.TELEMETRY.metrics.render_text())
    if args.series:
        print()
        print("-- simulation-time series " + "-" * 34)
        print(telemetry.TELEMETRY.series.render_text())
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            fh.write(telemetry.TELEMETRY.metrics.render_json())
        print(f"metrics JSON written to {args.metrics_json}")
    return 1 if failed or errored else 0


def _scenario_spec(ref: str, seed: int):
    """Resolve a scenario reference: a preset name or a JSON file path."""
    from pathlib import Path

    from repro.scenario import ScenarioSpec, get_scenario

    if Path(ref).is_file() or ref.endswith(".json"):
        with open(ref, "r", encoding="utf-8") as fh:
            return ScenarioSpec.from_json(fh.read()).with_seed(seed).validate()
    return get_scenario(ref, seed)


def _parse_sweep_value(text: str):
    """Coerce one sweep value: int, float, bool, else string."""
    low = text.strip().lower()
    if low in ("true", "false"):
        return low == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    return text.strip()


def _parse_grid(items) -> dict:
    """Parse ``key=v1,v2`` grid axes; raises ValueError on bad input."""
    grid = {}
    for item in items:
        if "=" not in item:
            raise ValueError(
                f"bad sweep parameter {item!r} (want key=v1,v2,...)")
        key, _, values = item.partition("=")
        grid[key] = [_parse_sweep_value(v) for v in values.split(",") if v]
        if not grid[key]:
            raise ValueError(f"no values for sweep parameter {key!r}")
    return grid


def _cmd_scenario(args) -> int:
    from repro.scenario import ScenarioError

    try:
        if args.action == "list":
            from repro.scenario import get_scenario, list_scenarios

            for name in list_scenarios():
                print(f"{name:<16} {get_scenario(name, args.seed).describe()}")
            return 0

        if args.action == "run":
            from repro import telemetry
            from repro.scenario import run_scenario

            want_telemetry = bool(
                args.metrics or args.metrics_json or args.trace or args.series
            )
            if want_telemetry:
                telemetry.enable()
            spec = _scenario_spec(args.scenario, args.seed)
            run = run_scenario(
                spec,
                engine=args.engine,
                engine_backend=args.engine_backend,
                engine_workers=args.engine_workers,
            )
            print(spec.describe())
            print(f"scenario digest: {spec.digest()[:16]}")
            print(run.summary())
            for sr in run.scale_results:
                backend = f"/{sr.backend}" if sr.backend else ""
                stats = ", ".join(
                    f"{k}={v:.2f}" if isinstance(v, float) else f"{k}={v}"
                    for k, v in sorted(sr.stats.items())
                )
                print(
                    f"  scale engine {sr.engine}{backend}: "
                    f"{sr.events} events, digest {sr.digest[:16]}"
                    + (f" ({stats})" if stats else "")
                )
            if args.json:
                with open(args.json, "w", encoding="utf-8") as fh:
                    json.dump(run.to_dict(), fh, indent=1)
                print(f"results written to {args.json}")
            trace_doc = None
            if args.trace:
                from repro.telemetry.collect import (
                    merged_chrome_trace,
                    write_merged_chrome,
                )

                trace_doc = merged_chrome_trace()
                path = write_merged_chrome(args.trace)
                pids = trace_doc["otherData"].get("processes", [])
                print(f"telemetry trace written to {path} "
                      f"({len(pids)} process track(s); load in Perfetto or "
                      f"chrome://tracing)")
            if args.metrics:
                print()
                print("-- self-telemetry metrics " + "-" * 34)
                print(telemetry.TELEMETRY.metrics.render_text())
            if args.series:
                print()
                print("-- simulation-time series " + "-" * 34)
                print(telemetry.TELEMETRY.series.render_text())
            if args.metrics_json:
                with open(args.metrics_json, "w", encoding="utf-8") as fh:
                    fh.write(telemetry.TELEMETRY.metrics.render_json())
                print(f"metrics JSON written to {args.metrics_json}")
            if want_telemetry and not args.no_store:
                _store_scenario_telemetry(args, spec, trace_doc)
            return 0

        # sweep
        from repro.scenario import run_sweep

        spec = _scenario_spec(args.scenario, args.seed)
        try:
            grid = _parse_grid(args.params)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if not grid:
            print("sweep needs at least one key=v1,v2 parameter", file=sys.stderr)
            return 2
        results = run_sweep(
            spec, grid,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            manifest=not args.no_manifest,
            fail_fast=args.fail_fast,
        )
        errored = 0
        for r in results:
            if r.failed:
                print(f"{r.point.name:<56} FAILED: {r.error}")
                errored += 1
                continue
            o = r.outcome
            origin = "cache" if r.cached else f"{r.seconds:.2f}s"
            mb_w = o.get("bytes_written", 0) / 1e6
            mb_r = o.get("bytes_read", 0) / 1e6
            print(f"{r.point.name:<56} {o.get('duration', 0.0):8.3f}s sim  "
                  f"W {mb_w:8.1f} MB  R {mb_r:8.1f} MB  [{origin}]")
        n_cached = sum(1 for r in results if r.cached)
        print(f"{len(results)} point(s): {len(results) - n_cached} computed, "
              f"{n_cached} from cache (jobs={args.jobs})"
              + (f", {errored} FAILED" if errored else ""))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(
                    [{"name": r.point.name, "overrides": r.point.overrides,
                      "cached": r.cached, "outcome": r.outcome,
                      **({"error": r.error} if r.failed else {})}
                     for r in results],
                    fh, indent=1,
                )
            print(f"results written to {args.json}")
        return 1 if errored else 0
    except ScenarioError as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot read scenario: {exc}", file=sys.stderr)
        return 2


def _store_scenario_telemetry(args, spec, trace_doc) -> None:
    """Land a telemetry-enabled scenario run's trace/metrics/series in the
    run store, behind ``telemetry/<scenario digest16>-*`` refs.

    The loose ``--trace``/``--metrics-json`` files remain (easy to open in
    Perfetto), but the store copies are the durable, content-addressed
    record -- ``repro-io telemetry telemetry/<digest16>-series`` works on
    any machine holding the store.
    """
    import time as _time

    from repro import telemetry
    from repro.store import RunArtifact, RunStore, StoreError

    if trace_doc is None:
        from repro.telemetry.collect import merged_chrome_trace

        trace_doc = merged_chrome_trace()
    d16 = spec.digest()[:16]
    meta = {"scenario": spec.name, "scenario_digest": spec.digest(),
            "created": _time.time()}
    try:
        store = RunStore(args.store_dir)
        stored = {}
        for label, artifact in (
            ("trace", RunArtifact.from_trace(trace_doc)),
            ("metrics",
             RunArtifact.from_metrics(telemetry.TELEMETRY.metrics.to_dict())),
            ("series",
             RunArtifact.from_timeseries(telemetry.TELEMETRY.series.to_dict())),
        ):
            digest = store.put(artifact)
            store.set_ref(f"telemetry/{d16}-{label}", digest, meta=meta)
            stored[label] = digest
        print("telemetry stored: " + ", ".join(
            f"{label} {digest[:16]}" for label, digest in stored.items()
        ) + f"  (refs telemetry/{d16}-*)")
    except (StoreError, OSError) as exc:
        log.warning("could not store telemetry artifacts: %s", exc)


def _cmd_telemetry(args) -> int:
    """Summarize a telemetry artifact (trace / manifest / metrics / sweep).

    ``args.file`` is a JSON file path, or -- when no such file exists -- a
    run-store token (run id, ref name, digest or digest prefix, or
    ``latest``) resolved against ``--store-dir``.
    """
    from pathlib import Path

    from repro.scenario.sweep import SWEEP_PROGRESS_SCHEMA, SWEEP_SCHEMA
    from repro.telemetry import (
        MANIFEST_SCHEMA,
        METRICS_SCHEMA,
        TIMESERIES_SCHEMA,
        cache_hit_ratio,
        validate_chrome_trace,
    )

    if Path(args.file).is_file():
        try:
            with open(args.file, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"cannot read {args.file}: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.store import RunStore, StoreError

        store = RunStore(args.store_dir)
        try:
            artifact = store.get(store.resolve(args.file))
        except StoreError as exc:
            print(
                f"cannot read {args.file}: not a file, and not resolvable "
                f"in the run store at {args.store_dir} ({exc})",
                file=sys.stderr,
            )
            return 2
        if artifact.kind == "experiment_record":
            print(artifact.to_record().summary())
            return 0
        doc = dict(artifact.payload)

    if isinstance(doc, dict) and "traceEvents" in doc:
        problems = validate_chrome_trace(doc)
        if problems:
            print(f"invalid trace: {'; '.join(problems[:5])}", file=sys.stderr)
            return 2
        return _summarize_trace(doc, top=args.top)
    if isinstance(doc, dict) and doc.get("schema") == MANIFEST_SCHEMA:
        return _summarize_manifest(doc, cache_hit_ratio, top=args.top)
    if isinstance(doc, dict) and doc.get("schema") == METRICS_SCHEMA:
        return _summarize_metrics(doc)
    if isinstance(doc, dict) and doc.get("schema") == TIMESERIES_SCHEMA:
        return _summarize_series(doc, top=args.top)
    if isinstance(doc, dict) and doc.get("schema") == SWEEP_SCHEMA:
        return _summarize_sweep(doc, top=args.top)
    if isinstance(doc, dict) and doc.get("schema") == SWEEP_PROGRESS_SCHEMA:
        print(_render_sweep_progress(doc))
        return 0
    from repro.service.jobs import SERVICE_LEDGER_SCHEMA

    if isinstance(doc, dict) and doc.get("schema") == SERVICE_LEDGER_SCHEMA:
        print(_render_service_ledger(doc))
        return 0
    print(f"{args.file}: not a repro trace, manifest, metrics, timeseries, "
          f"sweep or service-ledger document", file=sys.stderr)
    return 2


def _summarize_trace(doc, top: int) -> int:
    spans = [ev for ev in doc["traceEvents"] if ev.get("ph") == "X"]
    if not spans:
        print("trace contains no complete spans")
        return 0
    # Self time: a span's duration minus its direct children's durations
    # (the exporter records parent_id in each event's args).
    child_us: dict = {}
    for ev in spans:
        parent = ev.get("args", {}).get("parent_id")
        if parent is not None:
            child_us[parent] = child_us.get(parent, 0.0) + ev["dur"]
    agg: dict = {}
    for ev in spans:
        name = ev["name"]
        entry = agg.setdefault(name, {"count": 0, "total": 0.0, "self": 0.0})
        entry["count"] += 1
        entry["total"] += ev["dur"]
        span_id = ev.get("args", {}).get("span_id")
        entry["self"] += max(0.0, ev["dur"] - child_us.get(span_id, 0.0))
    wall = max(ev["ts"] + ev["dur"] for ev in spans) - min(ev["ts"] for ev in spans)
    print(f"trace: {len(spans)} span(s), {wall / 1e3:.1f} ms wall")
    print(f"{'span':<28} {'count':>6} {'total ms':>10} {'self ms':>10}")
    ranked = sorted(agg.items(), key=lambda kv: kv[1]["self"], reverse=True)
    for name, entry in ranked[:top]:
        print(f"{name:<28} {entry['count']:>6} "
              f"{entry['total'] / 1e3:>10.2f} {entry['self'] / 1e3:>10.2f}")
    return 0


def _summarize_manifest(doc, cache_hit_ratio, top: int) -> int:
    cache = doc.get("cache", {})
    tasks = doc.get("tasks", [])
    host = doc.get("host", {})
    digest = doc.get("source_digest") or "?"
    print(f"manifest: {len(tasks)} task(s) "
          f"({len(doc.get('experiment_ids', []))} experiment(s) x "
          f"{len(doc.get('seeds', []))} seed(s)), jobs={doc.get('jobs')}")
    print(f"source digest: {digest[:16]}  host: {host.get('host', '?')} "
          f"python {host.get('python', '?')}")
    print(f"cache: {cache.get('hits', 0)} hit(s), {cache.get('fresh', 0)} "
          f"fresh, {cache.get('stale', 0)} stale, "
          f"{cache.get('corrupt', 0)} corrupt "
          f"-> hit ratio {cache_hit_ratio(doc):.0%}")
    print(f"wall: {doc.get('wall_seconds', 0.0):.2f}s")
    slowest = sorted(tasks, key=lambda t: t.get("seconds", 0.0), reverse=True)
    if slowest:
        print("slowest tasks:")
        for t in slowest[:top]:
            origin = "cache" if t.get("cached") else "fresh"
            print(f"  {t['id']}#s{t['seed']:<4} {t.get('seconds', 0.0):8.3f}s  "
                  f"({origin})")
    return 0


def _summarize_metrics(doc) -> int:
    metrics = doc.get("metrics", {})
    print(f"metrics: {len(metrics)} metric(s)")
    for name in sorted(metrics):
        m = metrics[name]
        if m.get("kind") == "histogram":
            print(f"  {m['kind']:<9} {name:<36} n={m.get('count', 0)} "
                  f"mean={m.get('mean', 0.0):.4g}")
        else:
            print(f"  {m['kind']:<9} {name:<36} {m.get('value')}")
    section = _partition_section(metrics)
    if section:
        print(section)
    section = _durability_section(metrics)
    if section:
        print(section)
    return 0


def _partition_section(metrics: dict) -> str:
    """Render the PartitionStats digest of a metrics document (windows,
    occupancy, cross-partition exchange traffic) -- empty string when the
    run never used the partitioned executor."""
    windows = metrics.get("des.partition.windows", {}).get("value", 0)
    if not windows:
        return ""
    events = metrics.get("des.partition.events", {}).get("value", 0)
    exchanged = metrics.get("des.partition.exchanged", {}).get("value", 0)
    lines = ["partitioned execution:"]
    frac = f" ({exchanged / events:.1%} of events)" if events else ""
    lines.append(
        f"  windows {windows}  events {events}  "
        f"cross-partition {exchanged}{frac}"
    )
    occ = metrics.get("des.partition.window_occupancy")
    if occ and occ.get("count"):
        lines.append(
            f"  window occupancy: mean {occ.get('mean', 0.0):.2f} "
            f"partition(s), max {occ.get('max', 0):g}"
        )
    per_p = []
    for name, m in sorted(metrics.items()):
        if name.startswith("des.partition.p") and name.endswith(".events"):
            per_p.append(f"{name[len('des.partition.'):-len('.events')]}="
                         f"{m.get('value', 0)}")
    if per_p:
        lines.append("  per-partition events: " + " ".join(per_p))
    return "\n".join(lines)


def _durability_section(metrics: dict) -> str:
    """Render the crash-recovery digest of a metrics document (journal
    write-ahead activity, boot replays, store scrub outcomes) -- empty
    string when neither the journal nor the scrubber ran."""

    def value(name):
        return metrics.get(name, {}).get("value", 0)

    records = value("service.journal.records")
    replayed = value("service.journal.replayed")
    passes = value("store.scrub.passes")
    if not (records or replayed or passes):
        return ""
    lines = ["durability:"]
    if records or replayed:
        lines.append(
            f"  journal: {records} record(s), "
            f"{value('service.journal.fsync_batches')} fsync batch(es), "
            f"{value('service.journal.compactions')} compaction(s), "
            f"{replayed} computation(s) replayed"
        )
    if passes:
        lines.append(
            f"  scrub: {passes} pass(es), "
            f"{value('store.scrub.scanned')} object(s) scanned, "
            f"{value('store.scrub.healed')} healed, "
            f"{value('store.scrub.quarantined')} quarantined"
        )
    return "\n".join(lines)


_SPARK_CHARS = " .:-=+*#%@"


def _sparkline(values, width: int = 32) -> str:
    """Down-sample ``values`` to ``width`` buckets of ASCII intensity."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    out = []
    n = len(values)
    for b in range(min(width, n)):
        chunk = values[b * n // width: max(b * n // width + 1,
                                           (b + 1) * n // width)]
        mean = sum(chunk) / len(chunk)
        idx = int((mean - lo) / span * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


def _summarize_series(doc, top: int) -> int:
    """Per-probe stats table plus busiest-component callouts for a
    ``repro.telemetry.timeseries/1`` document."""
    series = doc.get("series", [])
    total = sum(len(s.get("times", ())) for s in series)
    print(f"time series: {len(series)} series, {total} point(s)")
    if not series:
        return 0
    rows = []
    for s in series:
        values = s.get("values", [])
        if not values:
            continue
        ordered = sorted(values)
        rank = max(0, min(len(values) - 1, -(-99 * len(values) // 100) - 1))
        rows.append({
            "name": s.get("name", "?"),
            "unit": s.get("unit", ""),
            "n": len(values),
            "min": ordered[0],
            "mean": sum(values) / len(values),
            "p99": ordered[rank],
            "max": ordered[-1],
            "spark": _sparkline(values),
        })
    name_w = max(len(r["name"]) for r in rows)
    shown = rows
    if len(rows) > top:
        shown = sorted(rows, key=lambda r: r["mean"], reverse=True)[:top]
        print(f"(showing top {top} of {len(rows)} by mean; raise --top "
              f"for more)")
    print(f"{'series':<{name_w}} {'n':>6} {'min':>9} {'mean':>9} "
          f"{'p99':>9} {'max':>9}")
    for r in shown:
        print(f"{r['name']:<{name_w}} {r['n']:>6} {r['min']:>9.4g} "
              f"{r['mean']:>9.4g} {r['p99']:>9.4g} {r['max']:>9.4g}  "
              f"|{r['spark']}| {r['unit']}")
    for label, prefix in (("busiest OST", "pfs.ost."),
                          ("busiest OSS", "pfs.oss."),
                          ("busiest link", "net.")):
        candidates = [r for r in rows if r["name"].startswith(prefix)]
        if candidates:
            best = max(candidates, key=lambda r: r["mean"])
            print(f"{label}: {best['name']} "
                  f"(mean {best['mean']:.4g}, p99 {best['p99']:.4g})")
    return 0


def _summarize_sweep(doc, top: int) -> int:
    points = doc.get("points", [])
    grid = doc.get("grid", {})
    n_cached = sum(1 for p in points if p.get("cached"))
    print(f"sweep manifest: base {doc.get('base_scenario', '?')} "
          f"({str(doc.get('base_digest', '?'))[:16]}), "
          f"{len(points)} point(s), jobs={doc.get('jobs')}")
    print("grid: " + "; ".join(f"{k} in {v}" for k, v in grid.items()))
    print(f"source digest: {str(doc.get('source_digest', '?'))[:16]}  "
          f"host: {doc.get('host', {}).get('host', '?')}")
    print(f"cache: {n_cached} hit(s), {len(points) - n_cached} fresh; "
          f"wall {doc.get('wall_seconds', 0.0):.2f}s")
    slowest = sorted(points, key=lambda p: p.get("seconds", 0.0), reverse=True)
    if slowest:
        print("slowest points:")
        for p in slowest[:top]:
            origin = "cache" if p.get("cached") else "fresh"
            print(f"  {p.get('name', '?'):<56} {p.get('seconds', 0.0):8.3f}s  "
                  f"({origin})")
    return 0


def _render_sweep_progress(doc, now: Optional[float] = None) -> str:
    """Render one frame of the live sweep monitor from a
    ``repro.scenario.sweep.progress/1`` document."""
    import time as _time

    now = _time.time() if now is None else now
    counts = doc.get("counts", {})
    total = doc.get("total", 0) or 0
    cached = counts.get("cached", 0)
    done = counts.get("done", 0)
    failed = counts.get("failed", 0)
    pending = counts.get("pending", 0)
    complete = cached + done + failed
    jobs = doc.get("jobs", 1) or 1

    width = 40
    filled = int(width * complete / total) if total else width
    bar = "#" * filled + "-" * (width - filled)
    pct = (100.0 * complete / total) if total else 100.0

    lines = [
        f"sweep {doc.get('sweep', '?')}: {complete}/{total} point(s) "
        f"[{bar}] {pct:.0f}%",
        f"  cached {cached}  computed {done}  failed {failed}  "
        f"pending {pending}  (jobs={jobs})",
    ]
    served = cached + done
    if served:
        lines.append(f"  cache-hit ratio {cached / served:.0%}")
    # ETA from the mean wall-time of computed points, spread over the pool.
    seconds = [
        p.get("seconds", 0.0)
        for p in doc.get("points", {}).values()
        if p.get("status") == "done"
    ]
    if pending and seconds:
        eta = (sum(seconds) / len(seconds)) * pending / jobs
        lines.append(f"  ETA ~{eta:.0f}s ({len(seconds)} timed point(s), "
                     f"mean {sum(seconds) / len(seconds):.2f}s)")
    age = now - doc.get("updated", now)
    if doc.get("finished"):
        wall = doc.get("updated", now) - doc.get("started", now)
        lines.append(f"  finished in {wall:.1f}s")
    else:
        liveness = "workers alive" if age < 30 else "STALLED?"
        lines.append(f"  last update {age:.1f}s ago ({liveness})")
    slow = sorted(
        ((name, p) for name, p in doc.get("points", {}).items()
         if p.get("status") in ("done", "failed")),
        key=lambda kv: kv[1].get("seconds", 0.0), reverse=True,
    )
    for name, p in slow[:3]:
        mark = " FAILED" if p.get("status") == "failed" else ""
        lines.append(f"    {name:<52} {p.get('seconds', 0.0):7.2f}s{mark}")
    return "\n".join(lines)


def _render_service_ledger(doc, now: Optional[float] = None) -> str:
    """Render one frame of the service monitor from a
    ``repro.service.jobs/1`` job-ledger document."""
    import time as _time

    now = _time.time() if now is None else now
    counts = doc.get("counts", {})
    stats = doc.get("stats", {})
    total = doc.get("total", 0) or 0
    terminal = (
        counts.get("done", 0) + counts.get("failed", 0)
        + counts.get("cancelled", 0)
    )
    service = doc.get("service", {})
    width = 40
    filled = int(width * terminal / total) if total else width
    bar = "#" * filled + "-" * (width - filled)
    pct = (100.0 * terminal / total) if total else 100.0

    lines = [
        f"service {service.get('host', '?')}:{service.get('port', '?')} "
        f"(pid {service.get('pid', '?')}, workers={service.get('workers', '?')}): "
        f"{terminal}/{total} job(s) [{bar}] {pct:.0f}%",
        f"  queued {counts.get('queued', 0)}  running {counts.get('running', 0)}"
        f"  done {counts.get('done', 0)}  failed {counts.get('failed', 0)}"
        f"  cancelled {counts.get('cancelled', 0)}",
        f"  tasks: {stats.get('tasks_submitted', 0)} submitted, "
        f"{stats.get('computed', 0)} computed, "
        f"{stats.get('warm_hits', 0)} warm, "
        f"{stats.get('coalesced', 0)} coalesced, "
        f"{stats.get('requeued', 0)} requeued",
    ]
    tasks = stats.get("tasks_submitted", 0)
    if tasks:
        lines.append(
            f"  store-hit ratio {stats.get('warm_hits', 0) / tasks:.0%}"
            f"  (rejected: {stats.get('rejected_backpressure', 0)} "
            f"backpressure, {stats.get('rejected_quota', 0)} quota)"
        )
    journal = doc.get("journal")
    if journal:
        lines.append(
            f"  journal: {journal.get('records', 0)} record(s), "
            f"{journal.get('fsync_batches', 0)} fsync batch(es), "
            f"{journal.get('compactions', 0)} compaction(s); "
            f"{stats.get('replayed', 0)} replayed at boot"
        )
    scrub = doc.get("scrub", {})
    if scrub.get("runs"):
        lines.append(
            f"  scrub: {scrub.get('runs', 0)} pass(es), "
            f"{scrub.get('scanned', 0)} scanned, "
            f"{scrub.get('healed', 0)} healed, "
            f"{scrub.get('quarantined', 0)} quarantined"
        )
    tenants = doc.get("tenants", {})
    if tenants:
        top = sorted(tenants.items(), key=lambda kv: -kv[1])[:5]
        lines.append("  queued by tenant: " + ", ".join(
            f"{t}={n}" for t, n in top))
    failures = [
        (name, row) for name, row in doc.get("jobs", {}).items()
        if row.get("status") == "failed"
    ]
    for name, row in failures[-3:]:
        lines.append(
            f"    {name} ({row.get('tenant', '?')}) FAILED: "
            f"{str(row.get('error', '?'))[:80]}"
        )
    age = now - doc.get("updated", now)
    if doc.get("finished"):
        lines.append("  service stopped")
    else:
        liveness = "alive" if age < 30 else "STALLED?"
        lines.append(f"  last update {age:.1f}s ago ({liveness})")
    return "\n".join(lines)


def _cmd_watch(args) -> int:
    """Live monitor: tail a sweep progress ledger or a run-service job
    ledger (whichever the path resolves to)."""
    import time as _time
    from pathlib import Path

    from repro.scenario.sweep import SWEEP_PROGRESS_NAME, SWEEP_PROGRESS_SCHEMA
    from repro.service.jobs import SERVICE_LEDGER_NAME, SERVICE_LEDGER_SCHEMA

    renderers = {
        SWEEP_PROGRESS_SCHEMA: _render_sweep_progress,
        SERVICE_LEDGER_SCHEMA: _render_service_ledger,
    }
    path = Path(args.path)
    if path.is_dir():
        # A directory holds either (or both) ledgers; prefer the sweep
        # ledger for compatibility, fall back to the service one.
        candidates = [path / SWEEP_PROGRESS_NAME, path / SERVICE_LEDGER_NAME]
    else:
        candidates = [path]
    waited = 0.0
    while True:
        doc, doc_path = None, candidates[0]
        for candidate in candidates:
            try:
                with open(candidate, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
                doc_path = candidate
                break
            except FileNotFoundError:
                continue
            except ValueError:  # mid-write is impossible (atomic), but be safe
                continue
        if doc is not None and doc.get("schema") not in renderers:
            print(f"{doc_path}: not a sweep progress or service job "
                  f"document (schema={doc.get('schema')!r})", file=sys.stderr)
            return 2
        if doc is None:
            if args.once:
                print(f"no sweep progress or service job ledger at "
                      f"{' or '.join(str(c) for c in candidates)} (start one "
                      f"with `repro-io scenario sweep ...` or "
                      f"`repro-io serve`)", file=sys.stderr)
                return 2
            if waited == 0.0:
                print(f"waiting for {' or '.join(str(c) for c in candidates)} ...")
        else:
            print(renderers[doc["schema"]](doc))
            if args.once or doc.get("finished"):
                failed = (doc.get("counts", {}).get("failed", 0)
                          or doc.get("stats", {}).get("failed", 0))
                if args.fail_on_errors and failed:
                    print(f"{failed} failed point(s)/job(s)", file=sys.stderr)
                    return 1
                return 0
            print()
        if args.timeout and waited >= args.timeout:
            print(f"watch timed out after {waited:.0f}s", file=sys.stderr)
            return 1
        _time.sleep(args.interval)
        waited += args.interval


def _fmt_when(ts) -> str:
    import datetime

    try:
        return datetime.datetime.fromtimestamp(float(ts)).strftime(
            "%Y-%m-%d %H:%M:%S")
    except (TypeError, ValueError, OSError, OverflowError):
        return "?"


def _service_endpoint(args) -> "tuple[str, int]":
    """Resolve the service address: ``--address host:port`` beats the
    discovery file the server writes next to its store."""
    address = getattr(args, "address", None)
    if address:
        host, _, port = address.rpartition(":")
        return host or "127.0.0.1", int(port)
    from repro.service import load_discovery

    doc = load_discovery(getattr(args, "state_dir", "results"),
                         require_live=True)
    return doc["host"], doc["port"]


def _submit_scenario_ref(ref: str, seed: Optional[int]):
    """A submit payload: inline spec dict for files, name for presets."""
    from pathlib import Path

    if Path(ref).is_file() or ref.endswith(".json"):
        return _scenario_spec(ref, seed or 0).to_dict()
    return ref


def _cmd_serve(args) -> int:
    import asyncio
    from pathlib import Path

    from repro.service import RunService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        store_dir=Path(args.store_dir),
        workers=args.workers,
        queue_limit=args.queue_limit,
        tenant_quota=args.tenant_quota,
        use_cache=not args.no_cache,
        enable_chaos=args.enable_chaos,
        journal=args.journal,
        fsync_interval=args.fsync_interval,
        scrub_interval=args.scrub_interval,
    )
    service = RunService(config)

    async def _run() -> None:
        await service.start()
        print(f"run service listening on {service.host}:{service.port} "
              f"({config.workers} worker(s))")
        print(f"  store     {service.store.root}")
        print(f"  ledger    {service.ledger_path}")
        print(f"  discovery {service.discovery_path}")
        if config.journal:
            replayed = service.stats.get("replayed", 0)
            print(f"  journal   {config.resolved_journal_dir()}"
                  + (f" ({replayed} computation(s) replayed)"
                     if replayed else ""))
        if config.scrub_interval > 0:
            print(f"  scrub     every {config.scrub_interval:.0f}s")
        print(f"monitor with `repro-io watch {service.ledger_path.parent}`; "
              f"stop with Ctrl-C or `repro-io jobs shutdown`")
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nservice stopped")
    return 0


def _cmd_submit(args) -> int:
    import asyncio

    from repro.service import ServiceClient

    try:
        host, port = _service_endpoint(args)
    except (FileNotFoundError, ValueError, ConnectionError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        grid = _parse_grid(args.params) if args.params else None
        scenario = _submit_scenario_ref(args.scenario, args.seed)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    async def _run():
        async with await ServiceClient.connect(host, port) as client:
            return await client.submit(
                scenario,
                tenant=args.tenant,
                grid=grid,
                seed=args.seed,
                wait=not args.no_wait,
                idempotency_key=args.idempotency_key,
            )

    try:
        doc = asyncio.run(_run())
    except ConnectionError as exc:
        print(f"cannot reach service at {host}:{port}: {exc}",
              file=sys.stderr)
        return 2
    if doc.get("deduplicated"):
        print(f"idempotency key matched: joined existing job "
              f"{doc.get('job_id', '?')}")
    if args.no_wait:
        print(f"job {doc.get('job_id', '?')} {doc.get('state', '?')}: "
              f"{doc.get('total', 0)} task(s), {doc.get('warm', 0)} warm, "
              f"{doc.get('coalesced', 0)} coalesced")
        if doc.get("job_id"):
            print(f"await it with `repro-io jobs show {doc['job_id']}`")
        return 0 if doc.get("ok") else 1
    if "job_id" not in doc:  # rejected at admission
        print(f"submission rejected: {doc.get('reason') or doc.get('error')}",
              file=sys.stderr)
        return 1
    _print_job_doc(doc, latency=doc.get("latency"))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({k: v for k, v in doc.items() if k != "ok"}, fh, indent=1)
        print(f"job document written to {args.json}")
    return 0 if doc.get("state") == "done" else 1


def _print_job_doc(job: dict, latency=None) -> None:
    head = (f"job {job.get('job_id', '?')} [{job.get('state', '?')}] "
            f"tenant={job.get('tenant', '?')} kind={job.get('kind', '?')}: "
            f"{job.get('total', 0)} task(s), {job.get('warm', 0)} warm, "
            f"{job.get('coalesced', 0)} coalesced")
    if latency is not None:
        head += f"  ({latency:.3f}s)"
    print(head)
    if job.get("run_id"):
        print(f"  run {job['run_id']}")
    for task in job.get("tasks", ()):
        origin = "warm" if task.get("cached") else f"{task.get('seconds', 0.0):.2f}s"
        line = (f"  {task.get('name', '?'):<48} {task.get('state', '?'):<9} "
                f"[{origin}]")
        if task.get("artifact"):
            line += f" {task['artifact'][:16]}"
        print(line)
        if task.get("error"):
            print(f"    ERROR: {task['error']}")


def _cmd_jobs(args) -> int:
    import asyncio

    from repro.service import ServiceClient

    try:
        host, port = _service_endpoint(args)
    except (FileNotFoundError, ValueError, ConnectionError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    async def _run():
        async with await ServiceClient.connect(host, port) as client:
            if args.action == "list":
                return await client.jobs(tenant=args.tenant)
            if args.action == "show":
                if args.wait:
                    return await client.wait(args.job_id)
                return await client.status(args.job_id)
            if args.action == "cancel":
                return await client.cancel(
                    job_id=args.job_id, tenant=args.tenant)
            if args.action == "stats":
                return await client.stats()
            if args.action == "chaos-kill":
                return await client.chaos_kill()
            if args.action == "shutdown":
                return await client.shutdown(drain=args.drain)
            raise AssertionError(args.action)

    try:
        doc = asyncio.run(_run())
    except ConnectionError as exc:
        print(f"cannot reach service at {host}:{port}: {exc}",
              file=sys.stderr)
        return 2
    if not doc.get("ok", True) and doc.get("error"):
        print(f"error: {doc['error']}", file=sys.stderr)
        return 1

    if args.action == "list":
        jobs = doc.get("jobs", {})
        if not jobs:
            print("no jobs")
            return 0
        for job_id, row in jobs.items():
            line = (f"{job_id:<24} {row.get('status', '?'):<9} "
                    f"{row.get('tenant', '?'):<16} {row.get('kind', '?'):<8} "
                    f"{row.get('total', 0)} task(s), {row.get('warm', 0)} warm")
            if "seconds" in row:
                line += f"  {row['seconds']:.2f}s"
            if row.get("error"):
                line += f"  ERROR: {str(row['error'])[:60]}"
            print(line)
        return 0
    if args.action == "show":
        _print_job_doc(doc)
        return 0 if doc.get("state") in ("done", "queued", "running") else 1
    if args.action == "cancel":
        cancelled = doc.get("cancelled", [])
        print(f"cancelled {len(cancelled)} job(s), "
              f"{doc.get('dropped', 0)} queued computation(s) dropped")
        for job_id in cancelled:
            print(f"  {job_id}")
        return 0
    if args.action == "chaos-kill":
        print(f"killed {doc.get('killed', 0)} worker(s); pool rebuilt "
              f"(generation {doc.get('pool_generation', '?')})")
        return 0
    if args.action == "shutdown":
        if doc.get("draining"):
            print(f"drain requested: admission stopped, "
                  f"{doc.get('pending', 0)} computation(s) finishing before "
                  f"clean close")
        else:
            print("shutdown requested")
        return 0
    # stats
    stats = doc.get("stats", {})
    print(f"service {host}:{port} up {doc.get('uptime', 0.0):.1f}s, "
          f"{doc.get('workers', '?')} worker(s) "
          f"(pool generation {doc.get('pool_generation', 0)})")
    print(f"  store {doc.get('store', '?')}")
    print(f"  jobs: {stats.get('jobs_submitted', 0)} submitted, "
          f"{stats.get('done', 0)} done, {stats.get('failed', 0)} failed, "
          f"{stats.get('cancelled', 0)} cancelled")
    print(f"  tasks: {stats.get('tasks_submitted', 0)} submitted, "
          f"{stats.get('computed', 0)} computed, "
          f"{stats.get('warm_hits', 0)} warm, "
          f"{stats.get('coalesced', 0)} coalesced, "
          f"{stats.get('requeued', 0)} requeued")
    print(f"  admission: {stats.get('rejected_backpressure', 0)} backpressure "
          f"rejection(s), {stats.get('rejected_quota', 0)} quota rejection(s), "
          f"{stats.get('rejected_draining', 0)} draining rejection(s), "
          f"{stats.get('deduplicated', 0)} deduplicated")
    print(f"  queue {doc.get('queue', 0)}, running {doc.get('running', 0)}, "
          f"inflight digests {doc.get('inflight', 0)}"
          + (" [draining]" if doc.get("draining") else ""))
    journal = doc.get("journal")
    if journal:
        print(f"  journal: {journal.get('records', 0)} record(s), "
              f"{journal.get('fsync_batches', 0)} fsync batch(es), "
              f"{journal.get('compactions', 0)} compaction(s), "
              f"{journal.get('segments', 0)} segment(s); "
              f"{stats.get('replayed', 0)} computation(s) replayed at boot")
    scrub = doc.get("scrub", {})
    if scrub.get("runs"):
        print(f"  scrub: {scrub.get('runs', 0)} pass(es), "
              f"{scrub.get('scanned', 0)} object(s) scanned, "
              f"{scrub.get('healed', 0)} healed, "
              f"{scrub.get('quarantined', 0)} quarantined")
    tenants = doc.get("tenants", {})
    if tenants:
        print("  outstanding by tenant: " + ", ".join(
            f"{t}={n}" for t, n in sorted(tenants.items())[:10]))
    return 0


def _cmd_loadgen(args) -> int:
    import asyncio

    from repro.service.loadgen import run_load

    try:
        host, port = _service_endpoint(args)
    except (FileNotFoundError, ValueError, ConnectionError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        grid = _parse_grid(args.params) if args.params else None
        scenario = _submit_scenario_ref(args.scenario, args.seed)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    report = asyncio.run(run_load(
        host, port,
        tenants=args.tenants,
        requests_per_tenant=args.requests_per_tenant,
        connections=args.connections,
        scenario=scenario,
        grid=grid,
        seed=args.seed,
        distinct_seeds=args.distinct_seeds,
        tenant_prefix=args.tenant_prefix,
    ))
    lat = report["latency"]
    print(f"{report['requests']} submission(s) from {report['tenants']} "
          f"tenant(s) over {report['connections']} connection(s): "
          f"{report['requests_ok']} ok, {report['requests_failed']} failed, "
          f"{report['retries']} admission retries, "
          f"{report.get('reconnects', 0)} reconnect(s)")
    print(f"  wall {report['wall_seconds']:.2f}s, "
          f"throughput {report['throughput_rps']:.0f} req/s")
    print(f"  latency p50 {lat['p50'] * 1e3:.1f}ms  "
          f"p95 {lat['p95'] * 1e3:.1f}ms  p99 {lat['p99'] * 1e3:.1f}ms  "
          f"mean {lat['mean'] * 1e3:.1f}ms  max {lat['max'] * 1e3:.1f}ms")
    delta = report["server_delta"]
    hit = report["hit_ratio"]
    print(f"  server: {delta.get('computed', 0)} computed, "
          f"{delta.get('warm_hits', 0)} warm, "
          f"{delta.get('coalesced', 0)} coalesced"
          + (f", store-hit ratio {hit:.0%}" if hit is not None else ""))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1)
        print(f"load report written to {args.json}")
    return 0 if report["requests_failed"] == 0 else 1


def _cmd_store(args) -> int:
    """Inspect/maintain the content-addressed run store."""
    from repro.store import RunStore, StoreError

    store = RunStore(args.store_dir)
    try:
        return _store_action(store, args)
    except StoreError as exc:
        print(f"store error: {exc}", file=sys.stderr)
        return 2


def _store_action(store, args) -> int:
    if args.action == "ls":
        return _store_ls(store, args)
    if args.action == "show":
        return _store_show(store, args)
    if args.action == "diff":
        return _store_diff(store, args)
    if args.action == "gc":
        report = store.gc(dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        print(f"gc: {report['kept']} object(s) kept, "
              f"{verb} {len(report['removed'])} "
              f"({report['bytes_freed']} bytes)")
        for digest in report["removed"][:20]:
            print(f"  {digest[:16]}")
        return 0
    if args.action == "verify":
        problems = store.verify()
        if not problems:
            print(f"store at {store.root}: no problems found "
                  f"({len(store)} object(s))")
            return 0
        for p in problems:
            where = p.get("digest") or p.get("ref") or p.get("run")
            print(f"{str(where)[:40]:<40} {p['problem']}")
        print(f"{len(problems)} problem(s)", file=sys.stderr)
        return 1
    if args.action == "scrub":
        from repro.store import scrub_store

        report = scrub_store(store, heal=not args.no_heal,
                             dry_run=args.dry_run)
        verb = "would " if args.dry_run else ""
        print(f"scrub of {store.root}: {report['scanned']} object(s) "
              f"scanned, {report['ok']} ok, "
              f"{verb}healed {report['healed']}, "
              f"{verb}quarantined {report['quarantined']}, "
              f"{len(report['dangling_refs'])} dangling ref(s)")
        for problem in report["problems"][:20]:
            print(f"  {problem['digest'][:16]:<16} {problem['action']}: "
                  f"{problem['problem']}")
        for name in report["dangling_refs"][:20]:
            print(f"  dangling ref {name}")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=1, sort_keys=True)
            print(f"scrub report written to {args.json}")
        return 0 if not (report["quarantined"] or report["healed"]) else 1
    if args.action == "export":
        bundle = store.export(args.tokens or None)
        text = json.dumps(bundle, indent=1, sort_keys=True)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"{len(bundle['objects'])} object(s), "
                  f"{len(bundle['runs'])} run(s) exported to {args.output}")
        else:
            print(text)
        return 0
    if args.action == "migrate":
        from pathlib import Path

        from repro.store import migrate_results

        summary = migrate_results(Path(args.results_dir), store=store)
        for key in sorted(summary):
            print(f"{key:<24} {summary[key]}")
        return 0
    # table
    return _store_table(store, args)


def _store_ls(store, args) -> int:
    runs = store.runs()
    refs = store.refs(args.pattern or "*")
    print(f"store at {store.root}: {len(store)} object(s), "
          f"{len(refs)} ref(s), {len(runs)} run(s)")
    if runs:
        print("runs (oldest first):")
        for run in runs:
            print(f"  {run['run_id']:<28} {_fmt_when(run.get('created'))}  "
                  f"{len(run.get('artifacts', {}))} artifact(s)")
    if args.kind:
        print(f"objects of kind {args.kind!r}:")
        for digest, artifact in store.query(args.kind):
            print(f"  {digest[:16]}  {artifact.describe()}")
    elif refs:
        print("refs:")
        for name, entry in refs:
            print(f"  {name:<44} -> {entry['digest'][:16]}")
    return 0


def _store_show(store, args) -> int:
    run = store._maybe_run(args.token)
    if run is not None:
        print(f"run {run['run_id']} ({run.get('kind', '?')}), "
              f"created {_fmt_when(run.get('created'))}")
        print(f"manifest {run['manifest'][:16]}")
        for label in sorted(run.get("artifacts", {})):
            digest = run["artifacts"][label]
            try:
                desc = store.get(digest).describe()
            except Exception as exc:  # corrupt/missing: show, don't die
                desc = f"UNREADABLE: {exc}"
            print(f"  {label:<24} {digest[:16]}  {desc}")
        return 0
    digest = store.resolve(args.token)
    artifact = store.get(digest)
    print(f"{digest}  kind={artifact.kind}")
    print(artifact.describe())
    if args.json:
        print(json.dumps(dict(artifact.payload), indent=1, sort_keys=True))
    return 0


def _store_diff(store, args) -> int:
    report = store.diff(args.a, args.b)
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
        return 0 if report["identical"] else 1
    if report["identical"]:
        print(f"{report['a']} and {report['b']} are identical "
              f"({report['mode']} diff: 0 difference(s))")
        return 0
    if report["mode"] == "runs":
        for label in report["only_a"]:
            print(f"only in {report['a']}: {label}")
        for label in report["only_b"]:
            print(f"only in {report['b']}: {label}")
        for label, changes in report["changed"].items():
            print(f"{label}: {len(changes)} change(s)")
            for ch in changes[:args.top]:
                print(f"  {ch['path']}: {ch['a']!r} -> {ch['b']!r}")
    else:
        for ch in report["changed"][:args.top]:
            print(f"{ch['path']}: {ch['a']!r} -> {ch['b']!r}")
    return 1


def _store_table(store, args) -> int:
    """Regenerate the EXPERIMENTS records table from stored artifacts."""
    from repro.core.experiment import ResultsCollector

    if args.run:
        docs = [store.get_run(args.run)]
    else:
        docs = [r for r in store.runs() if r.get("kind") == "experiment"][-1:]
    pairs = []  # (label, record)
    if docs:
        for label in sorted(docs[0].get("artifacts", {})):
            artifact = store.get(docs[0]["artifacts"][label])
            if artifact.kind == "experiment_record":
                pairs.append((label, artifact.to_record()))
    if not pairs:  # no usable run document: fall back to record refs
        for name, entry in store.refs("records/*") + \
                store.refs("legacy/experiments/*"):
            artifact = store.get(entry["digest"])
            if artifact.kind == "experiment_record":
                meta = entry.get("meta", {})
                label = f"{artifact.payload.get('id', name)}" \
                        f"#s{meta.get('seed', '?')}"
                pairs.append((label, artifact.to_record()))
    if not pairs:
        print("store holds no experiment records yet "
              "(run `repro-io experiment all` first)", file=sys.stderr)
        return 2
    collector = ResultsCollector()
    ids = [rec.id for _, rec in pairs]
    unique = len(set(ids)) == len(ids)
    for label, rec in pairs:
        collector.records[rec.id if unique else label] = rec
    print(collector.table())
    return 0


def _cmd_run_dsl(args) -> int:
    from repro.cluster import tiny_cluster
    from repro.monitoring import DarshanProfiler
    from repro.pfs import build_pfs
    from repro.simulate import run_workload
    from repro.wgen import DSLError, parse_workload

    try:
        with open(args.file, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    try:
        workload = parse_workload(text)
    except DSLError as exc:
        print(f"DSL error: {exc}", file=sys.stderr)
        return 2
    platform = tiny_cluster(seed=args.seed)
    pfs = build_pfs(platform)
    profiler = DarshanProfiler(job_name=workload.name)
    result = run_workload(platform, pfs, workload, observers=[profiler])
    print(result.summary())
    print()
    print(profiler.profile(n_ranks=workload.n_ranks).report())
    return 0


def _load_grammar(path):
    """Load a grammar JSON file, or the built-in default when ``path`` is
    None/'default'."""
    from repro.wgen import GrammarSpec, default_grammar

    if path is None or path == "default":
        return default_grammar()
    with open(path, "r", encoding="utf-8") as fh:
        return GrammarSpec.from_json(fh.read()).validate()


def _grammar_target(ref: str, seed: int):
    """Resolve a synthesis target into (ops, n_ranks, label).

    ``ref`` is a trace file (``.jsonl.gz`` from ``save_trace``), a scenario
    JSON file, or a preset name; scenarios are run under a tracer and the
    posix-layer records become the target.
    """
    from pathlib import Path

    from repro.monitoring import RecorderTracer, load_trace
    from repro.wgen import target_ops

    if Path(ref).is_file() and not ref.endswith(".json"):
        records = load_trace(ref)
        posix = [r for r in records if r.layer == "posix"]
        records = posix or records
        ops = target_ops(records)
        label = f"trace {ref}"
    else:
        from repro.scenario import run_scenario

        spec = _scenario_spec(ref, seed)
        tracer = RecorderTracer()
        run_scenario(spec, observers=[tracer])
        ops = target_ops(tracer.archive.at_layer("posix"))
        label = f"scenario {spec.name} (digest {spec.digest()[:12]})"
    if not ops:
        raise ValueError(f"no operations in target {ref!r}")
    n_ranks = max(op.rank for op in ops) + 1
    return ops, n_ranks, label


def _cmd_grammar(args) -> int:
    import json as _json

    from repro.wgen import GrammarError, expand, sample

    try:
        grammar = _load_grammar(getattr(args, "grammar", None))
    except (OSError, GrammarError) as exc:
        print(f"grammar error: {exc}", file=sys.stderr)
        return 2

    if args.action == "show":
        if args.json:
            print(grammar.to_json())
            return 0
        print(grammar.describe())
        for rule in grammar.rules:
            print(f"  <{rule.lhs}> ::=")
            for p in rule.productions:
                weight = f"  (w={p.weight:g})" if p.weight != 1.0 else ""
                print(f"    | {' '.join(p.symbols)}{weight}")
        return 0

    if args.action == "sample":
        from repro.scenario import run_scenario

        for seed in range(args.seed, args.seed + args.count):
            derivation = sample(grammar, seed=seed, n_ranks=args.ranks,
                                max_steps=args.max_steps)
            spec = derivation.scenario_spec(seed=seed)
            if args.json:
                print(_json.dumps(derivation.to_dict()))
            else:
                print(f"seed={seed} choices={len(derivation.choices)} "
                      f"scenario {spec.digest()}")
            if args.text:
                print(derivation.text)
            if args.run:
                run = run_scenario(spec).to_dict()
                print(f"  ran: {run['duration']:.4f}s sim, "
                      f"{run['bytes_written']} B written, "
                      f"{run['bytes_read']} B read, "
                      f"{run['meta_ops']} metadata op(s)")
        return 0

    if args.action == "expand":
        try:
            choices = [int(c) for c in args.choices.split(",") if c != ""]
            derivation = expand(grammar, choices, n_ranks=args.ranks,
                                complete=args.complete)
        except (ValueError, GrammarError) as exc:
            print(f"expand error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(_json.dumps(derivation.to_dict()))
        else:
            print(f"choices={list(derivation.choices)} "
                  f"scenario {derivation.scenario_spec().digest()}")
            print(derivation.text)
        return 0

    if args.action == "synth":
        from repro.scenario import ScenarioError
        from repro.wgen import synthesize

        try:
            ops, n_ranks, label = _grammar_target(args.target, args.seed)
        except (OSError, ValueError, ScenarioError) as exc:
            print(f"cannot resolve target: {exc}", file=sys.stderr)
            return 2
        print(f"target: {label}, {len(ops)} op(s), {n_ranks} rank(s)")
        from repro.modeling import DISTANCE_THRESHOLD

        threshold = (DISTANCE_THRESHOLD if args.threshold is None
                     else args.threshold)
        result = synthesize(
            ops, grammar=grammar, n_ranks=n_ranks,
            beam_width=args.beam, max_steps=args.max_steps,
            threshold=threshold,
        )
        spec = result.scenario_spec(seed=args.seed)
        print(f"best derivation: {len(result.derivation.choices)} choice(s), "
              f"distance {result.distance:.4f} "
              f"(threshold {result.threshold:.4f}) "
              f"[{'ok' if result.ok else 'ABOVE THRESHOLD'}]")
        print(f"synthesized scenario digest {spec.digest()}")
        if args.text:
            print(result.derivation.text)
        if args.store_dir:
            from repro.store import RunStore
            from repro.wgen import store_synthesis

            digests = store_synthesis(RunStore(args.store_dir), result,
                                      grammar=grammar)
            for kind, digest in sorted(digests.items()):
                print(f"stored {kind}: {digest}")
        rerun_ok = True
        if args.rerun:
            from repro.modeling import trace_distance
            from repro.monitoring import RecorderTracer
            from repro.scenario import run_scenario
            from repro.wgen import target_ops

            tracer = RecorderTracer()
            run_scenario(spec, observers=[tracer])
            rerun_dist = trace_distance(
                ops, target_ops(tracer.archive.at_layer("posix"))
            )
            rerun_ok = rerun_dist <= result.threshold
            print(f"re-simulated trace distance {rerun_dist:.4f} "
                  f"[{'ok' if rerun_ok else 'ABOVE THRESHOLD'}]")
        if args.check and not (result.ok and rerun_ok):
            return 1
        return 0

    raise AssertionError(f"unhandled grammar action {args.action!r}")


def _cmd_run_workload(args) -> int:
    from repro.cluster import tiny_cluster
    from repro.monitoring import DarshanProfiler
    from repro.pfs import build_pfs
    from repro.simulate import run_workload
    from repro.workloads.registry import PRESETS, make_preset

    if args.name == "list":
        for name in sorted(PRESETS):
            _, main = make_preset(name, n_ranks=args.ranks)
            print(f"{name:<12} {main.describe()}")
        return 0
    try:
        setup, main = make_preset(args.name, n_ranks=args.ranks)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"bad configuration: {exc}", file=sys.stderr)
        return 2
    platform = tiny_cluster(seed=args.seed)
    pfs = build_pfs(platform)
    for w in setup:
        run_workload(platform, pfs, w)
    profiler = DarshanProfiler(job_name=main.name)
    result = run_workload(platform, pfs, main, observers=[profiler])
    print(main.describe())
    print(result.summary())
    print()
    print(profiler.profile(n_ranks=main.n_ranks).report())
    return 0


def _cmd_cycle(args) -> int:
    from repro.cluster import tiny_cluster
    from repro.core.cycle import EvaluationCycle
    from repro.workloads import IORConfig, IORWorkload

    MiB = 1024 * 1024
    cycle = EvaluationCycle(
        platform_factory=lambda: tiny_cluster(seed=args.seed),
        workload_factory=lambda: IORWorkload(
            IORConfig(block_size=4 * MiB, transfer_size=MiB, read=True), 4
        ),
        seed=args.seed,
    )
    for report in cycle.run(iterations=args.iterations):
        print(report.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-io",
        description="Parallel I/O evaluation toolkit "
        "(reproduction of Neuwirth & Paul, CLUSTER 2021)",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default="warning",
        help="stdlib logging level for repro.* loggers (default warning)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="render the paper's figures")
    p.add_argument("figure", nargs="?", default="all", choices=["1", "2", "3", "4", "all"])
    p.set_defaults(fn=_cmd_figures)

    p = sub.add_parser("taxonomy", help="print the evaluation taxonomy")
    p.add_argument("--modules", action="store_true", help="show implementing modules")
    p.set_defaults(fn=_cmd_taxonomy)

    p = sub.add_parser("corpus", help="survey-corpus distributions")
    p.set_defaults(fn=_cmd_corpus)

    p = sub.add_parser("experiment", help="run reproduction experiments")
    p.add_argument(
        "id", help="experiment id (E1-E4, C1-C10, A1-A5, R1-R3) or 'all'"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--seeds",
        help="comma-separated seed list (e.g. 0,1,2); overrides --seed",
    )
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the experiment fan-out (default 1)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="recompute even when a cached result exists, and do not cache",
    )
    p.add_argument(
        "--cache-dir", default="results/store",
        help="run-store root the record cache lives in "
        "(default results/store)",
    )
    p.add_argument("--json", help="write results JSON to this path")
    p.add_argument(
        "--trace", metavar="OUT.json",
        help="enable self-telemetry and write a Chrome trace-event JSON "
        "(load in Perfetto or chrome://tracing)",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="enable self-telemetry and print the metrics table",
    )
    p.add_argument(
        "--series", action="store_true",
        help="enable self-telemetry and print the simulation-time series "
        "table (probe samples)",
    )
    p.add_argument(
        "--metrics-json", metavar="OUT.json",
        help="enable self-telemetry and write the metrics registry as JSON",
    )
    p.add_argument(
        "--no-manifest", action="store_true",
        help="skip writing the run-provenance manifest.json",
    )
    p.add_argument(
        "--fail-fast", action="store_true",
        help="abort on the first failed task instead of recording it and "
        "finishing the rest",
    )
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser(
        "scenario",
        help="declare, run and sweep whole-evaluation scenarios",
    )
    scen_sub = p.add_subparsers(dest="action", required=True)

    sp = scen_sub.add_parser("list", help="list named scenario presets")
    sp.add_argument("--seed", type=int, default=0)
    sp.set_defaults(fn=_cmd_scenario)

    sp = scen_sub.add_parser(
        "run", help="build and run one scenario (preset name or JSON file)"
    )
    sp.add_argument("scenario", help="preset name or path to a scenario JSON")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--json", help="write the scenario outcome JSON here")
    sp.add_argument(
        "--engine", choices=["sequential", "conservative", "partitioned"],
        help="override the scenario's DES engine (default: as declared)",
    )
    sp.add_argument(
        "--engine-backend", choices=["serial", "thread", "process"],
        default="thread",
        help="partitioned-engine backend (default: thread)",
    )
    sp.add_argument(
        "--engine-workers", type=int,
        help="partitioned-engine partition/worker count (default: CPUs)",
    )
    sp.add_argument(
        "--metrics", action="store_true",
        help="enable self-telemetry and print the metrics table (cohort "
        "sizes, partition window occupancy, ...)",
    )
    sp.add_argument(
        "--trace", metavar="OUT.json",
        help="enable self-telemetry and write the merged cross-process "
        "Chrome trace (one pid track per worker; load in Perfetto)",
    )
    sp.add_argument(
        "--series", action="store_true",
        help="enable self-telemetry and print the simulation-time series "
        "table (link/OSS/OST/MDS probes)",
    )
    sp.add_argument(
        "--metrics-json", metavar="FILE",
        help="enable self-telemetry and write the metrics registry as JSON "
        "(summarize with `repro-io telemetry FILE`)",
    )
    sp.add_argument(
        "--store-dir", default="results/store",
        help="run store that archives telemetry artifacts of this run "
        "(default results/store)",
    )
    sp.add_argument(
        "--no-store", action="store_true",
        help="keep telemetry outputs as loose files only; skip the store",
    )
    sp.set_defaults(fn=_cmd_scenario)

    sp = scen_sub.add_parser(
        "sweep",
        help="cartesian sweep: scenario plus key=v1,v2 parameter grids",
    )
    sp.add_argument("scenario", help="base preset name or scenario JSON path")
    sp.add_argument(
        "params", nargs="+", metavar="key=v1,v2",
        help="grid axes; dotted paths (platform.n_oss, "
        "workloads.0.params.transfer_size) or bare names (n_oss, "
        "stripe_count) resolved layer by layer",
    )
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--jobs", type=int, default=1,
                    help="worker processes for the point fan-out (default 1)")
    sp.add_argument("--no-cache", action="store_true",
                    help="recompute every point and do not cache")
    sp.add_argument("--cache-dir", default="results/store",
                    help="run-store root the point cache lives in "
                    "(default results/store)")
    sp.add_argument("--no-manifest", action="store_true",
                    help="skip writing the sweep provenance manifest")
    sp.add_argument("--fail-fast", action="store_true",
                    help="abort on the first failed point instead of "
                    "recording it and finishing the rest")
    sp.add_argument("--json", help="write all point outcomes JSON here")
    sp.set_defaults(fn=_cmd_scenario)

    p = sub.add_parser(
        "telemetry",
        help="summarize a self-telemetry artifact (trace, manifest or "
        "metrics JSON; a file path or a run-store token)",
    )
    p.add_argument(
        "file",
        help="path to the JSON artifact, or a store token (run id, ref "
        "name, digest prefix, or 'latest') when no such file exists",
    )
    p.add_argument("--top", type=int, default=10,
                   help="rows to show in rankings (default 10)")
    p.add_argument("--store-dir", default="results/store",
                   help="run store consulted for non-file tokens "
                   "(default results/store)")
    p.set_defaults(fn=_cmd_telemetry)

    p = sub.add_parser(
        "watch",
        help="live monitor: tail a running sweep's progress "
        "(per-point status, cache-hit ratio, ETA)",
    )
    p.add_argument(
        "path", nargs="?", default="results",
        help="sweep-progress.json path, or the directory holding it "
        "(default results)",
    )
    p.add_argument("--interval", type=float, default=1.0,
                   help="poll interval in seconds (default 1)")
    p.add_argument("--once", action="store_true",
                   help="render one frame and exit")
    p.add_argument("--timeout", type=float, default=0.0,
                   help="give up after this many seconds (default: never)")
    p.add_argument("--fail-on-errors", action="store_true",
                   help="exit nonzero when the final frame shows any "
                   "failed point or job")
    p.set_defaults(fn=_cmd_watch)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant run service (async job server over "
        "the store; submit with `repro-io submit`)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = pick a free one)")
    p.add_argument("--workers", type=int, default=2,
                   help="process-pool workers executing scenarios (default 2)")
    p.add_argument("--store-dir", default="results/store",
                   help="run-store root results land in (default results/store)")
    p.add_argument("--queue-limit", type=int, default=256,
                   help="admission queue depth before backpressure "
                   "rejections (default 256)")
    p.add_argument("--tenant-quota", type=int, default=64,
                   help="max outstanding computations per tenant (default 64)")
    p.add_argument("--no-cache", action="store_true",
                   help="do not serve warm results from (or land refs in) "
                   "the store")
    p.add_argument("--enable-chaos", action="store_true",
                   help="allow the chaos-kill op (testing: kills a pool "
                   "worker mid-job)")
    p.add_argument("--journal", dest="journal", action="store_true",
                   default=True, help="write-ahead job journal for crash "
                   "recovery (default on)")
    p.add_argument("--no-journal", dest="journal", action="store_false",
                   help="disable the write-ahead journal (jobs in flight "
                   "at a crash are lost)")
    p.add_argument("--fsync-interval", type=float, default=0.05,
                   help="journal group-commit window in seconds "
                   "(default 0.05)")
    p.add_argument("--scrub-interval", type=float, default=0.0,
                   help="seconds between background store scrub passes "
                   "(default 0 = disabled)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a scenario (or key=v1,v2 sweep) to a running service",
    )
    p.add_argument("scenario", help="preset name or scenario JSON path")
    p.add_argument("params", nargs="*", metavar="key=v1,v2",
                   help="optional sweep grid axes (as in `scenario sweep`)")
    p.add_argument("--tenant", default="cli",
                   help="tenant the submission is accounted to (default cli)")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--no-wait", action="store_true",
                   help="return the job id immediately instead of waiting")
    p.add_argument("--idempotency-key",
                   help="resubmission with the same key dedups onto the "
                   "original job (survives server restarts via the journal)")
    p.add_argument("--json", help="write the finished job document here")
    p.add_argument("--address", metavar="HOST:PORT",
                   help="service address (default: discovery file)")
    p.add_argument("--state-dir", default="results",
                   help="directory holding service.json discovery "
                   "(default results)")
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser(
        "jobs",
        help="inspect a running service: list/show/cancel jobs, stats, "
        "shutdown",
    )
    p.add_argument("--address", metavar="HOST:PORT",
                   help="service address (default: discovery file)")
    p.add_argument("--state-dir", default="results",
                   help="directory holding service.json discovery "
                   "(default results)")
    jobs_sub = p.add_subparsers(dest="action", required=True)
    sp = jobs_sub.add_parser("list", help="list jobs the service knows")
    sp.add_argument("--tenant", help="only this tenant's jobs")
    sp.set_defaults(fn=_cmd_jobs)
    sp = jobs_sub.add_parser("show", help="show one job document")
    sp.add_argument("job_id")
    sp.add_argument("--wait", action="store_true",
                    help="block until the job is terminal")
    sp.set_defaults(fn=_cmd_jobs)
    sp = jobs_sub.add_parser(
        "cancel", help="cancel a job id or a whole tenant's queued work"
    )
    sp.add_argument("job_id", nargs="?")
    sp.add_argument("--tenant", help="cancel every unfinished job of "
                    "this tenant")
    sp.set_defaults(fn=_cmd_jobs)
    sp = jobs_sub.add_parser("stats", help="server counters and queue state")
    sp.set_defaults(fn=_cmd_jobs)
    sp = jobs_sub.add_parser(
        "chaos-kill",
        help="kill one pool worker (server must run with --enable-chaos)",
    )
    sp.set_defaults(fn=_cmd_jobs)
    sp = jobs_sub.add_parser("shutdown", help="stop the service")
    sp.add_argument("--drain", action="store_true",
                    help="stop admission, finish running jobs, then close "
                    "cleanly (next boot skips journal replay)")
    sp.set_defaults(fn=_cmd_jobs)

    p = sub.add_parser(
        "loadgen",
        help="multi-tenant load generator: hammer a running service and "
        "report p50/p99 latency, throughput and store-hit ratio",
    )
    p.add_argument("scenario", nargs="?", default="tiny",
                   help="preset name or scenario JSON path (default tiny)")
    p.add_argument("params", nargs="*", metavar="key=v1,v2",
                   help="optional sweep grid axes")
    p.add_argument("--tenants", type=int, default=100,
                   help="simulated tenants (default 100)")
    p.add_argument("--requests-per-tenant", type=int, default=1)
    p.add_argument("--connections", type=int, default=8,
                   help="real sockets the tenants multiplex over (default 8)")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--distinct-seeds", action="store_true",
                   help="give every tenant its own seed (forces cold "
                   "computations instead of warm hits)")
    p.add_argument("--tenant-prefix", default="tenant")
    p.add_argument("--json", help="write the full load report here")
    p.add_argument("--address", metavar="HOST:PORT",
                   help="service address (default: discovery file)")
    p.add_argument("--state-dir", default="results",
                   help="directory holding service.json discovery "
                   "(default results)")
    p.set_defaults(fn=_cmd_loadgen)

    p = sub.add_parser(
        "store",
        help="inspect and maintain the content-addressed run store",
    )
    p.add_argument("--store-dir", default="results/store",
                   help="store root (default results/store)")
    store_sub = p.add_subparsers(dest="action", required=True)

    sp = store_sub.add_parser("ls", help="list runs, refs and objects")
    sp.add_argument("pattern", nargs="?", default="*",
                    help="fnmatch pattern over ref names (default *)")
    sp.add_argument("--kind",
                    help="list objects of this artifact kind instead of refs")
    sp.set_defaults(fn=_cmd_store)

    sp = store_sub.add_parser(
        "show", help="show one run or artifact (run id, ref, digest, latest)"
    )
    sp.add_argument("token")
    sp.add_argument("--json", action="store_true",
                    help="also dump the artifact payload as JSON")
    sp.set_defaults(fn=_cmd_store)

    sp = store_sub.add_parser(
        "diff",
        help="content-diff two runs (by artifact set) or two artifacts "
        "(by payload); exits 0 when identical",
    )
    sp.add_argument("a")
    sp.add_argument("b")
    sp.add_argument("--json", action="store_true",
                    help="print the structured diff report")
    sp.add_argument("--top", type=int, default=10,
                    help="changes to show per artifact (default 10)")
    sp.set_defaults(fn=_cmd_store)

    sp = store_sub.add_parser(
        "gc", help="delete objects unreachable from any ref or run"
    )
    sp.add_argument("--dry-run", action="store_true",
                    help="report what would be removed without deleting")
    sp.set_defaults(fn=_cmd_store)

    sp = store_sub.add_parser(
        "verify", help="integrity sweep: corrupt objects, dangling refs"
    )
    sp.set_defaults(fn=_cmd_store)

    sp = store_sub.add_parser(
        "scrub",
        help="patrol read: digest-verify every object, heal non-canonical "
        "bytes, quarantine unrecoverable ones",
    )
    sp.add_argument("--dry-run", action="store_true",
                    help="classify problems without touching disk")
    sp.add_argument("--no-heal", action="store_true",
                    help="quarantine instead of rewriting healable objects")
    sp.add_argument("--json", help="write the scrub report here")
    sp.set_defaults(fn=_cmd_store)

    sp = store_sub.add_parser(
        "export", help="bundle runs/refs/objects into one JSON document"
    )
    sp.add_argument("tokens", nargs="*",
                    help="limit to these runs/artifacts (default: whole store)")
    sp.add_argument("-o", "--output", help="write the bundle here")
    sp.set_defaults(fn=_cmd_store)

    sp = store_sub.add_parser(
        "migrate",
        help="one-shot ingest of a legacy results/ layout "
        "(cache/, manifest.json, experiments.json) into the store",
    )
    sp.add_argument("results_dir", nargs="?", default="results",
                    help="legacy results directory (default results)")
    sp.set_defaults(fn=_cmd_store)

    sp = store_sub.add_parser(
        "table",
        help="regenerate the EXPERIMENTS records table from stored "
        "records, no re-run",
    )
    sp.add_argument("--run", help="run id to read records from "
                    "(default: the latest experiment run)")
    sp.set_defaults(fn=_cmd_store)

    p = sub.add_parser("run-dsl", help="run a DSL workload description")
    p.add_argument("file", help="path to the .wdsl file")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_run_dsl)

    p = sub.add_parser(
        "grammar",
        help="generated workloads: sample/expand the I/O-pattern grammar, "
        "synthesize scenarios back from traces",
    )
    grammar_sub = p.add_subparsers(dest="action", required=True)

    sp = grammar_sub.add_parser("show", help="print the grammar's rules")
    sp.add_argument("--grammar", help="grammar JSON file (default: built-in)")
    sp.add_argument("--json", action="store_true",
                    help="dump the grammar document instead")
    sp.set_defaults(fn=_cmd_grammar)

    sp = grammar_sub.add_parser(
        "sample", help="draw deterministic derivations (seeded)"
    )
    sp.add_argument("--grammar", help="grammar JSON file (default: built-in)")
    sp.add_argument("--seed", type=int, default=0, help="first sample seed")
    sp.add_argument("--count", type=int, default=1,
                    help="number of consecutive seeds to sample")
    sp.add_argument("--ranks", type=int, default=4)
    sp.add_argument("--max-steps", type=int, default=256,
                    help="derivation depth bound")
    sp.add_argument("--text", action="store_true",
                    help="print each generated DSL program")
    sp.add_argument("--json", action="store_true",
                    help="print derivation documents as JSON lines")
    sp.add_argument("--run", action="store_true",
                    help="also run each sampled scenario")
    sp.set_defaults(fn=_cmd_grammar)

    sp = grammar_sub.add_parser(
        "expand", help="replay an explicit derivation (choice list)"
    )
    sp.add_argument("choices", help="comma-separated production indices")
    sp.add_argument("--grammar", help="grammar JSON file (default: built-in)")
    sp.add_argument("--ranks", type=int, default=4)
    sp.add_argument("--complete", action="store_true",
                    help="finish a partial derivation greedily")
    sp.add_argument("--json", action="store_true")
    sp.set_defaults(fn=_cmd_grammar)

    sp = grammar_sub.add_parser(
        "synth",
        help="search the grammar for the smallest derivation reproducing "
        "a trace or scenario's access pattern",
    )
    sp.add_argument(
        "target",
        help="trace file (save_trace .jsonl.gz), scenario JSON, or preset",
    )
    sp.add_argument("--grammar", help="grammar JSON file (default: built-in)")
    sp.add_argument("--seed", type=int, default=0,
                    help="seed for running a scenario target")
    sp.add_argument("--beam", type=int, default=8, help="beam width")
    sp.add_argument("--max-steps", type=int, default=64,
                    help="search depth bound")
    sp.add_argument("--threshold", type=float,
                    default=None, help="acceptance distance (default: the "
                    "documented DISTANCE_THRESHOLD)")
    sp.add_argument("--text", action="store_true",
                    help="print the synthesized DSL program")
    sp.add_argument("--rerun", action="store_true",
                    help="re-simulate the synthesized scenario and report "
                    "its trace distance to the target")
    sp.add_argument("--store-dir",
                    help="persist grammar + synthesis artifacts to this store")
    sp.add_argument("--check", action="store_true",
                    help="exit nonzero when the distance exceeds the "
                    "threshold (CI gate)")
    sp.set_defaults(fn=_cmd_grammar)

    p = sub.add_parser(
        "run-workload", help="run a preset workload on a simulated cluster"
    )
    p.add_argument("name", help="preset name, or 'list' to enumerate presets")
    p.add_argument("--ranks", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_run_workload)

    p = sub.add_parser("cycle", help="run evaluation-cycle iterations")
    p.add_argument("--iterations", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_cycle)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(levelname)s %(name)s: %(message)s",
    )
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
