"""Core event types for the process-based simulation engine.

An :class:`Event` is a one-shot occurrence in virtual time.  Processes wait
on events by yielding them; the environment resumes the process when the
event is *processed* (its callbacks run).  Events may succeed with a value or
fail with an exception, mirroring the usual future/promise semantics.

Performance notes
-----------------
Events are the unit of allocation in the engine, so this module is written
for the hot path: every event class declares ``__slots__`` (no per-instance
dict), and the callback list is *lazy* -- a fresh event carries the shared
immutable ``_NO_CALLBACKS`` tuple and only allocates a real list when the
first callback is registered.  ``callbacks is None`` still means *processed*
(the engine swaps in ``None`` when it fires the event), which is the
invariant the rest of the package relies on.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Iterable, Optional

# Scheduling priorities: lower sorts earlier at equal timestamps.
URGENT = 0
NORMAL = 1
LOW = 2

# Heap entries are (time, key, event) 3-tuples where ``key`` packs the
# priority into the bits above the insertion sequence number:
# ``(priority << _PRIORITY_SHIFT) | seq``.  This keeps the exact
# (time, priority, sequence) ordering of the original 4-tuples with one
# fewer tuple slot and one fewer comparison per heap sift.
_PRIORITY_SHIFT = 60
_KEY_NORMAL = NORMAL << _PRIORITY_SHIFT

_PENDING = object()

#: Shared sentinel for "no callbacks registered yet" (distinct from None,
#: which means the event has been processed).  Immutable on purpose: a
#: registration replaces it with the callback itself (single-waiter fast
#: path, the overwhelmingly common case) or a list of callbacks.
_NO_CALLBACKS: tuple = ()


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Interrupt({self.cause!r})"


class Event:
    """A one-shot occurrence that processes can wait for.

    Lifecycle: *pending* -> *triggered* (scheduled on the queue with a value
    or an exception) -> *processed* (callbacks have run).

    Parameters
    ----------
    env:
        The owning :class:`~repro.des.engine.Environment`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env):
        self.env = env
        self.callbacks: Any = _NO_CALLBACKS
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        # ``_defused`` is deliberately left unset: the ``defused`` property
        # treats the missing slot as False, so the common case (events that
        # never fail) skips one attribute store per event.

    @property
    def defused(self) -> bool:
        """True if a failure of this event should not crash the simulation.

        Stored lazily: the backing slot is only written when someone defuses
        the event, so freshly created events pay nothing for it.
        """
        try:
            return self._defused
        except AttributeError:
            return False

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = value

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value/exception."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        heappush(
            env._queue,
            (env._now, (priority << _PRIORITY_SHIFT) | env._seq(), self),
        )
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        A failed event that is never waited upon crashes the simulation
        (unless :attr:`defused` is set) so that errors do not pass silently.
        """
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        env = self.env
        heappush(
            env._queue,
            (env._now, (priority << _PRIORITY_SHIFT) | env._seq(), self),
        )
        return self

    def trigger(self, source: "Event") -> None:
        """Copy the outcome of ``source`` onto this event and schedule it."""
        if source._ok:
            self.succeed(source._value)
        else:
            source.defused = True
            self.fail(source._value)

    # -- callbacks ---------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        If the event has already been processed the callback runs
        immediately (this keeps waiting on completed events race-free).
        """
        cbs = self.callbacks
        if cbs is None:
            callback(self)
        elif cbs is _NO_CALLBACKS:  # first waiter: store the callable itself
            self.callbacks = callback
        elif type(cbs) is list:
            cbs.append(callback)
        else:  # second waiter: promote the single callable to a list
            self.callbacks = [cbs, callback]

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Unregister a previously-added callback (no-op if absent)."""
        cbs = self.callbacks
        if type(cbs) is list:
            try:
                cbs.remove(callback)
            except ValueError:
                pass
        elif cbs is not None and cbs is not _NO_CALLBACKS and cbs == callback:
            self.callbacks = _NO_CALLBACKS

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time ``delay``.

    The constructor is the single hottest allocation site in the engine, so
    it bypasses ``Event.__init__``/``Environment.schedule`` and pushes its
    heap entry directly (the delay checks from ``schedule`` are replicated
    here).
    """

    __slots__ = ("_delay",)

    def __init__(self, env, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        if delay != delay:  # NaN: would sort nondeterministically in the heap
            raise ValueError("NaN delay")
        self.env = env
        self.callbacks = _NO_CALLBACKS
        self._value = value
        self._ok = True
        self._delay = delay
        heappush(
            env._queue, (env._now + delay, _KEY_NORMAL | env._seq(), self)
        )

    @property
    def delay(self) -> float:
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay} at {id(self):#x}>"


class Condition(Event):
    """Composite event over several sub-events.

    Succeeds once ``evaluate(events, n_done)`` returns True.  The value is a
    dict mapping each *triggered* sub-event to its value, in trigger order.
    If any sub-event fails, the condition fails with that exception.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env, evaluate: Callable[[list, int], bool], events: Iterable[Event]):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for ev in self._events:
            if ev.env is not env:
                raise ValueError("cannot mix events from different environments")
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.add_callback(self._check)

    def _collect_values(self) -> dict:
        # Note: a Timeout is "triggered" from construction (its outcome is
        # predetermined), so membership is decided by *processed* instead.
        return {ev: ev._value for ev in self._events if ev.callbacks is None and ev._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Succeeds when *all* sub-events have succeeded."""

    __slots__ = ()

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env, lambda evs, n: n == len(evs), events)


class AnyOf(Condition):
    """Succeeds when *any* sub-event has succeeded."""

    __slots__ = ()

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env, lambda evs, n: n >= 1, events)
