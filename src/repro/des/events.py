"""Core event types for the process-based simulation engine.

An :class:`Event` is a one-shot occurrence in virtual time.  Processes wait
on events by yielding them; the environment resumes the process when the
event is *processed* (its callbacks run).  Events may succeed with a value or
fail with an exception, mirroring the usual future/promise semantics.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

# Scheduling priorities: lower sorts earlier at equal timestamps.
URGENT = 0
NORMAL = 1
LOW = 2

_PENDING = object()


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Interrupt({self.cause!r})"


class Event:
    """A one-shot occurrence that processes can wait for.

    Lifecycle: *pending* -> *triggered* (scheduled on the queue with a value
    or an exception) -> *processed* (callbacks have run).

    Parameters
    ----------
    env:
        The owning :class:`~repro.des.engine.Environment`.
    """

    def __init__(self, env):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: If True, a failure that nobody waits on will not raise at the
        #: environment level.  Set by :meth:`defused`.
        self.defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value/exception."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        A failed event that is never waited upon crashes the simulation
        (unless :attr:`defused` is set) so that errors do not pass silently.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay=0.0, priority=priority)
        return self

    def trigger(self, source: "Event") -> None:
        """Copy the outcome of ``source`` onto this event and schedule it."""
        if source._ok:
            self.succeed(source._value)
        else:
            source.defused = True
            self.fail(source._value)

    # -- callbacks ---------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        If the event has already been processed the callback runs
        immediately (this keeps waiting on completed events race-free).
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Unregister a previously-added callback (no-op if absent)."""
        if self.callbacks is not None:
            try:
                self.callbacks.remove(callback)
            except ValueError:
                pass

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time ``delay``."""

    def __init__(self, env, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay, priority=NORMAL)

    @property
    def delay(self) -> float:
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay} at {id(self):#x}>"


class Condition(Event):
    """Composite event over several sub-events.

    Succeeds once ``evaluate(events, n_done)`` returns True.  The value is a
    dict mapping each *triggered* sub-event to its value, in trigger order.
    If any sub-event fails, the condition fails with that exception.
    """

    def __init__(self, env, evaluate: Callable[[list, int], bool], events: Iterable[Event]):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for ev in self._events:
            if ev.env is not env:
                raise ValueError("cannot mix events from different environments")
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.add_callback(self._check)

    def _collect_values(self) -> dict:
        # Note: a Timeout is "triggered" from construction (its outcome is
        # predetermined), so membership is decided by *processed* instead.
        return {ev: ev._value for ev in self._events if ev.processed and ev._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Succeeds when *all* sub-events have succeeded."""

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env, lambda evs, n: n == len(evs), events)


class AnyOf(Condition):
    """Succeeds when *any* sub-event has succeeded."""

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env, lambda evs, n: n >= 1, events)
