"""Simulated processes: generators driven by the event loop.

A :class:`Process` wraps a Python generator.  Whenever the generator yields
an :class:`~repro.des.events.Event`, the process suspends until that event is
processed, at which point the event's value is sent back into the generator
(or its exception thrown in).  A process is itself an event: it succeeds with
the generator's return value, so processes can wait on each other.

``_resume`` runs once per yield of every process, making it one of the two
hottest functions in the engine (the other is ``Environment.run``'s drain
loop).  It therefore registers itself on the target event inline instead of
going through ``Event.add_callback``, and schedules its own heap entries
directly.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Generator, Optional

from repro.des.events import Event, Interrupt, Timeout, _NO_CALLBACKS, URGENT

# URGENT is priority 0, so the packed heap key is just the sequence number
# (see the heap-entry layout note in events.py).
assert URGENT == 0


class Process(Event):
    """A running simulated process.

    Created via :meth:`repro.des.engine.Environment.process`.
    """

    __slots__ = ("_generator", "_target", "_resume_cb", "_send", "_throw")

    def __init__(self, env, generator: Generator[Event, Any, Any]):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # One bound method for the process's lifetime: registering a fresh
        # `self._resume` per yield would allocate a bound-method object each
        # time (and remove_callback would need identity-equal objects).
        self._resume_cb = self._resume
        # Bound once: ``generator.send`` lookups are a measurable cost when
        # repeated every yield of every process.
        self._send = generator.send
        self._throw = generator.throw
        # Bootstrap: resume once via an immediately-processed initialisation
        # event so that process start is itself an ordinary queue entry.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks = self._resume_cb
        heappush(env._queue, (env._now, env._seq(), init))

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (or None)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a terminated process raises ``RuntimeError``.  The
        interrupted process stops waiting for its current target event (the
        event itself is unaffected and may still fire).
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is None:
            raise RuntimeError(f"{self!r} is not yet waiting and cannot be interrupted")
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev.defused = True
        # Stop listening on the old target; resume with the interrupt instead.
        self._target.remove_callback(self._resume_cb)
        self._target = None
        interrupt_ev.add_callback(self._resume_cb)
        self.env.schedule(interrupt_ev, delay=0.0, priority=URGENT)

    # -- engine plumbing ----------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        try:
            if event._ok:
                next_target = self._send(event._value)
            else:
                event.defused = True
                next_target = self._throw(event._value)
        except StopIteration as stop:
            self._target = None
            self._ok = True
            self._value = stop.value
            heappush(env._queue, (env._now, env._seq(), self))
            return
        except BaseException as exc:
            self._target = None
            self._ok = False
            self._value = exc
            heappush(env._queue, (env._now, env._seq(), self))
            return
        # `type(...) is Timeout` covers the overwhelmingly common yield and
        # is cheaper than isinstance; the fallback handles every other Event.
        if type(next_target) is not Timeout and not isinstance(next_target, Event):
            # Misuse: kill the process with a descriptive error.
            err = RuntimeError(
                f"process yielded a non-event: {next_target!r} "
                "(yield Timeout/Event/Process/resource requests)"
            )
            self._target = None
            self._ok = False
            self._value = err
            heappush(env._queue, (env._now, env._seq(), self))
            return
        if next_target.env is not env:
            raise RuntimeError("process yielded an event from another environment")
        self._target = next_target
        # Inlined Event.add_callback (hot path).
        cbs = next_target.callbacks
        if cbs is _NO_CALLBACKS:  # first (usually only) waiter
            next_target.callbacks = self._resume_cb
        elif cbs is None:  # already processed: resume immediately
            self._resume(next_target)
        elif cbs.__class__ is list:
            cbs.append(self._resume_cb)
        else:
            next_target.callbacks = [cbs, self._resume_cb]

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process {name} at {id(self):#x}>"
