"""Simulated processes: generators driven by the event loop.

A :class:`Process` wraps a Python generator.  Whenever the generator yields
an :class:`~repro.des.events.Event`, the process suspends until that event is
processed, at which point the event's value is sent back into the generator
(or its exception thrown in).  A process is itself an event: it succeeds with
the generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.des.events import Event, Interrupt, URGENT


class Process(Event):
    """A running simulated process.

    Created via :meth:`repro.des.engine.Environment.process`.
    """

    def __init__(self, env, generator: Generator[Event, Any, Any]):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # Bootstrap: resume once via an immediately-processed initialisation
        # event so that process start is itself an ordinary queue entry.
        init = Event(env)
        init._ok = True
        init._value = None
        init.add_callback(self._resume)
        env.schedule(init, delay=0.0, priority=URGENT)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (or None)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a terminated process raises ``RuntimeError``.  The
        interrupted process stops waiting for its current target event (the
        event itself is unaffected and may still fire).
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is None:
            raise RuntimeError(f"{self!r} is not yet waiting and cannot be interrupted")
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev.defused = True
        # Stop listening on the old target; resume with the interrupt instead.
        self._target.remove_callback(self._resume)
        self._target = None
        interrupt_ev.add_callback(self._resume)
        self.env.schedule(interrupt_ev, delay=0.0, priority=URGENT)

    # -- engine plumbing ----------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                event.defused = True
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            self.env._active_process = None
            self._ok = True
            self._value = stop.value
            self.env.schedule(self, delay=0.0, priority=URGENT)
            return
        except BaseException as exc:
            self._target = None
            self.env._active_process = None
            self._ok = False
            self._value = exc
            self.env.schedule(self, delay=0.0, priority=URGENT)
            return
        self.env._active_process = None
        if not isinstance(next_target, Event):
            # Misuse: kill the process with a descriptive error.
            err = RuntimeError(
                f"process yielded a non-event: {next_target!r} "
                "(yield Timeout/Event/Process/resource requests)"
            )
            self._target = None
            self._ok = False
            self._value = err
            self.env.schedule(self, delay=0.0, priority=URGENT)
            return
        if next_target.env is not self.env:
            raise RuntimeError("process yielded an event from another environment")
        self._target = next_target
        next_target.add_callback(self._resume)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process {name} at {id(self):#x}>"
