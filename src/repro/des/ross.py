"""ROSS-style logical-process kernel with sequential and conservative executors.

The CODES storage-simulation framework surveyed by the paper (Snyder et al.
[20], Liu et al. [59]) is built atop ROSS, a parallel discrete-event
simulation (PDES) system in which the model is decomposed into *logical
processes* (LPs) that interact exclusively by exchanging timestamped events.

This module implements that programming model with two executors:

* :class:`SequentialExecutor` -- a single global event queue, the reference
  implementation.
* :class:`ConservativeExecutor` -- a YAWNS-style conservative windowed
  executor: in each round it computes the lower bound on timestamps (LBTS)
  of all pending events and processes, per LP, every event with timestamp
  below ``LBTS + lookahead``.  Because every message carries a minimum delay
  of ``lookahead``, no event generated during a window can land inside it,
  which guarantees causal correctness without rollback.

Determinism across executors: events are ordered by
``(time, source_lp, per-source sequence number)``.  Each LP numbers the
messages it sends, and an LP's processing order is identical under both
executors (proved inductively: each LP receives the same multiset of events
and sorts them by the same content-based key), so simulations are
bit-reproducible and executor-independent.  Ablation A1 validates this and
reports the parallelism the conservative windows expose.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.des.engine import SimulationError


def _degenerate_window_error(lbts: float, lookahead: float) -> SimulationError:
    """A window that admits no events would loop forever; fail loudly.

    This happens when the lookahead vanishes against the magnitude of the
    clock (``lbts + lookahead == lbts`` in float64) -- an effectively
    zero-lookahead configuration.  Raising is the difference between a
    clear diagnostic and a silent spin.
    """
    return SimulationError(
        f"degenerate conservative window at t={lbts!r}: lookahead "
        f"{lookahead!r} vanishes against the clock (lbts + lookahead == "
        f"lbts in float64), so the window can never admit an event. "
        f"Increase the lookahead or rescale the model's time units."
    )


@dataclass(frozen=True)
class RossEvent:
    """A timestamped message between logical processes.

    Ordering is total and content-based: ``(time, source, source_seq)``.
    ``source`` is -1 for initial (kernel-injected) events.
    """

    time: float
    dest: int
    kind: str
    payload: Any = None
    source: int = -1
    source_seq: int = 0

    @property
    def sort_key(self) -> tuple:
        return (self.time, self.source, self.source_seq)

    def __lt__(self, other: "RossEvent") -> bool:
        return self.sort_key < other.sort_key


class LogicalProcess:
    """Base class for ROSS-style logical processes.

    Subclasses override :meth:`handle`; they send messages with
    ``kernel.send(...)`` and may keep arbitrary local state.  The
    ``state_digest`` hook lets tests compare end states across executors.
    """

    def __init__(self, lp_id: int):
        self.lp_id = lp_id
        self.events_handled = 0
        #: Per-LP log of handled event keys (used for determinism checks).
        self.trace: List[tuple] = []

    def handle(self, kernel: "RossKernel", event: RossEvent) -> None:
        """Process one event.  Subclasses must override."""
        raise NotImplementedError

    def state_digest(self) -> Any:
        """A hashable summary of LP state for cross-executor comparison."""
        return (self.lp_id, self.events_handled)

    def snapshot(self) -> Any:
        """State snapshot for optimistic (Time Warp) execution.

        The default deep-copies every mutable attribute; subclasses with
        expensive state may override with something cheaper (ROSS's
        incremental state saving).
        """
        import copy

        return copy.deepcopy(
            {k: v for k, v in self.__dict__.items() if k != "lp_id"}
        )

    def restore(self, state: Any) -> None:
        """Inverse of :meth:`snapshot` (rollback support)."""
        import copy

        self.__dict__.update(copy.deepcopy(state))

    def _dispatch(self, kernel: "RossKernel", event: RossEvent) -> None:
        self.events_handled += 1
        self.trace.append(event.sort_key + (event.kind,))
        self.handle(kernel, event)


class RossKernel:
    """Holds the LP population and mediates message sends.

    Parameters
    ----------
    lookahead:
        Minimum virtual-time delay of any message.  The conservative
        executor's window width; the sequential executor also enforces it so
        the two are interchangeable.
    """

    def __init__(self, lookahead: float = 0.0):
        if lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        self.lookahead = float(lookahead)
        self.lps: Dict[int, LogicalProcess] = {}
        self._now = 0.0
        self._init_seq = 0
        self._send_counters: Dict[int, int] = {}
        self._outbox: List[RossEvent] = []
        self._current_lp: Optional[int] = None

    @property
    def now(self) -> float:
        """Virtual time of the event currently being handled."""
        return self._now

    def add_lp(self, lp: LogicalProcess) -> LogicalProcess:
        if lp.lp_id in self.lps:
            raise ValueError(f"duplicate LP id {lp.lp_id}")
        self.lps[lp.lp_id] = lp
        self._send_counters[lp.lp_id] = 0
        return lp

    def inject(self, time: float, dest: int, kind: str, payload: Any = None) -> RossEvent:
        """Schedule an initial event from outside any LP."""
        ev = RossEvent(time, dest, kind, payload, source=-1, source_seq=self._init_seq)
        self._init_seq += 1
        self._outbox.append(ev)
        return ev

    def send(self, dest: int, delay: float, kind: str, payload: Any = None) -> RossEvent:
        """Send a message from the currently-executing LP.

        ``delay`` must be at least ``lookahead`` (strictly positive if the
        lookahead is zero would break windowing, so conservative runs require
        lookahead > 0).
        """
        if self._current_lp is None:
            raise RuntimeError("send() may only be called from inside handle()")
        if dest not in self.lps:
            raise KeyError(f"unknown destination LP {dest}")
        if delay < self.lookahead:
            raise ValueError(
                f"message delay {delay} violates lookahead {self.lookahead}"
            )
        src = self._current_lp
        seq = self._send_counters[src]
        self._send_counters[src] = seq + 1
        ev = RossEvent(self._now + delay, dest, kind, payload, source=src, source_seq=seq)
        self._outbox.append(ev)
        return ev

    def _drain_outbox(self) -> List[RossEvent]:
        out, self._outbox = self._outbox, []
        return out

    def _execute_one(self, event: RossEvent) -> List[RossEvent]:
        """Run one event through its destination LP; return new messages."""
        lp = self.lps.get(event.dest)
        if lp is None:
            raise KeyError(f"event addressed to unknown LP {event.dest}")
        self._now = event.time
        self._current_lp = event.dest
        try:
            lp._dispatch(self, event)
        finally:
            self._current_lp = None
        return self._drain_outbox()

    def state_digests(self) -> Dict[int, Any]:
        return {lp_id: lp.state_digest() for lp_id, lp in self.lps.items()}


@dataclass
class ExecutionStats:
    """Summary of an executor run."""

    events: int = 0
    windows: int = 0
    #: Events processed in each window (conservative executor only).
    window_sizes: List[int] = field(default_factory=list)
    #: Critical-path bound: sum over windows of the max events any single LP
    #: handled in that window.  total events / critical_path is the speedup
    #: an ideal parallel machine could extract with this lookahead.
    critical_path: int = 0

    @property
    def parallelism_bound(self) -> float:
        """Upper bound on achievable PDES speedup for this run."""
        if self.critical_path == 0:
            return 1.0
        return self.events / self.critical_path


class SequentialExecutor:
    """Reference executor: one global heap in full timestamp order."""

    def __init__(self, kernel: RossKernel):
        self.kernel = kernel
        self.stats = ExecutionStats()

    def run(self, until: float = float("inf")) -> ExecutionStats:
        heap: List[RossEvent] = list(self.kernel._drain_outbox())
        heapq.heapify(heap)
        while heap and heap[0].time <= until:
            ev = heapq.heappop(heap)
            for new in self.kernel._execute_one(ev):
                heapq.heappush(heap, new)
            self.stats.events += 1
        self.stats.windows = self.stats.events  # degenerate: 1 event per "window"
        self.stats.critical_path = self.stats.events
        return self.stats


class ConservativeExecutor:
    """YAWNS-style conservative windowed executor.

    Requires ``kernel.lookahead > 0``.  Each round:

    1. LBTS = min timestamp over all pending events (global reduction).
    2. Window = ``[LBTS, LBTS + lookahead)``.
    3. Every LP processes its pending events inside the window in local
       key order.  Messages generated carry timestamps >= LBTS + lookahead,
       i.e. beyond the window, so no causality violation is possible.
    4. Barrier; repeat.
    """

    def __init__(self, kernel: RossKernel):
        if kernel.lookahead <= 0:
            raise ValueError("conservative execution requires positive lookahead")
        self.kernel = kernel
        self.stats = ExecutionStats()

    def run(self, until: float = float("inf")) -> ExecutionStats:
        queues: Dict[int, List[RossEvent]] = {lp_id: [] for lp_id in self.kernel.lps}
        for ev in self.kernel._drain_outbox():
            heapq.heappush(queues[ev.dest], ev)

        while True:
            pending_heads = [q[0].time for q in queues.values() if q]
            if not pending_heads:
                break
            lbts = min(pending_heads)
            if lbts > until:
                break
            horizon = lbts + self.kernel.lookahead
            if not horizon > lbts:
                raise _degenerate_window_error(lbts, self.kernel.lookahead)
            window_events = 0
            window_max_per_lp = 0
            generated: List[RossEvent] = []
            # Deterministic LP visit order (the executor's order is
            # irrelevant for correctness; fixed order aids reproducibility
            # of stats).
            for lp_id in sorted(queues):
                q = queues[lp_id]
                handled_here = 0
                while q and q[0].time < horizon and q[0].time <= until:
                    ev = heapq.heappop(q)
                    generated.extend(self.kernel._execute_one(ev))
                    handled_here += 1
                window_events += handled_here
                window_max_per_lp = max(window_max_per_lp, handled_here)
            for ev in generated:
                if ev.time < horizon:
                    raise RuntimeError(
                        "causality violation: generated event inside the "
                        "current window (lookahead contract broken)"
                    )
                heapq.heappush(queues[ev.dest], ev)
            self.stats.events += window_events
            self.stats.windows += 1
            self.stats.window_sizes.append(window_events)
            self.stats.critical_path += window_max_per_lp
        return self.stats
