"""Queueing primitives: resources, containers and stores.

These model the contended components of a storage system: a
:class:`Resource` is a server with ``capacity`` parallel slots (e.g. an OSS
service thread pool), a :class:`Container` holds divisible material (e.g.
free bytes in a burst buffer), and a :class:`Store` holds discrete items
(e.g. a request queue between components).
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Callable, Optional

from repro.des.events import Event


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so that the slot is always released::

        with resource.request() as req:
            yield req
            ... hold the slot ...
    """

    __slots__ = ("resource", "usage_since", "_enqueued_at")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.usage_since: Optional[float] = None

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)


class PriorityRequest(Request):
    """A :class:`Request` with a priority (lower = served first)."""

    __slots__ = ("priority", "enqueue_time")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource)
        self.priority = priority
        self.enqueue_time = resource.env.now


class Resource:
    """A server with a fixed number of parallel slots and a FIFO queue.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of requests that may hold the resource simultaneously.
    """

    request_cls = Request

    def __init__(self, env, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []
        # Cumulative statistics, useful for utilisation reporting.
        self.total_requests = 0
        self.total_wait_time = 0.0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return len(self.users)

    def request(self, **kwargs) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = self.request_cls(self, **kwargs)
        req._enqueued_at = self.env.now
        self.total_requests += 1
        self.queue.append(req)
        self._trigger_pending()
        return req

    def release(self, request: Request) -> None:
        """Give back a previously granted slot (no-op for cancelled waits)."""
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
        self._trigger_pending()

    def _sort_queue(self) -> None:
        """Hook for priority disciplines; FIFO keeps insertion order."""

    def _trigger_pending(self) -> None:
        self._sort_queue()
        while self.queue and len(self.users) < self._capacity:
            req = self.queue.pop(0)
            self.users.append(req)
            req.usage_since = self.env.now
            self.total_wait_time += self.env.now - req._enqueued_at
            req.succeed(req)


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is served in priority order.

    Ties are broken by enqueue time (FIFO within a priority level).
    """

    request_cls = PriorityRequest

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return super().request(priority=priority)

    def _sort_queue(self) -> None:
        self.queue.sort(key=lambda r: (r.priority, r.enqueue_time))


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount


class Container:
    """Holds a divisible quantity bounded by ``capacity``.

    ``get(amount)`` blocks until at least ``amount`` is present;
    ``put(amount)`` blocks until there is room.  Gets are served FIFO.
    """

    def __init__(self, env, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._gets: list[ContainerGet] = []
        self._puts: list[ContainerPut] = []

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def get(self, amount: float) -> ContainerGet:
        ev = ContainerGet(self, amount)
        self._gets.append(ev)
        self._dispatch()
        return ev

    def put(self, amount: float) -> ContainerPut:
        ev = ContainerPut(self, amount)
        self._puts.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._puts and self._level + self._puts[0].amount <= self.capacity:
                ev = self._puts.pop(0)
                self._level += ev.amount
                ev.succeed()
                progress = True
            if self._gets and self._level >= self._gets[0].amount:
                ev = self._gets.pop(0)
                self._level -= ev.amount
                ev.succeed(ev.amount)
                progress = True


class StoreGet(Event):
    __slots__ = ("filter_fn",)

    def __init__(self, store: "Store", filter_fn: Optional[Callable[[Any], bool]] = None):
        super().__init__(store.env)
        self.filter_fn = filter_fn


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item


class Store:
    """A FIFO store of discrete items with optional bounded capacity.

    ``get(filter_fn)`` optionally retrieves the first item matching a
    predicate (making this double as SimPy's FilterStore).
    """

    def __init__(self, env, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._gets: list[StoreGet] = []
        self._puts: list[StorePut] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        ev = StorePut(self, item)
        self._puts.append(ev)
        self._dispatch()
        return ev

    def get(self, filter_fn: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        ev = StoreGet(self, filter_fn)
        self._gets.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._puts and len(self.items) < self.capacity:
                ev = self._puts.pop(0)
                self.items.append(ev.item)
                ev.succeed()
                progress = True
            for get_ev in list(self._gets):
                match_idx = None
                for i, item in enumerate(self.items):
                    if get_ev.filter_fn is None or get_ev.filter_fn(item):
                        match_idx = i
                        break
                if match_idx is not None:
                    self._gets.remove(get_ev)
                    item = self.items.pop(match_idx)
                    get_ev.succeed(item)
                    progress = True
