"""Reproducible named random streams.

Every stochastic component in :mod:`repro` draws from a named substream so
that (a) experiments are bit-reproducible given a root seed, and (b) adding
a new random consumer does not perturb the draws of existing ones (unlike a
single shared generator).  Substreams are derived with
``numpy.random.SeedSequence`` using a stable hash of the stream name.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _name_to_entropy(name: str) -> int:
    """Stable 128-bit integer derived from a stream name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "little")


class RandomStreams:
    """A factory of independent, named ``numpy.random.Generator`` streams.

    Parameters
    ----------
    root_seed:
        Root seed for the whole experiment.

    Examples
    --------
    >>> streams = RandomStreams(42)
    >>> a = streams.stream("workload.ior")
    >>> b = streams.stream("pfs.oss.3")
    >>> a is not b
    True
    >>> streams2 = RandomStreams(42)
    >>> float(a.random()) == float(streams2.stream("workload.ior").random())
    True
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use).

        Repeated calls with the same name return the *same* generator
        object, so state advances across calls; construct a fresh
        :class:`RandomStreams` to restart an experiment.
        """
        if name not in self._cache:
            seq = np.random.SeedSequence(
                entropy=self.root_seed, spawn_key=(_name_to_entropy(name),)
            )
            self._cache[name] = np.random.default_rng(seq)
        return self._cache[name]

    def fork(self, salt: str) -> "RandomStreams":
        """Derive an independent family of streams (e.g. per repetition)."""
        return RandomStreams(self.root_seed ^ _name_to_entropy(salt) & 0x7FFFFFFF)
