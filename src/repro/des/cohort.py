"""Vectorized event-cohort helpers.

A *cohort* is a homogeneous population of events scheduled (and often
processed) together: per-rank phase arrivals of an SPMD round, per-link
fair-share admissions, per-OST service completions.  The scalar engine
pays one heap push, one float add and one validation branch per event;
when the population is an array, all three vectorize.

This module centralises the numpy gating and the shared numeric kernels so
the engine (:meth:`repro.des.engine.Environment.schedule_batch`), the
bandwidth model (:meth:`repro.des.sharing.FairShareLink.transfer_batch`)
and the scale-scenario cohort model (:mod:`repro.simulate.scalemodel`)
agree on validation semantics and float behaviour.  numpy is part of the
baked-in toolchain, but every entry point degrades to a pure-Python loop
when it is unavailable (``HAVE_NUMPY`` is False) so the package imports
everywhere.

Exactness contract
------------------
Vectorized kernels must be *bit-identical* to their scalar counterparts,
not merely close: the golden seed-0 fixture pins scenario outputs and the
engine-equivalence property tests compare event timelines across engines.
IEEE-754 elementwise ``+``/``*``/``/`` on float64 arrays match Python
float arithmetic exactly, so cohort code sticks to elementwise ops and
min/max reductions (exact selections) and never uses ``np.sum`` on floats
(pairwise summation reorders the adds).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:  # numpy is in the standard toolchain; tolerate minimal environments.
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None
    HAVE_NUMPY = False

np = _np

#: Below this population size the scalar loop beats array setup overhead;
#: measured on the engine microbenchmarks (see ``benchmarks``).
MIN_VECTOR_BATCH = 8


def as_delay_array(delays: Sequence[float]):
    """Validate a cohort of delays and return them as a float64 array.

    Mirrors the scalar :meth:`Environment.schedule` checks -- negative and
    NaN delays are rejected (NaN silently breaks the heap invariant) --
    but performs both checks with two vector comparisons instead of two
    branches per event.  Returns a numpy array when numpy is available,
    else a validated list.
    """
    if HAVE_NUMPY:
        arr = _np.asarray(delays, dtype=_np.float64)
        if arr.ndim != 1:
            raise ValueError(f"delay cohort must be 1-D, got shape {arr.shape}")
        # A single fused pass: NaN fails both comparisons, so ``>= 0`` is
        # False for NaN and one reduction covers both rejection rules.
        if not bool(_np.all(arr >= 0.0)):
            if bool(_np.any(_np.isnan(arr))):
                raise ValueError("NaN delay in cohort")
            raise ValueError("negative delay in cohort")
        return arr
    out = []
    for d in delays:
        d = float(d)
        if d < 0:
            raise ValueError(f"negative delay {d}")
        if d != d:
            raise ValueError("NaN delay")
        out.append(d)
    return out


def fire_times(now: float, delays) -> List[float]:
    """``now + delay`` for each cohort member.

    Elementwise float64 addition is bit-identical to the scalar engine's
    ``self._now + delay``, so batch-scheduled events land on exactly the
    heap keys scalar scheduling would have produced.
    """
    if HAVE_NUMPY and isinstance(delays, _np.ndarray):
        return (now + delays).tolist()
    return [now + d for d in delays]


def observe_cohort(kind: str, size: int, now: Optional[float] = None) -> None:
    """Record a cohort admission in self-telemetry (when enabled).

    Feeds the cohort-size histogram surfaced by ``repro-io telemetry``:
    ``des.cohort.size`` tracks the population distribution,
    ``des.cohort.batches`` / ``des.cohort.events`` count how much of the
    event volume flows through the vectorized path.  When the call site
    passes the simulated clock via ``now``, the admission also lands on
    the ``des.cohort.<kind>`` time series (size over simulated time).
    """
    from repro.telemetry import TELEMETRY

    if not TELEMETRY.active:
        return
    m = TELEMETRY.metrics
    m.counter("des.cohort.batches").inc()
    m.counter("des.cohort.events").inc(size)
    m.counter(f"des.cohort.{kind}.events").inc(size)
    m.histogram("des.cohort.size").observe(size)
    if now is not None:
        TELEMETRY.series.record(f"des.cohort.{kind}", now, size, "events")


def fair_share_batch_times(
    admit_time: float, nbytes: float, population: int, rate: float
) -> float:
    """Completion time of ``population`` equal-size flows admitted together.

    A fair-share link serving ``population`` simultaneous flows of
    ``nbytes`` each completes them all at the same instant.  The expression
    replicates :class:`repro.des.sharing.FairShareLink` float-for-float
    (``remaining * len(active) / rate`` evaluated on an idle link, then
    ``now + delay``), which is what lets the vectorized scale model
    reproduce the scalar engine's timings exactly.
    """
    return admit_time + nbytes * population / rate


def jitter_finish_times(completion: float, jitter):
    """Per-member finish times ``completion + jitter_i`` (elementwise)."""
    if HAVE_NUMPY and isinstance(jitter, _np.ndarray):
        return completion + jitter
    return [completion + j for j in jitter]


def cohort_max(values) -> float:
    """Maximum of a cohort -- an exact selection, safe for equivalence."""
    if HAVE_NUMPY and isinstance(values, _np.ndarray):
        return float(values.max())
    return max(values)


def require_numpy(feature: str) -> None:
    """Raise a clear error for features that cannot degrade gracefully."""
    if not HAVE_NUMPY:
        raise RuntimeError(
            f"{feature} requires numpy, which is not available in this "
            f"environment"
        )


def canonical_event_sort(events: list) -> list:
    """Sort cross-partition event traffic into its canonical total order.

    Partitioned execution gathers generated events from workers in
    completion order, which is nondeterministic under thread and process
    backends.  Sorting by the content-based ``sort_key`` restores a
    machine-independent order before the events are enqueued.
    """
    events.sort(key=lambda ev: ev.sort_key)
    return events


__all__ = [
    "HAVE_NUMPY",
    "MIN_VECTOR_BATCH",
    "as_delay_array",
    "canonical_event_sort",
    "cohort_max",
    "fair_share_batch_times",
    "fire_times",
    "jitter_finish_times",
    "np",
    "observe_cohort",
    "require_numpy",
]
