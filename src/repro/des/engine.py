"""The sequential process-based simulation environment.

The :class:`Environment` owns the virtual clock and a binary-heap event
queue.  Determinism: queue entries sort by ``(time, priority, sequence)``
where ``sequence`` is a monotonically increasing insertion counter, so two
runs of the same simulation program produce identical event orderings.

Performance notes
-----------------
:meth:`Environment.run` is the engine's hot loop.  The ``until`` dispatch
(none / time / event) is resolved *once*, before the loop, and each variant
gets its own branch-lean drain loop with the body of :meth:`step` inlined
(local aliases for the queue and ``heappop``, no ``peek()`` call and no
``isinstance`` stop checks per iteration).  :meth:`step` remains the
single-event reference implementation; the inlined loops must match it.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from itertools import count
from typing import Any, Generator, List, Optional, Sequence, Union

from repro.des.events import (
    AllOf,
    AnyOf,
    Event,
    Timeout,
    NORMAL,
    _KEY_NORMAL,
    _NO_CALLBACKS,
    _PRIORITY_SHIFT,
)
from repro.des.process import Process
from repro.telemetry import TELEMETRY

_INF = float("inf")

# Pre-bound allocator for Environment.timeout (skips a method lookup per event).
_new_timeout = Timeout.__new__


class SimulationError(Exception):
    """Raised when the simulation itself is broken (e.g. unhandled failure)."""


class EmptySchedule(Exception):
    """Internal: raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A sequential discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the virtual clock (seconds).

    Examples
    --------
    >>> env = Environment()
    >>> def hello(env):
    ...     yield env.timeout(3.0)
    ...     return env.now
    >>> p = env.process(hello(env))
    >>> env.run()
    >>> p.value
    3.0
    """

    __slots__ = ("_now", "_queue", "_seq", "events_processed")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        #: Heap of (time, priority<<SHIFT | seq, event); see events.py.
        self._queue: list[tuple[float, int, Event]] = []
        #: The bound ``__next__`` of an insertion counter -- stored as a
        #: callable (``self._seq()``) so hot paths skip the ``next()`` builtin.
        self._seq = count().__next__
        #: Number of events processed so far (for engine statistics).
        self.events_processed = 0

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- event construction ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now.

        Inlines ``Timeout.__init__`` (the hottest allocation in the engine)
        to skip one interpreter frame per event; keep in sync with it.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        if delay != delay:
            raise ValueError("NaN delay")
        t = _new_timeout(Timeout)
        t.env = self
        t.callbacks = _NO_CALLBACKS
        t._value = value
        t._ok = True
        t._delay = delay
        heappush(self._queue, (self._now + delay, _KEY_NORMAL | self._seq(), t))
        return t

    def timeout_batch(
        self, delays: Sequence[float], values: Optional[Sequence[Any]] = None
    ) -> List[Timeout]:
        """Create one :class:`Timeout` per cohort member, vectorized.

        Semantically identical to ``[self.timeout(d) for d in delays]`` --
        the events receive the same insertion-sequence numbers, the same
        fire times (elementwise float64 addition matches the scalar
        ``now + delay`` bit-for-bit) and the same heap keys, so a cohort
        schedule is byte-identical to the scalar loop.  The win is
        amortization: one vectorized validation pass, one fire-time array
        op, and (for large cohorts) an O(queue + batch) ``heapify``
        instead of ``batch`` O(log queue) sift-ups.
        """
        from repro.des.cohort import (
            MIN_VECTOR_BATCH,
            as_delay_array,
            fire_times,
            observe_cohort,
        )

        arr = as_delay_array(delays)
        times = fire_times(self._now, arr)
        plain = arr.tolist() if hasattr(arr, "tolist") else arr
        n = len(times)
        seq = self._seq
        events: List[Timeout] = []
        entries = []
        for i in range(n):
            t = _new_timeout(Timeout)
            t.env = self
            t.callbacks = _NO_CALLBACKS
            t._value = values[i] if values is not None else None
            t._ok = True
            t._delay = plain[i]
            events.append(t)
            entries.append((times[i], _KEY_NORMAL | seq(), t))
        self._push_entries(entries, n)
        if TELEMETRY.active:
            observe_cohort("timeout", n, self._now)
        return events

    def schedule_batch(
        self,
        events: Sequence[Event],
        delays: Sequence[float],
        priority: int = NORMAL,
    ) -> None:
        """Enqueue a cohort of events, vectorized.

        Equivalent to ``for ev, d in zip(events, delays): schedule(ev, d,
        priority)`` -- same sequence numbers, same keys, same fire times --
        with validation and fire-time arithmetic done in one array pass.
        """
        from repro.des.cohort import as_delay_array, fire_times, observe_cohort

        if len(events) != len(delays):
            raise ValueError(
                f"cohort mismatch: {len(events)} events, {len(delays)} delays"
            )
        arr = as_delay_array(delays)
        times = fire_times(self._now, arr)
        seq = self._seq
        key_base = priority << _PRIORITY_SHIFT
        entries = [
            (times[i], key_base | seq(), events[i]) for i in range(len(events))
        ]
        self._push_entries(entries, len(entries))
        if TELEMETRY.active:
            observe_cohort("schedule", len(entries), self._now)

    def _push_entries(self, entries: list, n: int) -> None:
        """Bulk heap insertion.

        Heap *pop order* depends only on the entry keys (which are totally
        ordered by the unique sequence number), never on the internal array
        layout, so rebuilding via ``heapify`` yields exactly the event
        order that individual sift-ups would have -- it is just cheaper
        once the batch is a decent fraction of the queue.
        """
        queue = self._queue
        if n >= 8 and n * 4 >= len(queue):
            queue.extend(entries)
            heapify(queue)
        else:
            for entry in entries:
                heappush(queue, entry)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a new simulated process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that succeeds when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that succeeds when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Enqueue ``event`` to be processed ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        if delay != delay:  # NaN compares false to everything: the heap
            # invariant breaks silently and event order becomes arbitrary.
            raise ValueError("NaN delay")
        heappush(
            self._queue,
            (
                self._now + delay,
                (priority << _PRIORITY_SHIFT) | self._seq(),
                event,
            ),
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else _INF

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        try:
            self._now, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        callbacks = event.callbacks
        event.callbacks = None
        if type(callbacks) is list:
            for cb in callbacks:
                cb(event)
        elif callbacks is not _NO_CALLBACKS:  # single registered waiter
            callbacks(event)
        self.events_processed += 1
        if not event._ok and not event.defused:
            exc = event._value
            raise exc if isinstance(exc, Exception) else SimulationError(repr(exc))

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` -- run until no events remain.
            * a float -- run until the clock reaches that time.
            * an :class:`Event` -- run until that event is processed and
              return its value (raising if it failed).

        When self-telemetry is enabled (:mod:`repro.telemetry`) the run is
        routed through :meth:`_run_instrumented` instead: a wall-clock span
        plus event/heap counters.  The disabled cost is this single
        attribute check, which is what ``benchmarks/telemetry_overhead.py``
        guards.
        """
        if TELEMETRY.active:
            return self._run_instrumented(until)
        if until is None:
            return self._drain(_INF)
        if isinstance(until, Event):
            return self._run_until_event(until)
        stop_time = float(until)
        if stop_time < self._now:
            raise ValueError(f"until={stop_time} is in the past (now={self._now})")
        return self._drain(stop_time)

    def _run_instrumented(self, until: Union[None, float, Event]) -> Any:
        """Telemetry variant of :meth:`run`: same semantics, plus a span and
        ``des.*`` metrics (events executed/scheduled, heap high-water).

        Uses the :meth:`step` reference loop -- slower than the inlined
        drains, but only ever taken when telemetry is enabled.
        """
        metrics = TELEMETRY.metrics
        queue = self._queue
        start_processed = self.events_processed
        start_pending = len(queue)
        high = start_pending
        step = self.step
        with TELEMETRY.tracer.span(
            "Environment.run", cat="des", pending_at_start=start_pending
        ):
            try:
                if until is None:
                    while queue:
                        step()
                        if len(queue) > high:
                            high = len(queue)
                    result = None
                elif isinstance(until, Event):
                    if until.callbacks is None:  # already processed
                        result = until.value
                    else:
                        while queue:
                            step()
                            if len(queue) > high:
                                high = len(queue)
                            if until.callbacks is None:
                                break
                        else:
                            raise SimulationError(
                                "simulation ran out of events before the "
                                "'until' event fired"
                            )
                        if not until._ok:
                            raise until._value
                        result = until._value
                else:
                    stop_time = float(until)
                    if stop_time < self._now:
                        raise ValueError(
                            f"until={stop_time} is in the past (now={self._now})"
                        )
                    while queue and queue[0][0] <= stop_time:
                        step()
                        if len(queue) > high:
                            high = len(queue)
                    self._now = stop_time
                    result = None
            finally:
                executed = self.events_processed - start_processed
                metrics.counter("des.runs").inc()
                metrics.counter("des.events.executed").inc(executed)
                metrics.counter("des.events.scheduled").inc(
                    executed + len(queue) - start_pending
                )
                metrics.gauge("des.heap.high_water").update_max(high)
        return result

    # -- drain loops (step() inlined; keep in sync with step) ----------------
    def _drain(self, stop_time: float) -> None:
        queue = self._queue
        pop = heappop
        no_cbs = _NO_CALLBACKS
        lst = list
        processed = 0
        try:
            if stop_time == _INF:
                while queue:
                    self._now, _, event = pop(queue)
                    callbacks = event.callbacks
                    event.callbacks = None
                    if callbacks.__class__ is lst:
                        for cb in callbacks:
                            cb(event)
                    elif callbacks is not no_cbs:
                        callbacks(event)
                    processed += 1
                    if not event._ok and not event.defused:
                        exc = event._value
                        raise exc if isinstance(exc, Exception) else SimulationError(
                            repr(exc)
                        )
                return None
            while queue and queue[0][0] <= stop_time:
                self._now, _, event = pop(queue)
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks.__class__ is lst:
                    for cb in callbacks:
                        cb(event)
                elif callbacks is not no_cbs:
                    callbacks(event)
                processed += 1
                if not event._ok and not event.defused:
                    exc = event._value
                    raise exc if isinstance(exc, Exception) else SimulationError(
                        repr(exc)
                    )
            self._now = stop_time
            return None
        finally:
            self.events_processed += processed

    def _run_until_event(self, stop_event: Event) -> Any:
        if stop_event.callbacks is None:  # already processed
            return stop_event.value
        queue = self._queue
        pop = heappop
        no_cbs = _NO_CALLBACKS
        lst = list
        processed = 0
        try:
            while queue:
                self._now, _, event = pop(queue)
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks.__class__ is lst:
                    for cb in callbacks:
                        cb(event)
                elif callbacks is not no_cbs:
                    callbacks(event)
                processed += 1
                if not event._ok and not event.defused:
                    exc = event._value
                    raise exc if isinstance(exc, Exception) else SimulationError(
                        repr(exc)
                    )
                if stop_event.callbacks is None:
                    if not stop_event._ok:
                        raise stop_event._value
                    return stop_event._value
        finally:
            self.events_processed += processed
        raise SimulationError(
            "simulation ran out of events before the 'until' event fired"
        )
