"""The sequential process-based simulation environment.

The :class:`Environment` owns the virtual clock and a binary-heap event
queue.  Determinism: queue entries sort by ``(time, priority, sequence)``
where ``sequence`` is a monotonically increasing insertion counter, so two
runs of the same simulation program produce identical event orderings.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Optional, Union

from repro.des.events import AllOf, AnyOf, Event, Timeout, NORMAL
from repro.des.process import Process


class SimulationError(Exception):
    """Raised when the simulation itself is broken (e.g. unhandled failure)."""


class EmptySchedule(Exception):
    """Internal: raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A sequential discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the virtual clock (seconds).

    Examples
    --------
    >>> env = Environment()
    >>> def hello(env):
    ...     yield env.timeout(3.0)
    ...     return env.now
    >>> p = env.process(hello(env))
    >>> env.run()
    >>> p.value
    3.0
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        #: Number of events processed so far (for engine statistics).
        self.events_processed = 0

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None outside callbacks)."""
        return self._active_process

    # -- event construction ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a new simulated process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that succeeds when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that succeeds when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Enqueue ``event`` to be processed ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        self.events_processed += 1
        if not event._ok and not event.defused:
            exc = event._value
            raise exc if isinstance(exc, Exception) else SimulationError(repr(exc))

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` -- run until no events remain.
            * a float -- run until the clock reaches that time.
            * an :class:`Event` -- run until that event is processed and
              return its value (raising if it failed).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:  # already processed
                return stop_event.value
            flag = {"done": False}
            stop_event.add_callback(lambda ev: flag.__setitem__("done", True))
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(f"until={stop_time} is in the past (now={self._now})")
        while self._queue:
            if stop_event is None and self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()
            if stop_event is not None and stop_event.processed:
                if not stop_event.ok:
                    raise stop_event.value
                return stop_event.value
        if stop_event is not None:
            raise SimulationError(
                "simulation ran out of events before the 'until' event fired"
            )
        if stop_time != float("inf"):
            self._now = stop_time
        return None
