"""Time Warp optimistic executor for the ROSS-style kernel.

ROSS [60] is "a high-performance, low-memory, modular Time Warp system":
its signature synchronisation protocol is *optimistic* -- logical processes
execute speculatively past each other and recover from causality
violations by rolling back.  The conservative executor in
:mod:`repro.des.ross` is the safe baseline; this module adds the Time Warp
side so the kernel implements both of the PDES families the paper's
simulation taxonomy (Sec. IV-C-1) rests on.

Mechanics implemented (sequentially emulated, as with the conservative
executor -- the *protocol* is what is reproduced):

* **speculative execution**: each scheduling round lets every LP process a
  batch of its pending events regardless of global timestamp order;
* **state saving**: an LP snapshot is taken before every speculative
  event (copy-on-every-event, ROSS's original mode);
* **rollback**: a straggler message (timestamp below the LP's local
  virtual time) restores the snapshot, re-enqueues the undone events, and
  cancels their outputs;
* **anti-messages**: cancelled sends annihilate their positive message in
  the destination's queue, recursively rolling the destination back if it
  already processed them;
* **GVT & fossil collection**: the global virtual time (minimum unprocessed
  timestamp) bounds rollback; older history is committed and freed.

Statistics expose the classic Time Warp health metrics: rollbacks,
anti-messages, and efficiency (committed / processed events).

Determinism: Time Warp commits exactly the events a sequential run would
process, in the same per-LP order, so final LP states and traces match the
:class:`~repro.des.ross.SequentialExecutor` bit for bit -- the ablation
test asserts this.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.des.ross import RossEvent, RossKernel


@dataclass
class _Processed:
    """One speculatively processed event with everything needed to undo it."""

    event: RossEvent
    lp_snapshot: object
    send_counter: int
    outputs: Tuple[RossEvent, ...]


@dataclass
class OptimisticStats:
    """Time Warp health metrics."""

    events_processed: int = 0
    events_committed: int = 0
    events_rolled_back: int = 0
    rollbacks: int = 0
    anti_messages: int = 0
    gvt_rounds: int = 0
    max_rollback_depth: int = 0

    @property
    def efficiency(self) -> float:
        """Committed work / total work (1.0 = no wasted speculation)."""
        if self.events_processed == 0:
            return 1.0
        return self.events_committed / self.events_processed


class OptimisticExecutor:
    """Time Warp execution of a :class:`~repro.des.ross.RossKernel`.

    Parameters
    ----------
    kernel:
        The LP population.  Unlike the conservative executor, no positive
        lookahead is required (kernel lookahead may be 0, though sends of
        zero delay to *oneself* still work because self-messages land in
        the LP's own future queue).
    batch:
        Speculative events each LP may process per round before the next
        GVT computation.  Larger batches mean more optimism: more
        parallelism exposed, more rollback risk.
    """

    def __init__(self, kernel: RossKernel, batch: int = 4):
        if batch <= 0:
            raise ValueError("batch must be positive")
        self.kernel = kernel
        self.batch = batch
        self.stats = OptimisticStats()
        self._queues: Dict[int, List[RossEvent]] = {}
        self._processed: Dict[int, List[_Processed]] = {}
        self._cancelled: set = set()

    # -- helpers ---------------------------------------------------------------
    def _lvt(self, lp_id: int) -> Tuple:
        """Local virtual time: sort key of the last processed event."""
        hist = self._processed[lp_id]
        if not hist:
            return (-1.0,)
        return hist[-1].event.sort_key

    def _gvt(self) -> float:
        """Global virtual time: min unprocessed timestamp anywhere."""
        times = [q[0].time for q in self._queues.values() if q]
        return min(times) if times else float("inf")

    def _enqueue(self, ev: RossEvent) -> None:
        heapq.heappush(self._queues[ev.dest], ev)

    def _remove_from_queue(self, ev: RossEvent) -> bool:
        q = self._queues[ev.dest]
        try:
            q.remove(ev)
        except ValueError:
            return False
        heapq.heapify(q)
        return True

    # -- rollback machinery -------------------------------------------------------
    def _rollback(self, lp_id: int, to_key: Tuple) -> None:
        """Undo every processed event of ``lp_id`` with sort key >= to_key."""
        hist = self._processed[lp_id]
        undo: List[_Processed] = []
        while hist and hist[-1].event.sort_key >= to_key:
            undo.append(hist.pop())
        if not undo:
            return
        self.stats.rollbacks += 1
        self.stats.events_rolled_back += len(undo)
        self.stats.max_rollback_depth = max(self.stats.max_rollback_depth, len(undo))
        lp = self.kernel.lps[lp_id]
        # Restore to the state before the *earliest* undone event.
        earliest = undo[-1]
        lp.restore(earliest.lp_snapshot)
        self.kernel._send_counters[lp_id] = earliest.send_counter
        # Undone events go back to the queue; their outputs are cancelled.
        for entry in undo:
            self._enqueue(entry.event)
            for msg in entry.outputs:
                self._annihilate(msg)

    def _annihilate(self, msg: RossEvent) -> None:
        """Send the anti-message for ``msg``: cancel it wherever it is."""
        self.stats.anti_messages += 1
        if self._remove_from_queue(msg):
            return
        # Already processed by the destination: roll it back past the
        # message (which re-enqueues it), then remove it.
        dest_hist = self._processed[msg.dest]
        if any(p.event == msg for p in dest_hist):
            self._rollback(msg.dest, msg.sort_key)
            if not self._remove_from_queue(msg):
                raise RuntimeError(
                    "anti-message failed to annihilate its positive message"
                )

    # -- fossil collection ----------------------------------------------------------
    def _fossil_collect(self, gvt: float) -> None:
        for lp_id, hist in self._processed.items():
            keep_from = 0
            for i, entry in enumerate(hist):
                if entry.event.time < gvt:
                    keep_from = i + 1
                    self.stats.events_committed += 1
                else:
                    break
            if keep_from:
                del hist[:keep_from]

    # -- main loop ---------------------------------------------------------------------
    def run(self, until: float = float("inf")) -> OptimisticStats:
        self._queues = {lp_id: [] for lp_id in self.kernel.lps}
        self._processed = {lp_id: [] for lp_id in self.kernel.lps}
        for ev in self.kernel._drain_outbox():
            self._enqueue(ev)

        while True:
            gvt = self._gvt()
            if gvt > until:
                break
            self.stats.gvt_rounds += 1

            # One optimistic round: every LP speculates up to `batch`
            # events from its own queue, in its local order.
            progressed = False
            for lp_id in sorted(self._queues):
                for _ in range(self.batch):
                    q = self._queues[lp_id]
                    if not q or q[0].time > until:
                        break
                    ev = heapq.heappop(q)
                    lp = self.kernel.lps[lp_id]
                    snap = lp.snapshot()
                    counter = self.kernel._send_counters[lp_id]
                    outputs = tuple(self.kernel._execute_one(ev))
                    self._processed[lp_id].append(
                        _Processed(ev, snap, counter, outputs)
                    )
                    self.stats.events_processed += 1
                    progressed = True
                    for msg in outputs:
                        if msg.time <= ev.time:
                            raise ValueError(
                                "optimistic execution requires strictly "
                                "positive message delays"
                            )
                        if msg.sort_key <= self._lvt(msg.dest):
                            # Straggler: the destination ran past this
                            # timestamp -- roll it back, then deliver.
                            self._rollback(msg.dest, msg.sort_key)
                        self._enqueue(msg)
            self._fossil_collect(self._gvt())
            if not progressed:
                break

        # Commit whatever remains (simulation ended: everything is final).
        for hist in self._processed.values():
            self.stats.events_committed += len(hist)
            hist.clear()
        return self.stats
