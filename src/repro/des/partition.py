"""Topology-partitioned parallel execution of the ROSS-style LP kernel.

:class:`repro.des.ross.ConservativeExecutor` exposes YAWNS windows but
still executes them on one core.  This module realizes the parallelism:
the LP population is split into *partitions* (ideally along fabric
islands -- racks / OSS groups -- so that most traffic stays inside a
partition), every partition owns its LPs' event queues, and each
conservative window is processed by all partitions concurrently.  Only
cross-partition messages are synchronization traffic: they are gathered
at the window barrier, sorted into their canonical content-based order
(so thread/process completion order cannot leak into results) and routed
to the destination partition before the next LBTS reduction.

Determinism: an LP processes exactly the same events in exactly the same
local order as under the sequential executor -- the partition an LP lives
in only changes *where* that happens, never *what* -- so final LP states
and per-LP traces are bit-identical across all executors and backends
(the engine-equivalence property tests pin this).

Backends
--------
``serial``
    One partition at a time, in index order.  The reference
    implementation; also the cheapest when windows are narrow.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor` processes
    partitions concurrently within each window.  Wins when LP handlers
    release the GIL (numpy cohort handlers); loses little otherwise.
``process``
    Persistent worker processes, one per partition, each owning its
    partition's LP state for the whole run.  Only window horizons and
    cross-partition events cross the IPC boundary.  Requires a picklable
    ``kernel_factory`` so every worker can build its shard of the model.
"""

from __future__ import annotations

import heapq
import logging
import multiprocessing
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.des.cohort import canonical_event_sort
from repro.des.engine import SimulationError
from repro.des.ross import (
    ExecutionStats,
    LogicalProcess,
    RossEvent,
    RossKernel,
    _degenerate_window_error,
)
from repro.telemetry import TELEMETRY
from repro.telemetry.collect import (
    init_worker,
    merge_snapshot,
    snapshot as telemetry_snapshot,
    worker_init_args,
)

_INF = float("inf")

BACKENDS = ("serial", "thread", "process")


# ---------------------------------------------------------------------------
# Partition plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PartitionPlan:
    """Assignment of LP ids to partitions.

    ``assignment`` maps every LP id to a partition index in
    ``[0, n_partitions)``.  Build one with :meth:`round_robin`,
    :meth:`contiguous` or :meth:`from_islands`.
    """

    n_partitions: int
    assignment: Dict[int, int]

    def __post_init__(self):
        if self.n_partitions < 1:
            raise ValueError("need at least one partition")
        bad = {lp: p for lp, p in self.assignment.items()
               if not 0 <= p < self.n_partitions}
        if bad:
            raise ValueError(f"LP(s) assigned outside partition range: {bad}")

    @classmethod
    def round_robin(cls, lp_ids: Sequence[int], n_partitions: int) -> "PartitionPlan":
        ids = sorted(lp_ids)
        n = max(1, min(n_partitions, len(ids)))
        return cls(n, {lp: i % n for i, lp in enumerate(ids)})

    @classmethod
    def contiguous(cls, lp_ids: Sequence[int], n_partitions: int) -> "PartitionPlan":
        """Equal contiguous slices of the sorted id space.

        The right default for island-numbered models: neighbouring islands
        (which exchange halo traffic) land in the same partition.
        """
        ids = sorted(lp_ids)
        n = max(1, min(n_partitions, len(ids)))
        per = -(-len(ids) // n)  # ceil division
        return cls(n, {lp: min(i // per, n - 1) for i, lp in enumerate(ids)})

    @classmethod
    def from_islands(
        cls, islands: Sequence[Sequence[int]], n_partitions: Optional[int] = None
    ) -> "PartitionPlan":
        """Partition along pre-grouped islands (e.g. fabric islands).

        Whole islands are assigned contiguously so intra-island traffic
        never crosses a partition boundary; ``n_partitions`` defaults to
        one partition per island.
        """
        if not islands:
            raise ValueError("need at least one island")
        n = len(islands) if n_partitions is None else min(n_partitions, len(islands))
        n = max(1, n)
        per = -(-len(islands) // n)
        assignment: Dict[int, int] = {}
        for i, members in enumerate(islands):
            part = min(i // per, n - 1)
            for lp in members:
                if lp in assignment:
                    raise ValueError(f"LP {lp} appears in multiple islands")
                assignment[lp] = part
        return cls(n, assignment)

    def members(self, partition: int) -> List[int]:
        return sorted(lp for lp, p in self.assignment.items() if p == partition)

    def describe(self) -> str:
        sizes = [0] * self.n_partitions
        for p in self.assignment.values():
            sizes[p] += 1
        return (f"{self.n_partitions} partition(s) over "
                f"{len(self.assignment)} LP(s), sizes {sizes}")


def fabric_islands(spec) -> List[Dict[str, Any]]:
    """Group a :class:`~repro.cluster.platform.PlatformSpec` into islands.

    Each OSS (with its OSTs) anchors one island -- the storage-side
    "rack" -- and the compute nodes are dealt out contiguously across
    islands, mirroring how rack-local traffic dominates on real fabrics.
    Returns one dict per island: ``{"oss": name, "osts": [ids],
    "compute": [names]}``.  The scenario layer and the scale model use
    this to size LP populations and partition plans from the platform.
    """
    n_islands = max(1, spec.n_oss)
    islands: List[Dict[str, Any]] = []
    per_compute = -(-spec.n_compute // n_islands)
    for i in range(n_islands):
        lo = i * per_compute
        hi = min(spec.n_compute, lo + per_compute)
        islands.append({
            "oss": f"oss{i}",
            "osts": list(range(i * spec.osts_per_oss,
                               (i + 1) * spec.osts_per_oss)),
            "compute": [f"c{j}" for j in range(lo, hi)],
        })
    return islands


# ---------------------------------------------------------------------------
# Per-partition runtime
# ---------------------------------------------------------------------------

class _Shard:
    """One partition's private runtime: LPs, queues, clock and outbox.

    Mirrors the mediation :class:`~repro.des.ross.RossKernel` performs for
    the whole LP population, but over a disjoint subset, so partitions can
    execute a window concurrently without sharing any mutable state.  LP
    handlers receive the shard as their ``kernel`` argument; the send
    contract (per-source sequence numbers, lookahead enforcement, known
    destinations) is identical.
    """

    __slots__ = (
        "partition", "lookahead", "known", "lps", "queues",
        "_now", "_current_lp", "_outbox", "_send_counters", "events_handled",
    )

    def __init__(
        self,
        partition: int,
        lookahead: float,
        known: frozenset,
        lps: Dict[int, LogicalProcess],
        send_counters: Optional[Dict[int, int]] = None,
    ):
        self.partition = partition
        self.lookahead = lookahead
        self.known = known
        self.lps = lps
        self.queues: Dict[int, List[RossEvent]] = {lp_id: [] for lp_id in lps}
        self._now = 0.0
        self._current_lp: Optional[int] = None
        self._outbox: List[RossEvent] = []
        self._send_counters = {
            lp_id: (send_counters or {}).get(lp_id, 0) for lp_id in lps
        }
        self.events_handled = 0

    # -- the kernel interface LP handlers see -------------------------------
    @property
    def now(self) -> float:
        return self._now

    def send(self, dest: int, delay: float, kind: str, payload: Any = None) -> RossEvent:
        if self._current_lp is None:
            raise RuntimeError("send() may only be called from inside handle()")
        if dest not in self.known:
            raise KeyError(f"unknown destination LP {dest}")
        if delay < self.lookahead:
            raise ValueError(
                f"message delay {delay} violates lookahead {self.lookahead}"
            )
        src = self._current_lp
        seq = self._send_counters[src]
        self._send_counters[src] = seq + 1
        ev = RossEvent(self._now + delay, dest, kind, payload,
                       source=src, source_seq=seq)
        self._outbox.append(ev)
        return ev

    # -- executor side -------------------------------------------------------
    def enqueue(self, ev: RossEvent) -> None:
        heapq.heappush(self.queues[ev.dest], ev)

    def min_pending(self) -> float:
        heads = [q[0].time for q in self.queues.values() if q]
        return min(heads) if heads else _INF

    def run_window(
        self, horizon: float, until: float
    ) -> Tuple[List[RossEvent], int, int]:
        """Process every pending event below ``horizon`` (and ``until``).

        Returns ``(cross_partition_events, events_processed,
        max_events_one_lp)``.  Intra-partition messages are enqueued
        locally (their timestamps are beyond the horizon, so they cannot
        join the current window); everything else is handed back for the
        coordinator to route after the barrier.
        """
        remote: List[RossEvent] = []
        window_events = 0
        max_per_lp = 0
        for lp_id in sorted(self.queues):
            q = self.queues[lp_id]
            if not q:
                continue
            lp = self.lps[lp_id]
            handled_here = 0
            while q and q[0].time < horizon and q[0].time <= until:
                ev = heapq.heappop(q)
                self._now = ev.time
                self._current_lp = lp_id
                try:
                    lp._dispatch(self, ev)
                finally:
                    self._current_lp = None
                handled_here += 1
                for new in self._drain_outbox():
                    if new.time < horizon:
                        raise RuntimeError(
                            "causality violation: generated event inside "
                            "the current window (lookahead contract broken)"
                        )
                    if new.dest in self.lps:
                        heapq.heappush(self.queues[new.dest], new)
                    else:
                        remote.append(new)
            window_events += handled_here
            if handled_here > max_per_lp:
                max_per_lp = handled_here
        self.events_handled += window_events
        return remote, window_events, max_per_lp

    def _drain_outbox(self) -> List[RossEvent]:
        out, self._outbox = self._outbox, []
        return out

    def state_digests(self) -> Dict[int, Any]:
        return {lp_id: lp.state_digest() for lp_id, lp in self.lps.items()}

    def collect(self, method: str) -> Dict[int, Any]:
        return {
            lp_id: getattr(lp, method)()
            for lp_id, lp in self.lps.items()
            if hasattr(lp, method)
        }


def _build_shards(
    kernel: RossKernel, plan: PartitionPlan
) -> List[_Shard]:
    """Split a populated kernel into per-partition shards.

    The kernel's injected initial events (its outbox) are routed into the
    owning shards; its per-LP send counters carry over so a partitioned
    run started mid-stream numbers messages identically.
    """
    missing = sorted(set(kernel.lps) - set(plan.assignment))
    if missing:
        raise ValueError(f"partition plan does not cover LP(s): {missing}")
    known = frozenset(kernel.lps)
    shards = [
        _Shard(
            p,
            kernel.lookahead,
            known,
            {lp_id: kernel.lps[lp_id] for lp_id in plan.members(p)},
            kernel._send_counters,
        )
        for p in range(plan.n_partitions)
    ]
    by_partition = plan.assignment
    for ev in kernel._drain_outbox():
        shards[by_partition[ev.dest]].enqueue(ev)
    return shards


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------

@dataclass
class PartitionStats(ExecutionStats):
    """Execution stats plus partition-level occupancy accounting."""

    backend: str = "serial"
    partitions: int = 1
    #: Total events each partition processed over the whole run.
    partition_events: List[int] = field(default_factory=list)
    #: Per window: how many partitions processed at least one event.  The
    #: realized-parallelism signal -- a window occupying one partition ran
    #: as fast as the serial executor would have.
    occupied_partitions: List[int] = field(default_factory=list)
    #: Events that crossed a partition boundary (synchronization traffic).
    exchanged: int = 0

    @property
    def mean_occupancy(self) -> float:
        """Average number of partitions active per window."""
        if not self.occupied_partitions:
            return 0.0
        return sum(self.occupied_partitions) / len(self.occupied_partitions)

    @property
    def exchange_fraction(self) -> float:
        """Share of all events that crossed partitions."""
        return self.exchanged / self.events if self.events else 0.0


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------

class PartitionedExecutor:
    """Conservative windowed execution with concurrent partitions.

    Parameters
    ----------
    kernel:
        A populated :class:`RossKernel` (serial/thread backends; optional
        for ``process``, where each worker builds its own via the factory).
    plan:
        LP-to-partition assignment.  Defaults to one round-robin partition
        per worker.
    backend:
        ``"serial"``, ``"thread"`` or ``"process"`` (see module docs).
    max_workers:
        Concurrency cap for the thread backend (the process backend runs
        one worker per partition by construction).
    kernel_factory / factory_args:
        Module-level callable (plus positional args) that rebuilds the
        populated kernel; required by the process backend, which cannot
        ship live LP object graphs across the IPC boundary.
    """

    def __init__(
        self,
        kernel: Optional[RossKernel] = None,
        plan: Optional[PartitionPlan] = None,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        kernel_factory: Optional[Callable[..., RossKernel]] = None,
        factory_args: Tuple = (),
    ):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        if kernel is None:
            if kernel_factory is None:
                raise ValueError("need a kernel or a kernel_factory")
            if backend != "process":
                kernel = kernel_factory(*factory_args)
        if backend == "process" and kernel_factory is None:
            raise ValueError(
                "the process backend needs a picklable kernel_factory: live "
                "LP graphs do not cross the IPC boundary"
            )
        probe = kernel if kernel is not None else kernel_factory(*factory_args)
        if probe.lookahead <= 0:
            raise ValueError("partitioned execution requires positive lookahead")
        self.lookahead = probe.lookahead
        if plan is None:
            workers = max_workers or multiprocessing.cpu_count()
            plan = PartitionPlan.round_robin(sorted(probe.lps), workers)
        self.kernel = kernel
        self.plan = plan
        self.backend = backend
        self.max_workers = max_workers
        self.kernel_factory = kernel_factory
        self.factory_args = factory_args
        self.stats = PartitionStats(backend=backend, partitions=plan.n_partitions)
        self._shards: Optional[List[_Shard]] = None
        self._finalized: Dict[int, Any] = {}
        self._collected: Dict[str, Dict[int, Any]] = {}
        self._traces: Dict[int, list] = {}

    # -- shared window loop --------------------------------------------------
    def run(self, until: float = _INF) -> PartitionStats:
        if self.backend == "process":
            return self._run_process(until)
        return self._run_local(until)

    def _record_window(
        self,
        per_partition: List[Tuple[List[RossEvent], int, int]],
        now: Optional[float] = None,
    ) -> List[RossEvent]:
        """Fold one window's per-partition results into the stats; return
        the canonically-sorted cross-partition traffic.

        ``now`` is the window's LBTS (simulated seconds); when telemetry
        is on it timestamps the occupancy/exchange time series.
        """
        stats = self.stats
        window_events = sum(n for _, n, _ in per_partition)
        stats.events += window_events
        stats.windows += 1
        stats.window_sizes.append(window_events)
        stats.critical_path += max((m for _, _, m in per_partition), default=0)
        occupied = sum(1 for _, n, _ in per_partition if n)
        stats.occupied_partitions.append(occupied)
        remote: List[RossEvent] = []
        for out, _, _ in per_partition:
            remote.extend(out)
        stats.exchanged += len(remote)
        if TELEMETRY.active and now is not None:
            series = TELEMETRY.series
            series.record("des.partition.occupancy", now, occupied, "partitions")
            series.record("des.partition.window_events", now, window_events, "events")
            series.record("des.partition.exchanged", now, len(remote), "events")
        return canonical_event_sort(remote)

    def _publish_telemetry(self) -> None:
        if not TELEMETRY.active:
            return
        m = TELEMETRY.metrics
        s = self.stats
        m.counter("des.partition.windows").inc(s.windows)
        m.counter("des.partition.events").inc(s.events)
        m.counter("des.partition.exchanged").inc(s.exchanged)
        for occupied in s.occupied_partitions:
            m.histogram("des.partition.window_occupancy").observe(occupied)
        for p, n in enumerate(s.partition_events):
            m.counter(f"des.partition.p{p}.events").inc(n)

    # -- serial / thread -----------------------------------------------------
    def _run_local(self, until: float) -> PartitionStats:
        shards = _build_shards(self.kernel, self.plan)
        self._shards = shards
        pool = (
            ThreadPoolExecutor(
                max_workers=min(
                    self.plan.n_partitions,
                    self.max_workers or multiprocessing.cpu_count(),
                )
            )
            if self.backend == "thread"
            else None
        )
        try:
            while True:
                lbts = min(shard.min_pending() for shard in shards)
                if lbts == _INF or lbts > until:
                    break
                horizon = lbts + self.lookahead
                if not horizon > lbts:
                    raise _degenerate_window_error(lbts, self.lookahead)
                if pool is not None:
                    results = list(
                        pool.map(lambda s: s.run_window(horizon, until), shards)
                    )
                else:
                    results = [s.run_window(horizon, until) for s in shards]
                for ev in self._record_window(results, now=lbts):
                    shards[self.plan.assignment[ev.dest]].enqueue(ev)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        self.stats.partition_events = [s.events_handled for s in shards]
        self._publish_telemetry()
        return self.stats

    # -- process backend -----------------------------------------------------
    def _run_process(self, until: float) -> PartitionStats:
        ctx = _mp_context()
        conns = []
        procs = []
        try:
            telemetry_active, log_level = worker_init_args()
            for p in range(self.plan.n_partitions):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_partition_worker,
                    args=(child, self.kernel_factory, self.factory_args,
                          self.plan.n_partitions, self.plan.assignment, p,
                          telemetry_active, log_level),
                    daemon=False,
                )
                proc.start()
                child.close()
                conns.append(parent)
                procs.append(proc)

            mins = [self._recv(conn) for conn in conns]
            while True:
                lbts = min(mins)
                if lbts == _INF or lbts > until:
                    break
                horizon = lbts + self.lookahead
                if not horizon > lbts:
                    raise _degenerate_window_error(lbts, self.lookahead)
                for conn in conns:
                    conn.send(("window", horizon, until))
                results = [self._recv(conn) for conn in conns]
                remote = self._record_window(results, now=lbts)
                groups: List[List[RossEvent]] = [
                    [] for _ in range(self.plan.n_partitions)
                ]
                for ev in remote:
                    groups[self.plan.assignment[ev.dest]].append(ev)
                for conn, group in zip(conns, groups):
                    conn.send(("route", group))
                mins = [self._recv(conn) for conn in conns]

            for conn in conns:
                conn.send(("finish",))
            finals = [self._recv(conn) for conn in conns]
            self.stats.partition_events = [f["events"] for f in finals]
            for f in finals:
                self._finalized.update(f["digests"])
                self._traces.update(f["traces"])
                for method, payload in f["collected"].items():
                    self._collected.setdefault(method, {}).update(payload)
                merge_snapshot(f.get("telemetry"))
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join()
        self._publish_telemetry()
        return self.stats

    @staticmethod
    def _recv(conn):
        msg = conn.recv()
        if isinstance(msg, tuple) and msg and msg[0] == "error":
            raise SimulationError(
                f"partition worker failed:\n{msg[1]}"
            )
        return msg

    # -- result access -------------------------------------------------------
    def state_digests(self) -> Dict[int, Any]:
        """Final ``state_digest()`` of every LP, merged across partitions."""
        if self.backend == "process":
            return dict(self._finalized)
        out: Dict[int, Any] = {}
        for shard in self._shards or []:
            out.update(shard.state_digests())
        return out

    def traces(self) -> Dict[int, list]:
        """Per-LP handled-event traces (determinism checks)."""
        if self.backend == "process":
            return dict(self._traces)
        return {
            lp_id: lp.trace
            for shard in self._shards or []
            for lp_id, lp in shard.lps.items()
        }

    def collect(self, method: str) -> Dict[int, Any]:
        """Call ``method()`` on every LP that defines it; merge the results.

        How partitioned runs return model-level outcomes (the process
        backend fetches them over IPC at shutdown).
        """
        if self.backend == "process":
            return dict(self._collected.get(method, {}))
        out: Dict[int, Any] = {}
        for shard in self._shards or []:
            out.update(shard.collect(method))
        return out


def _mp_context():
    """Prefer fork (cheap, no pickling of the factory's globals); fall back
    to the platform default where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _partition_worker(
    conn, factory, factory_args, n_partitions, assignment, partition,
    telemetry_active=False, log_level=logging.WARNING,
):
    """Worker entry point: build the model, keep one partition, serve windows.

    ``telemetry_active``/``log_level`` mirror the parent's observability
    state (a ``spawn``-context worker starts from library defaults); the
    worker's spans/metrics/series ride back on the ``finish`` reply.
    """
    try:
        init_worker(telemetry_active, log_level)
        kernel = factory(*factory_args)
        known = frozenset(kernel.lps)
        members = {lp_id for lp_id, p in assignment.items() if p == partition}
        shard = _Shard(
            partition,
            kernel.lookahead,
            known,
            {lp_id: kernel.lps[lp_id] for lp_id in sorted(members)},
            kernel._send_counters,
        )
        for ev in kernel._drain_outbox():
            if ev.dest in members:
                shard.enqueue(ev)
        conn.send(shard.min_pending())
        while True:
            msg = conn.recv()
            if msg[0] == "window":
                _, horizon, until = msg
                if TELEMETRY.active:
                    with TELEMETRY.tracer.span(
                        "partition.window", cat="des.partition",
                        partition=partition,
                    ):
                        out, n_events, max_per_lp = shard.run_window(
                            horizon, until
                        )
                else:
                    out, n_events, max_per_lp = shard.run_window(horizon, until)
                conn.send((out, n_events, max_per_lp))
            elif msg[0] == "route":
                for ev in msg[1]:
                    shard.enqueue(ev)
                conn.send(shard.min_pending())
            elif msg[0] == "finish":
                collected = {}
                for method in ("collect_result",):
                    payload = shard.collect(method)
                    if payload:
                        collected[method] = payload
                conn.send({
                    "events": shard.events_handled,
                    "digests": shard.state_digests(),
                    "traces": {lp_id: lp.trace
                               for lp_id, lp in shard.lps.items()},
                    "collected": collected,
                    "telemetry": telemetry_snapshot(),
                })
                return
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown message {msg[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass


__all__ = [
    "BACKENDS",
    "PartitionPlan",
    "PartitionStats",
    "PartitionedExecutor",
    "fabric_islands",
]
