"""Discrete-event simulation kernel.

This package provides the simulation substrate used by every other part of
:mod:`repro` (the paper's taxonomy, Sec. IV-C, treats simulation as the
workhorse for large-scale I/O evaluation when no testbed is available):

* :mod:`repro.des.engine` -- a process-based (coroutine-style) sequential
  discrete-event simulation environment, in the spirit of SimPy.  Simulated
  processes are Python generators that ``yield`` events; the environment owns
  the virtual clock and the event queue.
* :mod:`repro.des.resources` -- queueing primitives (resources, containers,
  stores) used to model servers, devices and buffers.
* :mod:`repro.des.sharing` -- a processor-sharing bandwidth resource used to
  model shared network links and storage devices with fair bandwidth
  allocation among concurrent transfers.
* :mod:`repro.des.ross` -- a ROSS-style logical-process kernel (events are
  dispatched to LP handlers) with both a sequential executor and a
  conservative, YAWNS-style windowed parallel executor.  The CODES storage
  simulation framework surveyed by the paper is built on ROSS; this module is
  our equivalent substrate and is validated for determinism against the
  sequential executor (ablation A1).
* :mod:`repro.des.rng` -- reproducible named random streams.

All times are floats in seconds of virtual time.  Determinism: ties in the
event queue are broken by (time, priority, insertion sequence), so two runs
of the same program produce identical event orderings.
"""

from repro.des.cohort import MIN_VECTOR_BATCH, canonical_event_sort
from repro.des.engine import Environment, SimulationError
from repro.des.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
    URGENT,
    NORMAL,
    LOW,
)
from repro.des.process import Process
from repro.des.resources import Container, PriorityResource, Resource, Store
from repro.des.sharing import FairShareLink
from repro.des.rng import RandomStreams
from repro.des.ross import (
    ConservativeExecutor,
    LogicalProcess,
    RossEvent,
    RossKernel,
    SequentialExecutor,
)
from repro.des.optimistic import OptimisticExecutor, OptimisticStats
from repro.des.partition import (
    PartitionPlan,
    PartitionStats,
    PartitionedExecutor,
    fabric_islands,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "ConservativeExecutor",
    "Container",
    "Environment",
    "Event",
    "FairShareLink",
    "Interrupt",
    "LOW",
    "LogicalProcess",
    "MIN_VECTOR_BATCH",
    "NORMAL",
    "OptimisticExecutor",
    "OptimisticStats",
    "PartitionPlan",
    "PartitionStats",
    "PartitionedExecutor",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "RossEvent",
    "RossKernel",
    "SequentialExecutor",
    "SimulationError",
    "Store",
    "Timeout",
    "URGENT",
    "canonical_event_sort",
    "fabric_islands",
]
