"""Processor-sharing bandwidth resources.

A :class:`FairShareLink` models a shared medium (network link, storage
device channel) of fixed aggregate rate.  All concurrent transfers progress
simultaneously, each receiving an equal share of the rate (classic
processor-sharing / fair-queueing fluid model).  This captures the key
contention effect in parallel I/O: N clients writing through one link each
see roughly 1/N of its bandwidth -- which is what makes cross-application
interference (claim C10) and fabric bottlenecks emerge from the model rather
than being baked in.

Implementation: the link keeps, for every active flow, the number of bytes
remaining.  Whenever the set of active flows changes, remaining work is
advanced by the elapsed time at the *old* share, and a single completion
timer is (re)scheduled for the flow that will finish first at the *new*
share.  A generation counter invalidates stale timers.
"""

from __future__ import annotations

from typing import Optional

from repro.des.events import Event, URGENT


class _Flow:
    __slots__ = ("event", "remaining", "seq")

    def __init__(self, event: Event, remaining: float, seq: int):
        self.event = event
        self.remaining = remaining
        self.seq = seq


class FairShareLink:
    """A shared link with fair (equal-share) bandwidth allocation.

    Parameters
    ----------
    env:
        Owning environment.
    rate:
        Aggregate bandwidth in bytes per second.
    concurrency_limit:
        Optional cap on simultaneously *active* flows; additional transfers
        queue FIFO.  ``None`` means unbounded sharing.

    Notes
    -----
    Latency is deliberately *not* modelled here; callers add per-message
    latency separately (see :class:`repro.cluster.network.NetworkFabric`)
    because latency is paid per message while bandwidth is shared.
    """

    def __init__(self, env, rate: float, concurrency_limit: Optional[int] = None):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if concurrency_limit is not None and concurrency_limit <= 0:
            raise ValueError("concurrency_limit must be positive or None")
        self.env = env
        self.rate = float(rate)
        self.concurrency_limit = concurrency_limit
        self._active: list[_Flow] = []
        self._pending: list[_Flow] = []
        self._last_update = env.now
        self._timer_generation = 0
        self._seq = 0
        # Statistics
        self.bytes_transferred = 0.0
        self.busy_time = 0.0

    # -- public API -----------------------------------------------------------
    @property
    def active_flows(self) -> int:
        """Number of transfers currently sharing the link."""
        return len(self._active)

    @property
    def utilization(self) -> float:
        """Fraction of elapsed time the link had at least one active flow."""
        elapsed = self.env.now
        if elapsed <= 0:
            return 0.0
        busy = self.busy_time
        if self._active:
            busy += self.env.now - self._last_update
        return min(1.0, busy / elapsed)

    def transfer(self, nbytes: float) -> Event:
        """Start transferring ``nbytes``; the event fires on completion."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        ev = Event(self.env)
        if nbytes == 0:
            ev.succeed(0.0)
            return ev
        self.bytes_transferred += nbytes
        flow = _Flow(ev, float(nbytes), self._seq)
        self._seq += 1
        self._advance()
        if (
            self.concurrency_limit is not None
            and len(self._active) >= self.concurrency_limit
        ):
            self._pending.append(flow)
        else:
            self._active.append(flow)
        self._reschedule()
        return ev

    # -- internals --------------------------------------------------------------
    def _share(self) -> float:
        return self.rate / len(self._active)

    def _advance(self) -> None:
        """Progress all active flows from the last update time to now."""
        now = self.env.now
        dt = now - self._last_update
        if dt > 0 and self._active:
            done = dt * self._share()
            for flow in self._active:
                flow.remaining -= done
            self.busy_time += dt
        self._last_update = now

    def _reschedule(self) -> None:
        """Arm a completion timer for the earliest-finishing active flow."""
        self._timer_generation += 1
        if not self._active:
            return
        gen = self._timer_generation
        min_remaining = min(f.remaining for f in self._active)
        delay = max(0.0, min_remaining / self._share())
        timer = Event(self.env)
        timer._ok = True
        timer._value = None
        timer.add_callback(lambda _ev, g=gen: self._on_timer(g))
        self.env.schedule(timer, delay=delay, priority=URGENT)

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # stale timer: flow set changed since it was armed
        self._advance()
        # Sub-millibyte residue is floating-point noise; treating it as done
        # guarantees progress (otherwise a ~1e-16-byte remainder arms a
        # zero-delay timer forever because now + delay == now in floats).
        eps = 1e-3
        finished = [f for f in self._active if f.remaining <= eps]
        if not finished and self._active:
            # The timer fired for *some* flow; float rounding can leave its
            # remaining marginally positive while the computed delay rounds
            # to zero.  Force-complete the minimum to preserve liveness.
            min_flow = min(self._active, key=lambda f: (f.remaining, f.seq))
            if min_flow.remaining / self._share() + self.env.now <= self.env.now:
                finished = [min_flow]
        # Deterministic completion order regardless of float noise.
        finished.sort(key=lambda f: f.seq)
        for flow in finished:
            self._active.remove(flow)
            flow.event.succeed(self.env.now)
        while (
            self._pending
            and (
                self.concurrency_limit is None
                or len(self._active) < self.concurrency_limit
            )
        ):
            self._active.append(self._pending.pop(0))
        self._reschedule()
