"""Processor-sharing bandwidth resources.

A :class:`FairShareLink` models a shared medium (network link, storage
device channel) of fixed aggregate rate.  All concurrent transfers progress
simultaneously, each receiving an equal share of the rate (classic
processor-sharing / fair-queueing fluid model).  This captures the key
contention effect in parallel I/O: N clients writing through one link each
see roughly 1/N of its bandwidth -- which is what makes cross-application
interference (claim C10) and fabric bottlenecks emerge from the model rather
than being baked in.

Implementation: *incremental* virtual-service accounting.  Because every
active flow receives the same share, the service each flow has accumulated
since it joined is a single link-wide number: ``_virtual``, the bytes
delivered to each active flow since the link's current busy period began.
A flow entering with ``nbytes`` to move finishes when ``_virtual`` reaches
``_virtual + nbytes``; that *finish tag* is fixed at admission, so the
active set is a min-heap ordered by ``(finish_tag, seq)``.  A flow-set
change costs O(log n) (heap push/pop) instead of the O(n) per-flow
``remaining`` rewrite of the naive model -- O(n log n) total for n
transfers instead of O(n^2).  A generation counter invalidates stale
completion timers, exactly as before.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Deque, Optional, Tuple

from repro.des.events import Event, URGENT
from repro.telemetry import TELEMETRY


class _Flow:
    """An admitted flow: completes when the link's virtual service reaches
    ``finish_tag``.  Orders by (finish_tag, seq) so simultaneous finishers
    complete in admission order, independent of float noise."""

    __slots__ = ("event", "finish_tag", "seq")

    def __init__(self, event: Event, finish_tag: float, seq: int):
        self.event = event
        self.finish_tag = finish_tag
        self.seq = seq

    def __lt__(self, other: "_Flow") -> bool:
        if self.finish_tag != other.finish_tag:
            return self.finish_tag < other.finish_tag
        return self.seq < other.seq


class FairShareLink:
    """A shared link with fair (equal-share) bandwidth allocation.

    Parameters
    ----------
    env:
        Owning environment.
    rate:
        Aggregate bandwidth in bytes per second.
    concurrency_limit:
        Optional cap on simultaneously *active* flows; additional transfers
        queue FIFO.  ``None`` means unbounded sharing.

    Notes
    -----
    Latency is deliberately *not* modelled here; callers add per-message
    latency separately (see :class:`repro.cluster.network.NetworkFabric`)
    because latency is paid per message while bandwidth is shared.
    """

    def __init__(self, env, rate: float, concurrency_limit: Optional[int] = None):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if concurrency_limit is not None and concurrency_limit <= 0:
            raise ValueError("concurrency_limit must be positive or None")
        self.env = env
        self.rate = float(rate)
        #: Healthy aggregate rate; :meth:`set_degradation` derives the
        #: effective :attr:`rate` from it (fault injection).
        self._base_rate = self.rate
        self.concurrency_limit = concurrency_limit
        #: Min-heap of admitted flows, keyed by (finish_tag, seq).
        self._active: list[_Flow] = []
        #: FIFO of (event, nbytes, seq) waiting on the concurrency limit.
        self._pending: Deque[Tuple[Event, float, int]] = deque()
        #: Per-flow bytes served since the current busy period began.
        self._virtual = 0.0
        self._last_update = env.now
        self._timer_generation = 0
        self._seq = 0
        # Statistics
        self.bytes_transferred = 0.0
        self.busy_time = 0.0

    # -- public API -----------------------------------------------------------
    @property
    def active_flows(self) -> int:
        """Number of transfers currently sharing the link."""
        return len(self._active)

    @property
    def utilization(self) -> float:
        """Fraction of elapsed time the link had at least one active flow."""
        elapsed = self.env.now
        if elapsed <= 0:
            return 0.0
        busy = self.busy_time
        if self._active:
            busy += self.env.now - self._last_update
        return min(1.0, busy / elapsed)

    @property
    def degradation(self) -> float:
        """Current rate-division factor (1.0 = healthy)."""
        return self._base_rate / self.rate

    def set_degradation(self, factor: float) -> None:
        """Inject a slowdown: the link serves at ``base_rate / factor``.

        Models a flapping/renegotiated link or a straggling NIC.  In-flight
        transfers finish at the new rate from now on: virtual service is
        accrued at the old rate up to this instant, then the completion
        timer is re-armed at the new rate (the generation counter
        invalidates the stale timer).  ``factor=1.0`` restores health.
        """
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1.0, got {factor}")
        self._advance()
        self.rate = self._base_rate / float(factor)
        self._reschedule()

    def transfer(self, nbytes: float) -> Event:
        """Start transferring ``nbytes``; the event fires on completion."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        ev = Event(self.env)
        if nbytes == 0:
            ev.succeed(0.0)
            return ev
        self.bytes_transferred += nbytes
        self._advance()
        seq = self._seq
        self._seq += 1
        if (
            self.concurrency_limit is not None
            and len(self._active) >= self.concurrency_limit
        ):
            self._pending.append((ev, float(nbytes), seq))
        else:
            heappush(self._active, _Flow(ev, self._virtual + nbytes, seq))
        self._reschedule()
        return ev

    def transfer_batch(self, sizes) -> list[Event]:
        """Admit a cohort of simultaneous transfers; one event per member.

        Semantically identical to ``[self.transfer(b) for b in sizes]`` --
        the flows receive the same admission sequence numbers and the same
        finish tags, so every completion fires at exactly the time the
        scalar loop would produce -- but the link advances its virtual
        clock once, re-arms its completion timer once (the scalar loop
        arms ``len(sizes)`` timers and immediately invalidates all but the
        last) and bulk-inserts the flows with one ``heapify``.  This is
        the per-link fair-share cohort path the scale scenarios lean on.
        """
        from heapq import heapify

        from repro.des.cohort import HAVE_NUMPY, np, observe_cohort

        if HAVE_NUMPY:
            arr = np.asarray(sizes, dtype=np.float64)
            if arr.size and not bool(np.all(arr >= 0.0)):
                raise ValueError("nbytes must be non-negative")
            total = float(arr.sum())  # ints up to 2**53 stay exact
            plain = arr.tolist()
        else:
            plain = [float(b) for b in sizes]
            if any(b < 0 or b != b for b in plain):
                raise ValueError("nbytes must be non-negative")
            total = sum(plain)
        events = [Event(self.env) for _ in plain]
        nonzero = sum(1 for b in plain if b != 0.0)
        if nonzero == 0:  # an all-zero cohort never touches the link state,
            for ev in events:  # exactly like the scalar zero-byte fast path
                ev.succeed(0.0)
            return events
        self.bytes_transferred += total
        self._advance()
        active = self._active
        fresh: list[_Flow] = []
        for ev, nbytes in zip(events, plain):
            if nbytes == 0.0:
                ev.succeed(0.0)
                continue
            seq = self._seq
            self._seq += 1
            if (
                self.concurrency_limit is not None
                and len(active) + len(fresh) >= self.concurrency_limit
            ):
                self._pending.append((ev, nbytes, seq))
            else:
                fresh.append(_Flow(ev, self._virtual + nbytes, seq))
        if fresh:
            active.extend(fresh)
            heapify(active)
        if TELEMETRY.active:
            observe_cohort("fairshare", len(plain), self.env.now)
        self._reschedule()
        return events

    # -- internals --------------------------------------------------------------
    def _advance(self) -> None:
        """Accrue virtual service from the last update time to now (O(1))."""
        now = self.env.now
        dt = now - self._last_update
        if dt > 0 and self._active:
            self._virtual += dt * (self.rate / len(self._active))
            self.busy_time += dt
        self._last_update = now

    def _reschedule(self) -> None:
        """Arm a completion timer for the earliest-finishing active flow."""
        self._timer_generation += 1
        active = self._active
        if TELEMETRY.active:
            m = TELEMETRY.metrics
            m.counter("des.fairshare.rebalances").inc()
            m.gauge("des.fairshare.flows_high_water").update_max(len(active))
        if not active:
            # Busy period over: reset the virtual clock so its magnitude is
            # bounded by one busy period's bytes (keeps float eps meaningful).
            self._virtual = 0.0
            return
        gen = self._timer_generation
        remaining = active[0].finish_tag - self._virtual
        delay = remaining * len(active) / self.rate
        if delay < 0.0:
            delay = 0.0
        timer = Event(self.env)
        timer._ok = True
        timer._value = None
        timer.callbacks = lambda _ev, g=gen: self._on_timer(g)
        self.env.schedule(timer, delay=delay, priority=URGENT)

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # stale timer: flow set changed since it was armed
        self._advance()
        active = self._active
        now = self.env.now
        # Sub-millibyte residue is floating-point noise; treating it as done
        # guarantees progress (otherwise a ~1e-16-byte remainder arms a
        # zero-delay timer forever because now + delay == now in floats).
        # The relative term covers busy periods large enough that 1e-3 bytes
        # falls below one ulp of the virtual clock.
        threshold = self._virtual + 1e-3 + 1e-12 * self._virtual
        finished: list[_Flow] = []
        while active and active[0].finish_tag <= threshold:
            finished.append(heappop(active))
        if not finished and active:
            # The timer fired for *some* flow; float rounding can leave its
            # remaining marginally positive while the computed delay rounds
            # to zero.  Force-complete the minimum to preserve liveness.
            top = active[0]
            delay = (top.finish_tag - self._virtual) * len(active) / self.rate
            if now + delay <= now:
                finished.append(heappop(active))
        for flow in finished:
            flow.event.succeed(now)
        while self._pending and (
            self.concurrency_limit is None
            or len(active) < self.concurrency_limit
        ):
            ev, nbytes, seq = self._pending.popleft()
            heappush(active, _Flow(ev, self._virtual + nbytes, seq))
        self._reschedule()
