"""Parallel file system assembly.

``build_pfs(platform)`` attaches a Lustre-like file system to a platform's
storage nodes: one :class:`~repro.pfs.mds.MetadataServer` per MDS node
(DNE-style, sharing one namespace but each with its own service queue) and
one :class:`~repro.pfs.oss.ObjectStorageServer` per OSS node, each fronting
``osts_per_oss`` block devices.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple, Type

from repro.cluster.devices import BlockDevice, DiskDevice, SSDDevice
from repro.cluster.platform import Platform

#: OST device classes addressable by name from a declarative
#: :class:`~repro.scenario.spec.StorageSpec`.
DEVICE_CLASSES: Dict[str, Type[BlockDevice]] = {
    "disk": DiskDevice,
    "ssd": SSDDevice,
}
from repro.pfs.client import PFSClient
from repro.pfs.layout import StripeLayout
from repro.pfs.mds import MetadataServer
from repro.pfs.namespace import Namespace
from repro.pfs.oss import ObjectStorageServer


class ParallelFileSystem:
    """A running file system instance on a platform.

    Parameters
    ----------
    platform:
        The simulated cluster (provides env, fabrics, storage nodes).
    stripe_size:
        Default stripe unit (Lustre default 1 MiB).
    default_stripe_count:
        Stripe count used when a file is created without an explicit one
        (Lustre default 1).
    max_rpc:
        Maximum bytes per data RPC; larger slices are chunked.
    device_cls:
        Block device class for OSTs (:class:`DiskDevice` by default;
        pass :class:`~repro.cluster.devices.SSDDevice` for an all-flash
        file system).
    """

    def __init__(
        self,
        platform: Platform,
        stripe_size: int = 1024 * 1024,
        default_stripe_count: int = 1,
        max_rpc: int = 4 * 1024 * 1024,
        device_cls: Type[BlockDevice] = DiskDevice,
        alloc_policy: str = "round_robin",
        replicas: int = 1,
    ):
        if stripe_size <= 0 or max_rpc <= 0:
            raise ValueError("stripe_size and max_rpc must be positive")
        if default_stripe_count < 1:
            raise ValueError("default_stripe_count must be >= 1")
        if alloc_policy not in ("round_robin", "load_aware"):
            raise ValueError(f"unknown alloc_policy {alloc_policy!r}")
        if replicas not in (1, 2):
            raise ValueError(f"replicas must be 1 or 2, got {replicas}")
        self.platform = platform
        self.env = platform.env
        self.fabric = platform.storage_fabric
        self.stripe_size = int(stripe_size)
        self.default_stripe_count = int(default_stripe_count)
        self.max_rpc = int(max_rpc)
        self.namespace = Namespace()

        spec = platform.spec
        self.mds_servers: list[Tuple[MetadataServer, str]] = []
        for node in platform.mds_nodes:
            mds = MetadataServer(
                self.env, node.name, namespace=self.namespace, op_time=spec.mds_op_time
            )
            self.mds_servers.append((mds, node.name))
        if not self.mds_servers:
            raise ValueError("platform has no MDS nodes")

        self.oss_servers: list[Tuple[ObjectStorageServer, str]] = []
        self._ost_map: Dict[int, Tuple[ObjectStorageServer, str]] = {}
        ost_id = 0
        for node in platform.oss_nodes:
            devices: Dict[int, BlockDevice] = {}
            for _ in range(spec.osts_per_oss):
                dev = device_cls(self.env, f"{node.name}.ost{ost_id}")
                if device_cls is DiskDevice:
                    dev.bandwidth = spec.ost_bandwidth
                    dev.seek_time = spec.ost_seek_time
                devices[ost_id] = dev
                ost_id += 1
            oss = ObjectStorageServer(self.env, node.name, devices, op_time=spec.oss_op_time)
            self.oss_servers.append((oss, node.name))
            for oid in devices:
                self._ost_map[oid] = (oss, node.name)
        self.n_osts = ost_id
        self._alloc_cursor = 0
        self.alloc_policy = alloc_policy
        self.replicas = int(replicas)
        if self.replicas == 2 and self.n_osts < 2:
            raise ValueError("replicas=2 needs at least 2 OSTs")
        #: Every client created via :meth:`client`, for aggregate
        #: resilience counters (retries/timeouts/failovers).
        self.clients: list[PFSClient] = []

    @classmethod
    def from_spec(cls, platform: Platform, storage) -> "ParallelFileSystem":
        """Spec-driven factory: attach a file system described by a
        :class:`~repro.scenario.spec.StorageSpec` (duck-typed -- anything
        with ``stripe_size`` / ``default_stripe_count`` / ``max_rpc`` /
        ``device`` / ``alloc_policy`` attributes works)."""
        device_cls = DEVICE_CLASSES.get(storage.device)
        if device_cls is None:
            raise ValueError(
                f"unknown storage device {storage.device!r}; "
                f"available: {', '.join(sorted(DEVICE_CLASSES))}"
            )
        return cls(
            platform,
            stripe_size=storage.stripe_size,
            default_stripe_count=storage.default_stripe_count,
            max_rpc=storage.max_rpc,
            device_cls=device_cls,
            alloc_policy=storage.alloc_policy,
            replicas=getattr(storage, "replicas", 1),
        )

    # -- layout allocation -------------------------------------------------------
    def ost_load(self, ost_id: int) -> float:
        """Current load metric of one OST: queued bytes-equivalent work.

        Combines cumulative bytes (long-term placement skew) with the
        instantaneous queue depth (short-term congestion), the two signals
        load-balancing work (Paul et al. [29], iez [46]) feeds on.
        """
        dev = self.ost_device(ost_id)
        oss, _ = self.ost_location(ost_id)
        return dev.stats.bytes_total + oss.queue_length * self.max_rpc

    def new_layout(
        self, stripe_count: Optional[int] = None, stripe_size: Optional[int] = None
    ) -> StripeLayout:
        """Allocate a stripe layout over the OST pool.

        ``stripe_count=-1`` stripes over every OST (Lustre's ``-c -1``).
        Placement follows :attr:`alloc_policy`: classic round-robin, or
        ``load_aware`` (iez-style [46]): the least-loaded OSTs first, which
        counteracts the skew that accumulates when file sizes are uneven.
        """
        count = stripe_count if stripe_count is not None else self.default_stripe_count
        if count == -1:
            count = self.n_osts
        if not 1 <= count <= self.n_osts:
            raise ValueError(
                f"stripe_count {count} out of range 1..{self.n_osts}"
            )
        size = stripe_size if stripe_size is not None else self.stripe_size
        if self.alloc_policy == "load_aware":
            # Least-loaded first; OST id breaks ties deterministically.
            order = sorted(range(self.n_osts), key=lambda i: (self.ost_load(i), i))
            ids = order[:count]
        else:
            ids = [(self._alloc_cursor + i) % self.n_osts for i in range(count)]
            self._alloc_cursor = (self._alloc_cursor + count) % self.n_osts
        if self.replicas == 2:
            # Mirror each stripe on a constant-shifted OST: disjoint from
            # the primary set when the pool allows, and never the same OST
            # as the stripe it mirrors.
            shift = count % self.n_osts or 1
            mirrors = [(i + shift) % self.n_osts for i in ids]
            return StripeLayout(
                stripe_size=size, ost_ids=ids, replica_ost_ids=mirrors
            )
        return StripeLayout(stripe_size=size, ost_ids=ids)

    # -- routing ------------------------------------------------------------------
    def mds_for(self, path: str) -> Tuple[MetadataServer, str]:
        """Shard metadata service by the path's parent directory."""
        if len(self.mds_servers) == 1:
            return self.mds_servers[0]
        parent = path.rsplit("/", 1)[0] or "/"
        # zlib.crc32 rather than hash(): stable across interpreter runs.
        idx = zlib.crc32(parent.encode("utf-8")) % len(self.mds_servers)
        return self.mds_servers[idx]

    def ost_location(self, ost_id: int) -> Tuple[ObjectStorageServer, str]:
        loc = self._ost_map.get(ost_id)
        if loc is None:
            raise KeyError(f"unknown OST {ost_id}")
        return loc

    def ost_device(self, ost_id: int) -> BlockDevice:
        oss, _ = self.ost_location(ost_id)
        return oss.osts[ost_id]

    # -- clients ---------------------------------------------------------------------
    def client(self, node: str, **kwargs) -> PFSClient:
        """Create a client on the named node (must be on the storage fabric)."""
        if not self.fabric.has_endpoint(node):
            raise KeyError(f"node {node!r} is not attached to the storage fabric")
        client = PFSClient(self, node, **kwargs)
        self.clients.append(client)
        return client

    # -- aggregate statistics -----------------------------------------------------------
    def resilience_counters(self) -> dict:
        """Summed client resilience counters (retries/timeouts/failovers)."""
        out = {"retries": 0, "rpc_timeouts": 0, "failovers": 0,
               "degraded_writes": 0}
        for c in self.clients:
            out["retries"] += c.stats.retries
            out["rpc_timeouts"] += c.stats.rpc_timeouts
            out["failovers"] += c.stats.failovers
            out["degraded_writes"] += c.stats.degraded_writes
        return out

    def total_bytes_written(self) -> int:
        return sum(oss.stats.bytes_written for oss, _ in self.oss_servers)

    def total_bytes_read(self) -> int:
        return sum(oss.stats.bytes_read for oss, _ in self.oss_servers)

    def total_metadata_ops(self) -> int:
        return sum(m.total_ops for m, _ in self.mds_servers)

    def aggregate_device_stats(self) -> dict:
        """Summed OST device counters (seeks, busy time, bytes)."""
        out = {"seeks": 0, "ops": 0, "bytes": 0, "busy_time": 0.0}
        for oss, _ in self.oss_servers:
            for dev in oss.osts.values():
                out["seeks"] += dev.stats.seeks
                out["ops"] += dev.stats.ops
                out["bytes"] += dev.stats.bytes_total
                out["busy_time"] += dev.stats.busy_time
        return out


def build_pfs(platform: Platform, **kwargs) -> ParallelFileSystem:
    """Attach a parallel file system to ``platform`` (convenience wrapper)."""
    return ParallelFileSystem(platform, **kwargs)
