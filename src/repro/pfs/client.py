"""Parallel file system client.

The client implements the bottom of paper Fig. 2's stack: it translates
POSIX-level calls into metadata RPCs (to the MDS owning the path) and
striped data RPCs (fanned out to the OSSes holding the file's OSTs).  Large
slices are cut into ``max_rpc`` chunks, all issued concurrently; the OST
device queues keep same-file chunks in order so sequential streams stay
sequential at the device.

An optional block-granular LRU read cache models the client-side page
cache; deep-learning workloads with datasets larger than the cache get the
miss behaviour that motivates the paper's Sec. V-B.

Observers registered on :attr:`PFSClient.observers` receive an
:class:`~repro.ops.IORecord` (layer ``"pfs"``) for every completed
operation -- this is the attachment point for job-level monitoring.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.ops import IORecord, OpKind, StorageUnavailable
from repro.pfs.layout import StripeLayout
from repro.telemetry import TELEMETRY

if TYPE_CHECKING:  # pragma: no cover
    from repro.pfs.filesystem import ParallelFileSystem

#: Bytes of header on every RPC message.
RPC_HEADER = 128
#: Local memory bandwidth used to cost cache hits (bytes/second).
_MEM_BANDWIDTH = 10e9
_CACHE_HIT_LATENCY = 1e-6


@dataclass
class ClientStats:
    """Cumulative per-client counters."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    meta_ops: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    read_time: float = 0.0
    write_time: float = 0.0
    meta_time: float = 0.0
    #: Writes absorbed by the write-back cache without touching the PFS.
    buffered_writes: int = 0
    #: Write-back flush operations issued to the PFS.
    flushes: int = 0
    #: Data RPCs re-issued after a failure/timeout (resilience).
    retries: int = 0
    #: Data RPCs abandoned because they exceeded ``rpc_timeout``.
    rpc_timeouts: int = 0
    #: Data RPCs re-issued to a replica OST after the primary failed.
    failovers: int = 0
    #: Best-effort mirror writes dropped because their OST was down.
    degraded_writes: int = 0


class PFSClient:
    """One node's file system client.

    Parameters
    ----------
    fs:
        The :class:`~repro.pfs.filesystem.ParallelFileSystem` instance.
    node:
        Fabric endpoint name of the node this client runs on.
    rank:
        Default rank recorded on emitted records (overridable per call).
    read_cache_bytes:
        Capacity of the local read cache (0 disables it).
    cache_block:
        Cache block granularity in bytes.
    rpc_timeout:
        Per-data-RPC timeout in simulated seconds; an attempt still in
        flight after this long is abandoned (it keeps consuming server
        resources, like a real duplicate RPC) and retried.  ``0`` (the
        default) disables the timeout.
    rpc_retries:
        Bounded retry budget per data RPC after the first attempt.  Each
        retry waits an exponential backoff ``min(retry_backoff_cap,
        retry_backoff * 2^n)`` first -- this is what lets a client ride
        out an injected OST/OSS outage ("block until recovery").
    retry_backoff / retry_backoff_cap:
        Base and upper bound of the backoff delay, seconds.

    Resilience is off (and the RPC path byte-identical to a client
    without these parameters) unless ``rpc_timeout`` or ``rpc_retries``
    is set.
    """

    def __init__(
        self,
        fs: "ParallelFileSystem",
        node: str,
        rank: int = 0,
        read_cache_bytes: int = 0,
        cache_block: int = 1024 * 1024,
        write_cache_bytes: int = 0,
        rpc_timeout: float = 0.0,
        rpc_retries: int = 0,
        retry_backoff: float = 0.005,
        retry_backoff_cap: float = 0.5,
    ):
        if cache_block <= 0:
            raise ValueError("cache_block must be positive")
        if write_cache_bytes < 0:
            raise ValueError("write_cache_bytes must be non-negative")
        if rpc_timeout < 0 or rpc_retries < 0:
            raise ValueError("rpc_timeout and rpc_retries must be non-negative")
        if retry_backoff <= 0 or retry_backoff_cap < retry_backoff:
            raise ValueError(
                "retry_backoff must be positive and <= retry_backoff_cap"
            )
        self.fs = fs
        self.env = fs.env
        self.node = node
        self.rank = rank
        self.read_cache_bytes = int(read_cache_bytes)
        self.cache_block = int(cache_block)
        self._cache: OrderedDict[tuple, bool] = OrderedDict()
        self._layouts: Dict[str, StripeLayout] = {}
        # Write-back cache: per-path dirty extents in insertion order.
        self.write_cache_bytes = int(write_cache_bytes)
        self._dirty: "OrderedDict[str, list]" = OrderedDict()
        self._dirty_bytes = 0
        self.rpc_timeout = float(rpc_timeout)
        self.rpc_retries = int(rpc_retries)
        self.retry_backoff = float(retry_backoff)
        self.retry_backoff_cap = float(retry_backoff_cap)
        # One boolean, checked once per data RPC: the zero-fault path stays
        # the exact pre-resilience code (same events, same order).
        self._resilient = self.rpc_timeout > 0.0 or self.rpc_retries > 0
        self.stats = ClientStats()
        self.observers: List[Callable[[IORecord], None]] = []

    # -- record emission ------------------------------------------------------
    def _emit(
        self,
        kind: OpKind,
        path: str,
        offset: int,
        nbytes: int,
        start: float,
        rank: Optional[int],
        extra: Optional[dict] = None,
    ):
        if not self.observers:
            return
        rec = IORecord(
            layer="pfs",
            kind=kind,
            path=path,
            offset=offset,
            nbytes=nbytes,
            rank=self.rank if rank is None else rank,
            start=start,
            end=self.env.now,
            extra=extra or {},
        )
        for obs in self.observers:
            obs(rec)

    # -- metadata operations ----------------------------------------------------
    def _meta(self, kind: OpKind, path: str, rank: Optional[int] = None, **kwargs):
        start = self.env.now
        mds, mds_node = self.fs.mds_for(path)
        fabric = self.fs.fabric
        yield from fabric.send(self.node, mds_node, RPC_HEADER)
        result = yield from mds.serve(kind, path, **kwargs)
        yield from fabric.send(mds_node, self.node, RPC_HEADER)
        self.stats.meta_ops += 1
        self.stats.meta_time += self.env.now - start
        # OPEN/CREATE records carry the file's layout so that trace replay
        # can recreate files with the original striping.
        extra = None
        if kind in (OpKind.OPEN, OpKind.CREATE) and hasattr(result, "layout"):
            extra = {
                "stripe_count": result.layout.stripe_count,
                "stripe_size": result.layout.stripe_size,
            }
        self._emit(kind, path, 0, 0, start, rank, extra=extra)
        return result

    def mkdir(self, path: str, rank: Optional[int] = None):
        return self._meta(OpKind.MKDIR, path, rank=rank)

    def rmdir(self, path: str, rank: Optional[int] = None):
        return self._meta(OpKind.RMDIR, path, rank=rank)

    def create(
        self,
        path: str,
        stripe_count: Optional[int] = None,
        stripe_size: Optional[int] = None,
        rank: Optional[int] = None,
    ):
        """Create a file, choosing its stripe layout (generator)."""
        layout = self.fs.new_layout(stripe_count=stripe_count, stripe_size=stripe_size)
        inode = yield from self._meta(OpKind.CREATE, path, rank=rank, layout=layout)
        self._layouts[inode.path] = inode.layout
        return inode

    def open(self, path: str, create: bool = False, rank: Optional[int] = None, **create_kwargs):
        """Open (optionally creating) a file; caches its layout locally."""
        if create and not self.fs.namespace.is_file(path):
            # O_CREAT without O_EXCL: another rank may create the file
            # between our check and the MDS applying ours; fall back to a
            # plain open in that case.
            try:
                inode = yield from self.create(path, rank=rank, **create_kwargs)
                return inode
            except FileExistsError:
                pass
        inode = yield from self._meta(OpKind.OPEN, path, rank=rank)
        self._layouts[inode.path] = inode.layout
        return inode

    def close(self, path: str, rank: Optional[int] = None):
        """Generator: flush buffered writes, then close at the MDS."""
        yield from self._flush_path(path)
        result = yield from self._meta(OpKind.CLOSE, path, rank=rank)
        return result

    def stat(self, path: str, rank: Optional[int] = None):
        return self._meta(OpKind.STAT, path, rank=rank)

    def unlink(self, path: str, rank: Optional[int] = None):
        self._invalidate_path(path)
        dropped = self._dirty.pop(path, [])
        self._dirty_bytes -= sum(n for _, n in dropped)
        return self._meta(OpKind.UNLINK, path, rank=rank)

    def readdir(self, path: str, rank: Optional[int] = None):
        return self._meta(OpKind.READDIR, path, rank=rank)

    def fsync(self, path: str, rank: Optional[int] = None):
        """Generator: flush buffered writes, then the metadata fsync."""
        yield from self._flush_path(path)
        result = yield from self._meta(OpKind.FSYNC, path, rank=rank)
        return result

    # -- data operations -----------------------------------------------------------
    def _layout(self, path: str):
        """Resolve a file's layout, fetching it via STAT if not cached."""
        layout = self._layouts.get(path)
        if layout is None:
            inode = yield from self._meta(OpKind.STAT, path)
            layout = inode.layout
            self._layouts[inode.path] = layout
        return layout

    def write(self, path: str, offset: int, nbytes: int, rank: Optional[int] = None):
        """Write an extent (generator); returns the elapsed time.

        With a write-back cache (``write_cache_bytes > 0``), writes that
        fit buffer locally at memory speed and reach the PFS on fsync,
        close, cache pressure, or an overlapping read.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        start = self.env.now
        layout = yield from self._layout(path)
        if nbytes > 0:
            if 0 < nbytes <= self.write_cache_bytes:
                yield from self._buffer_write(path, offset, nbytes)
            else:
                yield from self._write_through(path, offset, nbytes, layout)
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.stats.write_time += self.env.now - start
        self._emit(OpKind.WRITE, path, offset, nbytes, start, rank)
        return self.env.now - start

    def _write_through(self, path: str, offset: int, nbytes: int, layout=None):
        if layout is None:
            layout = yield from self._layout(path)
        procs = []
        for sl in layout.slices(offset, nbytes):
            alt = layout.replica_of(sl.ost_index)
            for obj_off, length in self._chunks(sl.object_offset, sl.length):
                procs.append(self.env.process(
                    self._data_rpc(sl.ost_id, obj_off, length, True,
                                   alt_ost_id=alt)
                ))
                if alt is not None:
                    # Mirror copy: best effort -- if its OST is down the
                    # primary copy carries the data (resync is offline).
                    procs.append(self.env.process(
                        self._data_rpc(alt, obj_off, length, True,
                                       best_effort=True)
                    ))
        yield self.env.all_of(procs)
        self.fs.namespace.update_size(path, offset + nbytes, now=self.env.now)
        self._invalidate_extent(path, offset, nbytes)

    # -- write-back cache -----------------------------------------------------
    def _buffer_write(self, path: str, offset: int, nbytes: int):
        """Absorb a write locally, evicting older dirty data if needed."""
        while self._dirty_bytes + nbytes > self.write_cache_bytes and self._dirty:
            yield from self._flush_oldest()
        self._dirty.setdefault(path, []).append((offset, nbytes))
        self._dirty_bytes += nbytes
        self.stats.buffered_writes += 1
        # Memory-speed absorption; size becomes visible immediately (as a
        # page-cache write would make it on the writing node).
        yield self.env.timeout(_CACHE_HIT_LATENCY + nbytes / _MEM_BANDWIDTH)
        self.fs.namespace.update_size(path, offset + nbytes, now=self.env.now)
        self._invalidate_extent(path, offset, nbytes)

    def _flush_oldest(self):
        path = next(iter(self._dirty))
        yield from self._flush_path(path)

    def _flush_path(self, path: str):
        """Write back every dirty extent of one file (coalesced)."""
        extents = self._dirty.pop(path, [])
        if not extents:
            return
        from repro.iostack.extents import coalesce

        merged = coalesce(extents)
        self._dirty_bytes -= sum(n for _, n in extents)
        self.stats.flushes += 1
        for off, n in merged:
            yield from self._write_through(path, off, n)

    def flush_all(self):
        """Generator: write back every dirty byte (all files)."""
        for path in list(self._dirty):
            yield from self._flush_path(path)

    def dirty_bytes(self, path: Optional[str] = None) -> int:
        """Unwritten buffered bytes (optionally for one file)."""
        if path is not None:
            return sum(n for _, n in self._dirty.get(path, []))
        return self._dirty_bytes

    def read(self, path: str, offset: int, nbytes: int, rank: Optional[int] = None):
        """Read an extent (generator); returns the elapsed time.

        Reads may extend past EOF (the simulator does not materialise
        data); the path itself must exist.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        start = self.env.now
        layout = yield from self._layout(path)
        if nbytes > 0 and self._dirty.get(path):
            from repro.iostack.extents import clip, coalesce, total_bytes

            covered = total_bytes(
                clip(coalesce(self._dirty[path]), offset, offset + nbytes)
            )
            if covered >= nbytes:
                # Entirely in the local write-back buffer: memory speed.
                yield self.env.timeout(_CACHE_HIT_LATENCY + nbytes / _MEM_BANDWIDTH)
                self.stats.reads += 1
                self.stats.bytes_read += nbytes
                self.stats.cache_hits += 1
                self.stats.read_time += self.env.now - start
                self._emit(OpKind.READ, path, offset, nbytes, start, rank)
                return self.env.now - start
            # Partially dirty: write back first for a consistent read.
            yield from self._flush_path(path)
        if nbytes > 0:
            miss_ranges = self._cache_lookup(path, offset, nbytes)
            if not miss_ranges:
                self.stats.cache_hits += 1
                yield self.env.timeout(_CACHE_HIT_LATENCY + nbytes / _MEM_BANDWIDTH)
            else:
                self.stats.cache_misses += 1
                procs = []
                for m_off, m_len in miss_ranges:
                    for sl in layout.slices(m_off, m_len):
                        alt = layout.replica_of(sl.ost_index)
                        for obj_off, length in self._chunks(
                            sl.object_offset, sl.length
                        ):
                            procs.append(self.env.process(
                                self._data_rpc(sl.ost_id, obj_off, length,
                                               False, alt_ost_id=alt)
                            ))
                yield self.env.all_of(procs)
                self._cache_insert(path, offset, nbytes)
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.stats.read_time += self.env.now - start
        self._emit(OpKind.READ, path, offset, nbytes, start, rank)
        return self.env.now - start

    # -- plumbing -----------------------------------------------------------------
    def _chunks(self, object_offset: int, length: int):
        """Cut a slice into at-most-``max_rpc``-byte pieces."""
        max_rpc = self.fs.max_rpc
        pos = object_offset
        end = object_offset + length
        while pos < end:
            take = min(max_rpc, end - pos)
            yield pos, take
            pos += take

    def _data_rpc(
        self,
        ost_id: int,
        object_offset: int,
        nbytes: int,
        is_write: bool,
        alt_ost_id: Optional[int] = None,
        best_effort: bool = False,
    ):
        if not self._resilient:
            yield from self._rpc_once(ost_id, object_offset, nbytes, is_write)
            return
        yield from self._data_rpc_resilient(
            ost_id, object_offset, nbytes, is_write, alt_ost_id, best_effort
        )

    def _rpc_once(self, ost_id: int, object_offset: int, nbytes: int, is_write: bool):
        """One data RPC attempt: request out, server service, reply back."""
        oss, oss_node = self.fs.ost_location(ost_id)
        fabric = self.fs.fabric
        if is_write:
            yield from fabric.send(self.node, oss_node, nbytes + RPC_HEADER)
            yield from oss.serve_data(ost_id, object_offset, nbytes, True)
            yield from fabric.send(oss_node, self.node, RPC_HEADER)
        else:
            yield from fabric.send(self.node, oss_node, RPC_HEADER)
            yield from oss.serve_data(ost_id, object_offset, nbytes, False)
            yield from fabric.send(oss_node, self.node, nbytes + RPC_HEADER)

    # -- resilient RPC path ---------------------------------------------------
    def _rpc_shielded(self, ost_id: int, object_offset: int, nbytes: int,
                      is_write: bool):
        """One attempt that reports failure instead of raising, so a
        timed-out (abandoned) attempt can never crash the simulation."""
        try:
            yield from self._rpc_once(ost_id, object_offset, nbytes, is_write)
        except StorageUnavailable:
            return "unavailable"
        return "ok"

    def _rpc_attempt(self, ost_id: int, object_offset: int, nbytes: int,
                     is_write: bool):
        """Issue one attempt, racing it against ``rpc_timeout`` when set.

        Returns ``"ok"``, ``"unavailable"`` or ``"timeout"``.
        """
        env = self.env
        if self.rpc_timeout <= 0.0:
            result = yield from self._rpc_shielded(
                ost_id, object_offset, nbytes, is_write
            )
            return result
        proc = env.process(
            self._rpc_shielded(ost_id, object_offset, nbytes, is_write)
        )
        yield env.any_of([proc, env.timeout(self.rpc_timeout)])
        if proc.triggered:
            return proc.value
        # The attempt lost the race: abandon it.  The in-flight RPC still
        # completes in the background, consuming fabric and server time
        # exactly like the duplicate RPC a real timed-out client leaves
        # behind; _rpc_shielded guarantees its late failure is harmless.
        return "timeout"

    def _data_rpc_resilient(
        self,
        ost_id: int,
        object_offset: int,
        nbytes: int,
        is_write: bool,
        alt_ost_id: Optional[int],
        best_effort: bool,
    ):
        env = self.env
        targets = (ost_id,) if alt_ost_id is None else (ost_id, alt_ost_id)
        failures = 0
        backoffs = 0
        while True:
            target = targets[failures % len(targets)]
            outcome = yield from self._rpc_attempt(
                target, object_offset, nbytes, is_write
            )
            if outcome == "ok":
                return
            if outcome == "timeout":
                self.stats.rpc_timeouts += 1
                if TELEMETRY.active:
                    TELEMETRY.metrics.counter("pfs.client.rpc_timeouts").inc()
                    with TELEMETRY.tracer.span(
                        "pfs.rpc_timeout", cat="faults", ost=target,
                        nbytes=nbytes, write=is_write,
                    ):
                        pass
            failures += 1
            if best_effort:
                # Mirror copy: its twin already carries the data, so give
                # up immediately instead of stalling the whole stripe.
                self.stats.degraded_writes += 1
                if TELEMETRY.active:
                    TELEMETRY.metrics.counter("pfs.client.degraded_writes").inc()
                return
            if len(targets) == 2 and failures == 1:
                # Stripe-level failover: re-issue to the replica OST right
                # away -- no backoff, the mirror is (probably) healthy.
                self.stats.failovers += 1
                if TELEMETRY.active:
                    TELEMETRY.metrics.counter("pfs.client.failovers").inc()
                    with TELEMETRY.tracer.span(
                        "pfs.failover", cat="faults", ost=ost_id,
                        replica=alt_ost_id, write=is_write,
                    ):
                        pass
                continue
            if backoffs >= self.rpc_retries:
                raise StorageUnavailable(
                    f"data RPC to OST {target} failed after "
                    f"{failures} attempt(s) ({outcome})"
                )
            delay = min(
                self.retry_backoff_cap, self.retry_backoff * (2.0 ** backoffs)
            )
            backoffs += 1
            self.stats.retries += 1
            if TELEMETRY.active:
                TELEMETRY.metrics.counter("pfs.client.retries").inc()
                with TELEMETRY.tracer.span(
                    "pfs.rpc_retry", cat="faults", ost=target,
                    attempt=backoffs, backoff=delay, write=is_write,
                ):
                    pass
            yield env.timeout(delay)

    # -- read cache ------------------------------------------------------------------
    def _block_range(self, offset: int, nbytes: int):
        first = offset // self.cache_block
        last = (offset + nbytes - 1) // self.cache_block
        return first, last

    def _cache_lookup(self, path: str, offset: int, nbytes: int):
        """Return the byte ranges NOT covered by the cache (possibly all)."""
        if self.read_cache_bytes <= 0:
            return [(offset, nbytes)]
        first, last = self._block_range(offset, nbytes)
        missing: list[tuple[int, int]] = []
        run_start: Optional[int] = None
        for blk in range(first, last + 1):
            key = (path, blk)
            if key in self._cache:
                self._cache.move_to_end(key)  # LRU touch
                if run_start is not None:
                    missing.append((run_start, blk))
                    run_start = None
            else:
                if run_start is None:
                    run_start = blk
        if run_start is not None:
            missing.append((run_start, last + 1))
        return [
            (blk_start * self.cache_block, (blk_end - blk_start) * self.cache_block)
            for blk_start, blk_end in missing
        ]

    def _cache_insert(self, path: str, offset: int, nbytes: int) -> None:
        if self.read_cache_bytes <= 0 or nbytes == 0:
            return
        max_blocks = self.read_cache_bytes // self.cache_block
        if max_blocks == 0:
            return
        first, last = self._block_range(offset, nbytes)
        for blk in range(first, last + 1):
            self._cache[(path, blk)] = True
            self._cache.move_to_end((path, blk))
        while len(self._cache) > max_blocks:
            self._cache.popitem(last=False)

    def _invalidate_extent(self, path: str, offset: int, nbytes: int) -> None:
        if self.read_cache_bytes <= 0 or nbytes == 0:
            return
        first, last = self._block_range(offset, nbytes)
        for blk in range(first, last + 1):
            self._cache.pop((path, blk), None)

    def _invalidate_path(self, path: str) -> None:
        if self.read_cache_bytes <= 0:
            return
        for key in [k for k in self._cache if k[0] == path]:
            del self._cache[key]
        self._layouts.pop(path, None)
