"""Metadata server model.

Metadata performance "can be a limiting factor for parallel file systems"
(paper Sec. IV-A-1); data-intensive workflows are "metadata-intensive"
(Sec. V-C).  The MDS is therefore modelled as a genuinely contended queued
service: a bounded thread pool serves one namespace operation at a time per
thread, each paying a per-operation service cost.  Metadata-heavy workloads
(mdtest, workflow DAGs) queue up here and the queueing delay is visible to
clients -- which is what makes claim C4 measurable.

The MDS also emits namespace-change events to registered listeners; the
FSMonitor-like monitor (:mod:`repro.monitoring.fsmonitor`) subscribes to
these, mirroring Paul et al. [27], [28].
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, List, Optional

from repro.des.resources import Resource
from repro.ops import OpKind
from repro.telemetry import TELEMETRY
from repro.pfs.namespace import Namespace
from repro.pfs.layout import StripeLayout

#: Relative cost of each metadata op, in units of the base ``op_time``.
#: Creates are the most expensive (allocate inode + layout), stats cheapest.
_OP_COST = {
    OpKind.CREATE: 2.0,
    OpKind.OPEN: 1.0,
    OpKind.CLOSE: 0.5,
    OpKind.STAT: 0.6,
    OpKind.UNLINK: 1.5,
    OpKind.MKDIR: 1.5,
    OpKind.RMDIR: 1.2,
    OpKind.READDIR: 1.0,
    OpKind.FSYNC: 0.8,
}
_READDIR_PER_ENTRY = 0.02  # extra op_time units per directory entry


class MetadataServer:
    """A queued metadata service owning (a shard of) the namespace.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Server name (matches its node's fabric endpoint).
    namespace:
        The namespace shard this server owns.
    op_time:
        Base service time per op (seconds).
    threads:
        Concurrent service threads.
    """

    def __init__(
        self,
        env,
        name: str,
        namespace: Optional[Namespace] = None,
        op_time: float = 50e-6,
        threads: int = 4,
    ):
        if op_time < 0:
            raise ValueError("op_time must be non-negative")
        self.env = env
        self.name = name
        self.namespace = namespace or Namespace()
        self.op_time = float(op_time)
        self._svc = Resource(env, capacity=threads)
        self.op_counts: Counter = Counter()
        self.busy_time = 0.0
        # Fault injection: service-time multiplier (1.0 = healthy).  An MDS
        # brown-out inflates every op's service time -- the "metadata server
        # restart / overload" signature facility logs attribute tail
        # latency to.
        self._degradation = 1.0
        #: Callables ``(kind: OpKind, path: str, time: float)`` invoked on
        #: every namespace-changing operation (FSMonitor subscription).
        self.listeners: List[Callable[[OpKind, str, float], None]] = []

    # -- observable state ------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Requests waiting for a service thread (server-side load metric)."""
        return len(self._svc.queue)

    @property
    def in_service(self) -> int:
        return self._svc.in_use

    @property
    def total_ops(self) -> int:
        return sum(self.op_counts.values())

    def utilization(self) -> float:
        if self.env.now <= 0:
            return 0.0
        return min(1.0, self.busy_time / (self.env.now * self._svc.capacity))

    @property
    def degradation(self) -> float:
        """Current service-time multiplier (1.0 = healthy)."""
        return self._degradation

    def set_degradation(self, factor: float) -> None:
        """Inject a brown-out: every op takes ``factor``x its service time.

        ``factor=1.0`` restores health.
        """
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1.0, got {factor}")
        self._degradation = float(factor)

    # -- service ----------------------------------------------------------------
    def service_time(self, kind: OpKind, n_entries: int = 0) -> float:
        cost = _OP_COST.get(kind)
        if cost is None:
            raise ValueError(f"{kind} is not a metadata operation")
        t = cost * self.op_time
        if kind == OpKind.READDIR:
            t += n_entries * _READDIR_PER_ENTRY * self.op_time
        return t * self._degradation

    def serve(self, kind: OpKind, path: str, **kwargs):
        """Simulated-process generator serving one metadata operation.

        Returns the operation's result (an :class:`Inode` for
        create/open/stat, a listing for readdir, ``None`` otherwise).
        Namespace errors (``FileNotFoundError`` etc.) propagate to the
        caller's process.
        """
        enqueue = self.env.now
        with self._svc.request() as slot:
            yield slot
            queue_wait = self.env.now - enqueue
            n_entries = 0
            if kind == OpKind.READDIR and self.namespace.is_dir(path):
                n_entries = len(self.namespace.listdir(path))
            service = self.service_time(kind, n_entries)
            self.busy_time += service
            yield self.env.timeout(service)
            result = self._apply(kind, path, **kwargs)
        self.op_counts[kind] += 1
        if TELEMETRY.active:
            m = TELEMETRY.metrics
            m.counter("pfs.mds.ops").inc()
            m.histogram("pfs.mds.queue_wait_seconds").observe(queue_wait)
        for listener in self.listeners:
            listener(kind, path, self.env.now)
        return result

    def _apply(self, kind: OpKind, path: str, **kwargs) -> Any:
        ns = self.namespace
        now = self.env.now
        if kind == OpKind.CREATE:
            layout: StripeLayout = kwargs["layout"]
            return ns.create(path, layout, now=now)
        if kind == OpKind.OPEN:
            inode = ns.lookup(path)
            inode.opens += 1
            inode.atime = now
            return inode
        if kind == OpKind.CLOSE:
            inode = ns.lookup(path)
            inode.opens = max(0, inode.opens - 1)
            return None
        if kind == OpKind.STAT:
            return ns.lookup(path)
        if kind == OpKind.UNLINK:
            return ns.unlink(path)
        if kind == OpKind.MKDIR:
            return ns.mkdir(path)
        if kind == OpKind.RMDIR:
            return ns.rmdir(path)
        if kind == OpKind.READDIR:
            return ns.listdir(path)
        if kind == OpKind.FSYNC:
            return None
        raise ValueError(f"{kind} is not a metadata operation")
