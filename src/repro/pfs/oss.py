"""Object storage server model.

An OSS fronts a set of OST block devices.  Data RPCs queue on a bounded
pool of I/O service threads; each request pays a small per-RPC service
overhead and then the device access (seek + transfer).  Per-server load
counters are what storage-system-level monitoring (paper Sec. IV-A-2,
"server-side statistics") samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cluster.devices import BlockDevice
from repro.des.resources import Resource
from repro.ops import StorageUnavailable
from repro.telemetry import TELEMETRY


@dataclass
class OSSStats:
    """Cumulative per-server counters."""

    read_ops: int = 0
    write_ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def ops(self) -> int:
        return self.read_ops + self.write_ops

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written


class ObjectStorageServer:
    """A queued data service owning several OST devices.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Server name (matches its node's fabric endpoint).
    osts:
        Mapping of global OST id to its block device.
    op_time:
        Per-RPC software service overhead (seconds).
    threads:
        Concurrent I/O service threads.
    """

    def __init__(
        self,
        env,
        name: str,
        osts: Dict[int, BlockDevice],
        op_time: float = 20e-6,
        threads: int = 16,
    ):
        if not osts:
            raise ValueError("an OSS needs at least one OST")
        if op_time < 0:
            raise ValueError("op_time must be non-negative")
        self.env = env
        self.name = name
        self.osts = dict(osts)
        self.op_time = float(op_time)
        self._svc = Resource(env, capacity=threads)
        self.stats = OSSStats()
        self.busy_time = 0.0
        # Fault injection: a downed OSS rejects new RPCs (all of its OSTs
        # become unreachable) until it recovers.
        self._available = True

    @property
    def ost_ids(self) -> list[int]:
        return sorted(self.osts)

    @property
    def queue_length(self) -> int:
        """Requests waiting for a service thread."""
        return len(self._svc.queue)

    @property
    def in_service(self) -> int:
        return self._svc.in_use

    def utilization(self) -> float:
        if self.env.now <= 0:
            return 0.0
        return min(1.0, self.busy_time / (self.env.now * self._svc.capacity))

    @property
    def available(self) -> bool:
        """Whether the server currently accepts data RPCs."""
        return self._available

    def fail(self) -> None:
        """Take the whole server out of service (injected outage)."""
        self._available = False

    def recover(self) -> None:
        """Bring the server back into service."""
        self._available = True

    def plan_rpc_times(self, ost_id: int, offsets, sizes):
        """Vectorized service times for a cohort of same-OST data RPCs.

        Per-RPC software overhead plus the device's cohort plan
        (:meth:`repro.cluster.devices.BlockDevice.plan_service_times`),
        excluding thread-pool queueing.  A pure planner: nothing advances.
        """
        device = self.osts.get(ost_id)
        if device is None:
            raise KeyError(f"OST {ost_id} is not attached to {self.name}")
        if not self._available:
            raise StorageUnavailable(f"OSS {self.name} is down")
        planned = device.plan_service_times(offsets, sizes)
        if isinstance(planned, list):  # numpy unavailable
            return [self.op_time + t for t in planned]
        return self.op_time + planned

    def serve_data(self, ost_id: int, object_offset: int, nbytes: int, is_write: bool):
        """Simulated-process generator serving one data RPC.

        Returns the server-side service latency (queueing + device).
        """
        device = self.osts.get(ost_id)
        if device is None:
            raise KeyError(f"OST {ost_id} is not attached to {self.name}")
        if not self._available:
            raise StorageUnavailable(f"OSS {self.name} is down")
        start = self.env.now
        with self._svc.request() as slot:
            yield slot
            queue_wait = self.env.now - start
            if self.op_time > 0:
                yield self.env.timeout(self.op_time)
            yield from device.access(object_offset, nbytes, is_write)
        elapsed = self.env.now - start
        self.busy_time += elapsed
        if is_write:
            self.stats.write_ops += 1
            self.stats.bytes_written += nbytes
        else:
            self.stats.read_ops += 1
            self.stats.bytes_read += nbytes
        if TELEMETRY.active:
            m = TELEMETRY.metrics
            m.counter("pfs.oss.rpcs").inc()
            m.counter("pfs.oss.bytes").inc(nbytes)
            m.histogram("pfs.oss.queue_wait_seconds").observe(queue_wait)
        return elapsed
