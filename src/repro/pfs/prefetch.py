"""Prediction-driven read prefetching.

Omnisc'IO's [55] motivation for predicting I/O behaviour is acting on the
prediction -- prefetching and scheduling.  The :class:`PrefetchingReader`
closes that loop inside the simulation: it wraps a cached
:class:`~repro.pfs.client.PFSClient`, feeds every observed read into an
:class:`~repro.modeling.patterns.OpPredictor`, and speculatively issues
the predicted next reads in the background so they land in the client's
read cache before the application asks.

On predictable streams (sequential scans, strided sweeps) the prefetcher
overlaps I/O with the application's compute time and turns most reads
into cache hits; on shuffled streams (DL training without staging) the
predictions miss and the prefetcher is wasted work -- exactly the
trade-off the prediction literature quantifies.  Both regimes are covered
by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.modeling.patterns import OpPrediction, OpPredictor
from repro.ops import IOOp, OpKind
from repro.pfs.client import PFSClient


@dataclass
class PrefetchStats:
    """Prefetcher effectiveness counters."""

    issued: int = 0
    useful_hits: int = 0  # app reads served from cache after a prefetch
    wasted: int = 0  # prefetches never referenced before eviction

    @property
    def accuracy(self) -> float:
        if self.issued == 0:
            return 0.0
        return self.useful_hits / self.issued


class PrefetchingReader:
    """A read path with online prediction and speculative fetch.

    Parameters
    ----------
    client:
        The PFS client; must have a non-zero read cache (the prefetch
        destination).
    depth:
        Predicted reads issued ahead after every observed read.
    order:
        Context order of the underlying predictor.
    """

    def __init__(self, client: PFSClient, depth: int = 2, order: int = 2):
        if client.read_cache_bytes <= 0:
            raise ValueError("prefetching needs a client read cache")
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.client = client
        self.env = client.env
        self.depth = depth
        self.predictor = OpPredictor(order=order)
        self.stats = PrefetchStats()
        self._inflight: set = set()
        self._prefetched: set = set()

    # -- the instrumented read path ------------------------------------------------
    def read(self, path: str, offset: int, nbytes: int, rank: Optional[int] = None):
        """Generator: read through the client, learn, and prefetch ahead."""
        before_hits = self.client.stats.cache_hits
        dt = yield from self.client.read(path, offset, nbytes, rank=rank)
        was_hit = self.client.stats.cache_hits > before_hits
        key = (path, offset)
        if was_hit and key in self._prefetched:
            self.stats.useful_hits += 1
            self._prefetched.discard(key)

        self.predictor.observe(
            IOOp(OpKind.READ, path, offset=offset, nbytes=nbytes)
        )
        self._issue_prefetches()
        return dt

    def _issue_prefetches(self) -> None:
        """Speculatively fetch the next `depth` predicted reads."""
        # Walk the prediction chain: predict, pretend-observe, predict...
        # using a cheap fork of the predictor state is overkill; instead,
        # chain from the single next prediction by stride continuation.
        pred = self.predictor.predict()
        for step in range(self.depth):
            if pred is None or pred.kind != OpKind.READ:
                return
            key = (pred.path, pred.offset)
            if key not in self._inflight and key not in self._prefetched:
                self._inflight.add(key)
                self.stats.issued += 1
                self.env.process(self._fetch(pred.path, pred.offset, pred.nbytes))
            # Continue the chain assuming the same stride.
            deltas = self.predictor._delta_counts.get(
                (pred.kind.value, pred.path, pred.nbytes)
            )
            stride = deltas.most_common(1)[0][0] if deltas else pred.nbytes
            pred = OpPrediction(
                kind=pred.kind,
                path=pred.path,
                offset=max(0, pred.offset + stride),
                nbytes=pred.nbytes,
            )

    def _fetch(self, path: str, offset: int, nbytes: int):
        key = (path, offset)
        try:
            yield from self.client.read(path, offset, nbytes)
            self._prefetched.add(key)
        except (FileNotFoundError, ValueError):
            self.stats.wasted += 1
        finally:
            self._inflight.discard(key)

    def finalize(self) -> PrefetchStats:
        """Account remaining unreferenced prefetches as wasted."""
        self.stats.wasted += len(self._prefetched)
        self._prefetched.clear()
        return self.stats
