"""File-system namespace state (owned by the metadata server).

Pure in-memory data structure: directories, inodes, and the layout chosen
at file creation.  All costs (service time, queueing) live in
:mod:`repro.pfs.mds`; this module is deliberately free of simulation
concerns so it can be unit-tested directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.pfs.layout import StripeLayout


def _normalize(path: str) -> str:
    if not path.startswith("/"):
        raise ValueError(f"paths must be absolute, got {path!r}")
    parts = [p for p in path.split("/") if p]
    return "/" + "/".join(parts)


def _parent(path: str) -> str:
    norm = _normalize(path)
    if norm == "/":
        return "/"
    return norm.rsplit("/", 1)[0] or "/"


@dataclass
class Inode:
    """Metadata of one file."""

    path: str
    layout: StripeLayout
    size: int = 0
    ctime: float = 0.0
    mtime: float = 0.0
    atime: float = 0.0
    opens: int = 0


class Namespace:
    """Directories and files of one file system instance."""

    def __init__(self):
        self._dirs: Dict[str, List[str]] = {"/": []}
        self._files: Dict[str, Inode] = {}

    # -- queries ------------------------------------------------------------
    def exists(self, path: str) -> bool:
        p = _normalize(path)
        return p in self._files or p in self._dirs

    def is_dir(self, path: str) -> bool:
        return _normalize(path) in self._dirs

    def is_file(self, path: str) -> bool:
        return _normalize(path) in self._files

    def lookup(self, path: str) -> Inode:
        p = _normalize(path)
        inode = self._files.get(p)
        if inode is None:
            raise FileNotFoundError(p)
        return inode

    def listdir(self, path: str) -> List[str]:
        p = _normalize(path)
        entries = self._dirs.get(p)
        if entries is None:
            raise NotADirectoryError(p)
        return list(entries)

    @property
    def n_files(self) -> int:
        return len(self._files)

    @property
    def n_dirs(self) -> int:
        return len(self._dirs)

    def total_bytes(self) -> int:
        return sum(i.size for i in self._files.values())

    # -- mutations ----------------------------------------------------------
    def mkdir(self, path: str) -> None:
        p = _normalize(path)
        if p in self._dirs:
            raise FileExistsError(p)
        if p in self._files:
            raise FileExistsError(f"{p} exists as a file")
        parent = _parent(p)
        if parent not in self._dirs:
            raise FileNotFoundError(f"parent directory {parent} does not exist")
        self._dirs[p] = []
        self._dirs[parent].append(p.rsplit("/", 1)[1])

    def rmdir(self, path: str) -> None:
        p = _normalize(path)
        if p == "/":
            raise PermissionError("cannot remove the root directory")
        if p not in self._dirs:
            raise NotADirectoryError(p)
        if self._dirs[p]:
            raise OSError(f"directory not empty: {p}")
        del self._dirs[p]
        parent = _parent(p)
        self._dirs[parent].remove(p.rsplit("/", 1)[1])

    def create(self, path: str, layout: StripeLayout, now: float = 0.0) -> Inode:
        p = _normalize(path)
        if p in self._files or p in self._dirs:
            raise FileExistsError(p)
        parent = _parent(p)
        if parent not in self._dirs:
            raise FileNotFoundError(f"parent directory {parent} does not exist")
        inode = Inode(path=p, layout=layout, ctime=now, mtime=now, atime=now)
        self._files[p] = inode
        self._dirs[parent].append(p.rsplit("/", 1)[1])
        return inode

    def unlink(self, path: str) -> Inode:
        p = _normalize(path)
        inode = self._files.pop(p, None)
        if inode is None:
            raise FileNotFoundError(p)
        parent = _parent(p)
        self._dirs[parent].remove(p.rsplit("/", 1)[1])
        return inode

    def update_size(self, path: str, new_end: int, now: float = 0.0) -> None:
        """Grow the file to cover a write ending at ``new_end``."""
        inode = self.lookup(path)
        inode.size = max(inode.size, new_end)
        inode.mtime = now

    def touch_atime(self, path: str, now: float) -> None:
        self.lookup(path).atime = now
