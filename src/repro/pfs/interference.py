"""Cross-application I/O interference analysis.

Yildiz et al. [40] (surveyed in paper Sec. IV-B-1) root-cause
cross-application interference in HPC storage; the paper reproduces the
effect as claim C10.  This module provides the analysis side: layout
overlap metrics and the slowdown report comparing isolated vs. concurrent
runs.  The interference itself *emerges* from the shared OST device queues
and fabric links -- nothing here injects artificial slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.pfs.layout import StripeLayout


def ost_overlap(a: StripeLayout, b: StripeLayout) -> float:
    """Jaccard overlap of the OST sets of two layouts (0 = disjoint)."""
    sa, sb = set(a.ost_ids), set(b.ost_ids)
    union = sa | sb
    if not union:
        return 0.0
    return len(sa & sb) / len(union)


@dataclass
class SlowdownReport:
    """Per-job slowdown from concurrent execution.

    Parameters
    ----------
    alone:
        Mapping of job name to its isolated runtime (seconds).
    together:
        Mapping of job name to its runtime when co-scheduled.
    """

    alone: Dict[str, float]
    together: Dict[str, float]

    def __post_init__(self):
        missing = set(self.alone) ^ set(self.together)
        if missing:
            raise ValueError(f"job sets differ: {sorted(missing)}")
        for name, t in list(self.alone.items()) + list(self.together.items()):
            if t <= 0:
                raise ValueError(f"non-positive runtime for {name!r}: {t}")

    def slowdown(self, job: str) -> float:
        """Runtime inflation factor for one job (1.0 = unaffected)."""
        return self.together[job] / self.alone[job]

    def slowdowns(self) -> Dict[str, float]:
        return {j: self.slowdown(j) for j in self.alone}

    @property
    def mean_slowdown(self) -> float:
        vals = list(self.slowdowns().values())
        return sum(vals) / len(vals)

    @property
    def max_slowdown(self) -> float:
        return max(self.slowdowns().values())

    def interference_detected(self, threshold: float = 1.1) -> bool:
        """True if any job slowed by more than ``threshold``x."""
        return self.max_slowdown > threshold

    def summary(self) -> str:
        lines = ["job            alone      together   slowdown"]
        for j in sorted(self.alone):
            lines.append(
                f"{j:<14} {self.alone[j]:>9.3f}s {self.together[j]:>9.3f}s "
                f"{self.slowdown(j):>8.2f}x"
            )
        return "\n".join(lines)


def aggregate_bandwidth_loss(
    isolated_bw: Iterable[float], shared_bw: Iterable[float]
) -> float:
    """Fractional aggregate-bandwidth loss when workloads share the system.

    Interference shows up not only as per-job slowdown but as a drop in
    *total* delivered bandwidth (seek-induced on disk OSTs).  Returns a
    value in [0, 1); 0 means sharing was work-conserving.
    """
    iso = sum(isolated_bw)
    shr = sum(shared_bw)
    if iso <= 0:
        raise ValueError("isolated bandwidth sum must be positive")
    return max(0.0, 1.0 - shr / iso)
