"""Lustre-like parallel file system model.

Implements the server side of paper Fig. 1's storage cluster and the
client-side striping logic of Fig. 2's bottom layer:

* :mod:`repro.pfs.layout` -- stripe arithmetic (offset -> (OST, object
  offset) mapping), the invariant-rich core that property-based tests pound.
* :mod:`repro.pfs.namespace` -- the file-system namespace (directories,
  inodes) owned by the metadata server.
* :mod:`repro.pfs.mds` -- the metadata server: a queued service handling
  create/open/stat/unlink/mkdir/readdir, emitting FSMonitor-able events.
* :mod:`repro.pfs.oss` -- object storage servers fronting OST block devices.
* :mod:`repro.pfs.client` -- the client: metadata RPCs to the MDS, striped
  data RPCs fanned out to the OSSes, optional read cache.
* :mod:`repro.pfs.filesystem` -- assembly: ``build_pfs(platform)`` attaches
  a file system to a platform's storage nodes.
* :mod:`repro.pfs.interference` -- cross-application interference analysis
  helpers (Yildiz et al. [40]; claim C10).
"""

from repro.pfs.layout import StripeLayout, StripeSlice
from repro.pfs.namespace import Inode, Namespace
from repro.pfs.mds import MetadataServer
from repro.pfs.oss import ObjectStorageServer
from repro.pfs.client import PFSClient
from repro.pfs.filesystem import ParallelFileSystem, build_pfs
from repro.pfs.interference import SlowdownReport, ost_overlap

__all__ = [
    "Inode",
    "MetadataServer",
    "Namespace",
    "ObjectStorageServer",
    "PFSClient",
    "ParallelFileSystem",
    "SlowdownReport",
    "StripeLayout",
    "StripeSlice",
    "build_pfs",
    "ost_overlap",
]
