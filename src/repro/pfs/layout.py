"""Stripe layout arithmetic.

A file is striped round-robin over ``stripe_count`` OSTs in units of
``stripe_size`` bytes, exactly as in Lustre: file byte ``b`` lives in stripe
``b // stripe_size``, which maps to OST index ``stripe % stripe_count`` at
object offset ``(stripe // stripe_count) * stripe_size + (b % stripe_size)``.

:meth:`StripeLayout.slices` decomposes an arbitrary byte extent into
per-OST contiguous slices; this is the function that determines how much
parallelism a request can exploit, and it is exercised by property-based
tests (coverage, disjointness, byte conservation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class StripeSlice:
    """A contiguous piece of a file extent on a single OST object."""

    ost_index: int  # index into the layout's OST list
    ost_id: int  # global OST identifier
    object_offset: int  # offset within the per-OST backing object
    file_offset: int  # where this slice starts in the file
    length: int

    def __post_init__(self):
        if self.length <= 0:
            raise ValueError("slice length must be positive")
        if min(self.object_offset, self.file_offset) < 0:
            raise ValueError("offsets must be non-negative")


@dataclass(frozen=True)
class StripeLayout:
    """Striping parameters of one file.

    Parameters
    ----------
    stripe_size:
        Bytes per stripe unit (Lustre default: 1 MiB).
    ost_ids:
        The OSTs the file is striped over, in round-robin order.  Its
        length is the stripe count.
    replica_ost_ids:
        Optional mirror set, parallel to ``ost_ids``: stripe ``i`` is also
        written to ``replica_ost_ids[i]`` and a resilient client may fail
        over reads/writes there when the primary OST is unavailable
        (Lustre FLR-style mirroring).  Empty (the default) means
        unreplicated.
    """

    stripe_size: int
    ost_ids: tuple
    replica_ost_ids: tuple

    def __init__(
        self,
        stripe_size: int,
        ost_ids: Sequence[int],
        replica_ost_ids: Sequence[int] = (),
    ):
        if stripe_size <= 0:
            raise ValueError(f"stripe_size must be positive, got {stripe_size}")
        ids = tuple(ost_ids)
        if not ids:
            raise ValueError("layout needs at least one OST")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate OSTs in layout: {ids}")
        mirrors = tuple(replica_ost_ids)
        if mirrors:
            if len(mirrors) != len(ids):
                raise ValueError(
                    "replica_ost_ids must be parallel to ost_ids "
                    f"({len(mirrors)} != {len(ids)})"
                )
            if len(set(mirrors)) != len(mirrors):
                raise ValueError(f"duplicate OSTs in replica set: {mirrors}")
            same = [i for i, (a, b) in enumerate(zip(ids, mirrors)) if a == b]
            if same:
                raise ValueError(
                    f"replica OST equals primary OST at stripe index {same[0]}"
                )
        object.__setattr__(self, "stripe_size", int(stripe_size))
        object.__setattr__(self, "ost_ids", ids)
        object.__setattr__(self, "replica_ost_ids", mirrors)

    @property
    def stripe_count(self) -> int:
        return len(self.ost_ids)

    @property
    def replicated(self) -> bool:
        return bool(self.replica_ost_ids)

    def replica_of(self, ost_index: int):
        """Mirror OST for stripe index ``ost_index`` (``None`` if none)."""
        if not self.replica_ost_ids:
            return None
        return self.replica_ost_ids[ost_index]

    def ost_of(self, offset: int) -> int:
        """Global OST id holding file byte ``offset``."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        return self.ost_ids[(offset // self.stripe_size) % self.stripe_count]

    def object_offset(self, offset: int) -> int:
        """Offset within the per-OST backing object for file byte ``offset``."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        stripe = offset // self.stripe_size
        return (stripe // self.stripe_count) * self.stripe_size + offset % self.stripe_size

    def slices(self, offset: int, nbytes: int) -> List[StripeSlice]:
        """Decompose ``[offset, offset+nbytes)`` into per-OST slices.

        Consecutive stripe units on the *same* OST object that are also
        contiguous in the object's address space are merged, so a request
        spanning many full stripe rounds produces one slice per OST rather
        than one per stripe unit -- matching how clients build RPCs.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        raw: List[StripeSlice] = []
        pos = offset
        end = offset + nbytes
        while pos < end:
            stripe = pos // self.stripe_size
            stripe_end = (stripe + 1) * self.stripe_size
            take = min(end, stripe_end) - pos
            idx = stripe % self.stripe_count
            raw.append(
                StripeSlice(
                    ost_index=idx,
                    ost_id=self.ost_ids[idx],
                    object_offset=self.object_offset(pos),
                    file_offset=pos,
                    length=take,
                )
            )
            pos += take
        # Merge object-contiguous neighbours per OST.
        merged: dict[int, List[StripeSlice]] = {}
        for s in raw:
            bucket = merged.setdefault(s.ost_index, [])
            if (
                bucket
                and bucket[-1].object_offset + bucket[-1].length == s.object_offset
            ):
                prev = bucket[-1]
                bucket[-1] = StripeSlice(
                    ost_index=prev.ost_index,
                    ost_id=prev.ost_id,
                    object_offset=prev.object_offset,
                    file_offset=prev.file_offset,
                    length=prev.length + s.length,
                )
            else:
                bucket.append(s)
        out = [s for bucket in merged.values() for s in bucket]
        out.sort(key=lambda s: s.file_offset)
        return out

    def osts_touched(self, offset: int, nbytes: int) -> set:
        """Set of global OST ids a request lands on."""
        return {s.ost_id for s in self.slices(offset, nbytes)}
