"""Burst-buffer staging client.

Completes the Fig. 1 data path: applications write checkpoints into the
I/O-node burst buffer at SSD speed; the staging client tracks which byte
extents are still resident in the buffer, drains them to the parallel
file system in write order, and serves reads from the buffer while the
data is staged (the "restart from the burst buffer" fast path) or from
the PFS after it drained.

This is the programmable version of what claim C5 wires manually, and the
substrate for burst-buffer placement studies (Khetawat et al. [33]).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.cluster.burst_buffer import BurstBuffer
from repro.iostack.extents import clip, coalesce, total_bytes
from repro.pfs.client import PFSClient


@dataclass
class _Segment:
    """One absorbed write awaiting drain."""

    path: str
    offset: int
    remaining: int
    cursor: int  # next undrained byte within [offset, offset+len)


class StagingClient:
    """Write-through-buffer, read-from-wherever-the-data-is client.

    Parameters
    ----------
    bb:
        The burst buffer (its drain target is installed by this client;
        do not call ``set_drain_target`` yourself).
    pfs_client:
        The client used for draining and for reads of drained data
        (typically created on the burst buffer's I/O node).
    stripe_count:
        Stripe count for files the drain creates on the PFS.
    """

    def __init__(
        self,
        bb: BurstBuffer,
        pfs_client: PFSClient,
        stripe_count: Optional[int] = -1,
    ):
        self.bb = bb
        self.pfs = pfs_client
        self.env = pfs_client.env
        self.stripe_count = stripe_count
        self._drain_fifo: Deque[_Segment] = deque()
        self._staged: Dict[str, List[Tuple[int, int]]] = {}
        self._created: set = set()
        self.bytes_staged_total = 0
        self.bytes_drained_total = 0
        bb.set_drain_target(self._drain_fn)

    # -- write path -----------------------------------------------------------
    def write(self, path: str, offset: int, nbytes: int):
        """Generator: absorb a write into the burst buffer."""
        if nbytes < 0 or offset < 0:
            raise ValueError("offset and nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        seg = _Segment(path=path, offset=offset, remaining=nbytes, cursor=offset)
        self._drain_fifo.append(seg)
        self._staged[path] = coalesce(
            self._staged.get(path, []) + [(offset, nbytes)]
        )
        self.bytes_staged_total += nbytes
        dt = yield from self.bb.write(nbytes)
        return dt

    def flush(self):
        """Generator: wait until every absorbed byte is durable on the PFS."""
        yield from self.bb.flush()

    # -- read path ---------------------------------------------------------------
    def is_staged(self, path: str, offset: int, nbytes: int) -> bool:
        """Whether the extent is still fully resident in the buffer."""
        staged = self._staged.get(path, [])
        covered = clip(staged, offset, offset + nbytes)
        return total_bytes(covered) == nbytes

    def read(self, path: str, offset: int, nbytes: int):
        """Generator: read from the buffer when staged, else from the PFS."""
        if self.is_staged(path, offset, nbytes):
            yield from self.bb.read(offset, nbytes)
            return "bb"
        yield from self.pfs.read(path, offset, nbytes)
        return "pfs"

    # -- drain plumbing --------------------------------------------------------------
    def _drain_fn(self, nbytes: float):
        """Drain callback: move ``nbytes`` of FIFO segments to the PFS."""
        remaining = int(nbytes)
        while remaining > 0 and self._drain_fifo:
            seg = self._drain_fifo[0]
            take = min(remaining, seg.remaining)
            if seg.path not in self._created:
                try:
                    yield from self.pfs.create(
                        seg.path, stripe_count=self.stripe_count
                    )
                except FileExistsError:
                    pass
                self._created.add(seg.path)
            yield from self.pfs.write(seg.path, seg.cursor, take)
            self._unstage(seg.path, seg.cursor, take)
            seg.cursor += take
            seg.remaining -= take
            remaining -= take
            self.bytes_drained_total += take
            if seg.remaining == 0:
                self._drain_fifo.popleft()

    def _unstage(self, path: str, offset: int, nbytes: int) -> None:
        staged = self._staged.get(path, [])
        out: List[Tuple[int, int]] = []
        lo, hi = offset, offset + nbytes
        for s_off, s_len in staged:
            s_hi = s_off + s_len
            if s_hi <= lo or s_off >= hi:
                out.append((s_off, s_len))
                continue
            if s_off < lo:
                out.append((s_off, lo - s_off))
            if s_hi > hi:
                out.append((hi, s_hi - hi))
        self._staged[path] = coalesce(out)

    # -- reporting ------------------------------------------------------------------
    def staged_bytes(self, path: Optional[str] = None) -> int:
        """Bytes currently resident in the buffer (optionally per file)."""
        if path is not None:
            return total_bytes(self._staged.get(path, []))
        return sum(total_bytes(v) for v in self._staged.values())
