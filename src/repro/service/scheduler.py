"""Start-time fair queueing of simulator capacity across tenants.

This is :class:`repro.des.sharing.FairShareLink`'s virtual-service
accounting dog-fooded at the control plane: instead of flows sharing
link bandwidth, tenants share pool workers.  The link tracks one
link-wide ``_virtual`` ("bytes served to every active flow since the
busy period began") and stamps each flow a *finish tag* at admission;
the active set is a min-heap keyed ``(finish_tag, seq)``.  The queue
here does exactly the same with task cost in place of bytes:

* each tenant carries a *virtual finish time* -- the tag of its last
  admitted task;
* a task of cost ``c`` from tenant ``t`` is stamped
  ``start = max(V, tag[t])``, ``finish = start + c / weight`` (an idle
  tenant re-enters at the current virtual time ``V``, never banking
  idle credit -- the start-time rule that makes fair queueing fair);
* :meth:`pop` always dispatches the smallest ``(finish_tag, seq)`` and
  advances ``V`` to it, so a tenant that queued 1000 tasks and a tenant
  that queued one interleave 1:1 instead of FIFO-starving the
  latecomer;
* when the queue drains, tags and ``V`` reset -- the same busy-period
  reset the link performs.

``seq`` breaks ties in admission order, making dispatch deterministic
under equal tags (exactly the link's ``(finish_tag, seq)`` discipline).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, List, Optional

__all__ = ["FairShareQueue"]


class _Entry:
    """One queued task, ordered by (finish_tag, seq)."""

    __slots__ = ("finish_tag", "seq", "tenant", "item")

    def __init__(self, finish_tag: float, seq: int, tenant: str, item: Any):
        self.finish_tag = finish_tag
        self.seq = seq
        self.tenant = tenant
        self.item = item

    def __lt__(self, other: "_Entry") -> bool:
        if self.finish_tag != other.finish_tag:
            return self.finish_tag < other.finish_tag
        return self.seq < other.seq


class FairShareQueue:
    """A weighted fair queue over tenants (see module docstring).

    Not thread-safe by design: the service drives it from one asyncio
    event loop, the same way the link is driven by one DES loop.
    """

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        #: Per-tenant virtual finish time of the last admitted task.
        self._tenant_tag: Dict[str, float] = {}
        #: Queue-wide virtual time (tag of the last dispatched task).
        self._virtual = 0.0
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def virtual_time(self) -> float:
        return self._virtual

    def push(
        self, tenant: str, item: Any, cost: float = 1.0, weight: float = 1.0
    ) -> None:
        """Admit one task of ``cost`` for ``tenant``.

        ``weight > 1`` gives the tenant a proportionally larger share
        (its tasks accrue virtual time more slowly).
        """
        if cost <= 0:
            raise ValueError(f"cost must be positive, got {cost}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        start = max(self._virtual, self._tenant_tag.get(tenant, 0.0))
        finish = start + cost / weight
        self._tenant_tag[tenant] = finish
        heappush(self._heap, _Entry(finish, self._seq, tenant, item))
        self._seq += 1

    def pop(self) -> Any:
        """Dispatch the earliest-finishing task; advances virtual time."""
        if not self._heap:
            raise IndexError("pop from an empty FairShareQueue")
        entry = heappop(self._heap)
        self._virtual = max(self._virtual, entry.finish_tag)
        if not self._heap:
            # Busy period over: reset the clock so tags never grow
            # without bound (the link's drain-time reset).
            self._virtual = 0.0
            self._tenant_tag.clear()
        return entry.item

    def drop(self, predicate: Callable[[Any], bool]) -> List[Any]:
        """Remove every queued item matching ``predicate``; returns them.

        Used to abort a tenant's queued work without draining the pool:
        O(n) rebuild, which is fine at control-plane queue sizes.
        """
        dropped = [e.item for e in self._heap if predicate(e.item)]
        if dropped:
            self._heap = [e for e in self._heap if not predicate(e.item)]
            heapify(self._heap)
            if not self._heap:
                self._virtual = 0.0
                self._tenant_tag.clear()
        return dropped

    def queued_by_tenant(self) -> Dict[str, int]:
        """Queued task count per tenant (for stats/ledger rendering)."""
        counts: Dict[str, int] = {}
        for entry in self._heap:
            counts[entry.tenant] = counts.get(entry.tenant, 0) + 1
        return counts
