"""``repro.service`` -- the asyncio multi-tenant run service.

Scenario-as-a-service: a long-lived job server that accepts scenario and
sweep submissions from many concurrent clients over a JSON-lines socket
protocol, executes them on the same process-pool/job-execution machinery
the one-shot CLI uses (:mod:`repro.jobs`), and lands every result in the
content-addressed run store -- so a submission and a ``repro-io scenario
sweep`` of the same spec produce the *same* artifact at the same address.

Layering (top to bottom)::

    repro-io serve / submit / jobs / loadgen      (CLI front-ends)
    repro.service.server  -- admission, quotas, fair share, coalescing
    repro.service.jobs    -- job/computation model + job ledger
    repro.service.scheduler -- start-time fair queueing across tenants
    repro.jobs            -- shared execution core (pools, cache, ledgers)
    repro.store           -- content-addressed artifacts and refs

See DESIGN.md ("Run service") for the architecture discussion.
"""

from repro.service.client import (
    ServiceClient,
    StaleDiscoveryError,
    backoff_delay,
    load_discovery,
    pid_alive,
)
from repro.service.jobs import (
    JOB_STATES,
    SERVICE_JOB_SCHEMA,
    SERVICE_LEDGER_NAME,
    SERVICE_LEDGER_SCHEMA,
)
from repro.service.journal import JobJournal, JournalState
from repro.service.scheduler import FairShareQueue
from repro.service.server import RunService, ServiceConfig

__all__ = [
    "RunService",
    "ServiceConfig",
    "ServiceClient",
    "StaleDiscoveryError",
    "FairShareQueue",
    "JobJournal",
    "JournalState",
    "backoff_delay",
    "load_discovery",
    "pid_alive",
    "JOB_STATES",
    "SERVICE_JOB_SCHEMA",
    "SERVICE_LEDGER_NAME",
    "SERVICE_LEDGER_SCHEMA",
]
