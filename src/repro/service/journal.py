"""Write-ahead job journal: crash durability for the run service.

The service keeps jobs, computations, and waiter lists in memory; this
module makes the *recoverable* part of that state durable.  Every
admission that enqueues or joins live work appends an ``admit`` record
before the client is acked, every terminal computation appends a
``complete`` record, and a clean shutdown appends ``clean_close`` -- so
after a crash (kill -9, OOM, power loss) the next boot can replay the
journal and re-queue exactly the computations that never finished, with
each job's waiter list intact.

Format
------
Append-only segments (``segment-NNNNNN.ndjson``) of newline-framed
records::

    <crc32-hex> <canonical-json>\n

The CRC covers the JSON bytes, so a torn tail (the classic
crash-mid-write artifact) or a flipped bit is *detected and skipped*
rather than parsed into garbage state.  Appends are buffered and
fsynced in batches: a group commit.  :meth:`JobJournal.commit` returns
once everything appended so far is on disk, and concurrent committers
in the same flush window share one ``fsync`` -- which is what keeps
admission durability off the warm-path (warm-only jobs are never
journaled at all) and under a handful of milliseconds on the cold path.

Rotation and compaction
-----------------------
A segment is rotated once it holds ``segment_max_records`` records.
Compaction rewrites the *live* state (snapshot records supplied by the
server -- admits of unfinished jobs plus payloads of their pending
computations) into a fresh segment via write-temp-then-rename, then
deletes every older segment.  The server compacts at every boot after
replay and whenever ``compact_threshold`` records accumulate, so the
journal's size is bounded by live work, not by history (history lives
in the job ledger and the store).

Record types
------------
``admit``        one job admitted with live work (slots + payloads)
``start``        a computation was dispatched to the pool
``complete``     a computation reached a terminal state
``cancel``       a client cancelled a job's queued work
``land``         a finished job's run document landed in the store
``clean_close``  orderly shutdown; everything before it is settled
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import re
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.telemetry import TELEMETRY

log = logging.getLogger(__name__)

__all__ = ["JobJournal", "JournalState", "JOURNAL_DIR_NAME", "frame_record", "parse_line"]

#: Journal directory, created next to the job ledger / discovery file.
JOURNAL_DIR_NAME = "service-journal"

_SEGMENT_RE = re.compile(r"^segment-(\d{6})\.ndjson$")


def _segment_name(index: int) -> str:
    return f"segment-{index:06d}.ndjson"


def frame_record(record: Dict[str, Any]) -> bytes:
    """Frame one record as ``<crc32-hex> <json>\\n``."""
    body = json.dumps(record, separators=(",", ":"), sort_keys=True)
    data = body.encode("utf-8")
    return b"%08x " % (zlib.crc32(data) & 0xFFFFFFFF) + data + b"\n"


def parse_line(line: bytes) -> Optional[Dict[str, Any]]:
    """Parse one framed line; ``None`` when torn or corrupt."""
    line = line.rstrip(b"\n")
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        want = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:]
    if zlib.crc32(body) & 0xFFFFFFFF != want:
        return None
    try:
        doc = json.loads(body)
    except json.JSONDecodeError:
        return None
    return doc if isinstance(doc, dict) else None


@dataclass
class JournalState:
    """What a replay recovered: jobs, payloads, completions."""

    #: job id -> its (mutated) ``admit`` record.
    jobs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: scenario digest -> canonical scenario JSON (pending work only).
    payloads: Dict[str, str] = field(default_factory=dict)
    #: scenario digest -> its ``complete`` record.
    completed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: True when the journal ends in a settled state (clean shutdown).
    clean_close: bool = False
    records: int = 0
    corrupt_lines: int = 0
    segments: int = 0

    def live_jobs(self) -> List[Dict[str, Any]]:
        """Admit records that still have unfinished, wanted work.

        A job is live when it was not cancelled, did not settle before a
        clean close, and at least one of its slots points at a
        computation with no terminal outcome on record.
        """
        live = []
        for rec in self.jobs.values():
            if rec.get("cancelled") or rec.get("closed"):
                continue
            slots = rec.get("tasks") or []
            pending = [
                s for s in slots
                if "state" not in s and s.get("digest") not in self.completed
            ]
            if pending:
                live.append(rec)
        return live

    def apply(self, rec: Dict[str, Any]) -> None:
        """Fold one record into the state (records arrive in log order)."""
        kind = rec.get("t")
        if kind == "admit":
            job_id = rec.get("job")
            if job_id:
                self.jobs[job_id] = rec
                for digest, payload in (rec.get("payloads") or {}).items():
                    self.payloads[digest] = payload
            self.clean_close = False
        elif kind == "complete":
            digest = rec.get("digest")
            if digest:
                self.completed[digest] = rec
        elif kind == "cancel":
            job = self.jobs.get(rec.get("job"))
            if job is not None:
                job["cancelled"] = True
        elif kind == "land":
            job = self.jobs.get(rec.get("job"))
            if job is not None:
                job["run_id"] = rec.get("run_id")
        elif kind == "clean_close":
            # Everything before an orderly shutdown is settled; records
            # after it (if any) belong to a newer server life.
            for job in self.jobs.values():
                job["closed"] = True
            self.clean_close = True
        # "start" records are observability only; replay ignores them.


class JobJournal:
    """Append-only, CRC-framed, fsync-batched write-ahead journal.

    One instance belongs to one running service.  All methods are
    event-loop-thread only; the actual ``write(2)``/``fsync(2)`` calls
    are small enough (a handful of short lines per batch) that doing
    them inline beats shipping every batch to an executor.
    """

    def __init__(
        self,
        directory: Union[Path, str],
        *,
        fsync_interval: float = 0.05,
        fsync_batch: int = 256,
        segment_max_records: int = 4096,
        compact_threshold: int = 4096,
    ):
        self.directory = Path(directory)
        self.fsync_interval = fsync_interval
        self.fsync_batch = fsync_batch
        self.segment_max_records = segment_max_records
        self.compact_threshold = compact_threshold
        self._fd: Optional[int] = None
        self._index = 0
        self._segment_records = 0
        self._records_since_compact = 0
        self._buffer: List[bytes] = []
        self._buffer_records = 0
        self._waiters: List[asyncio.Future] = []
        self._wake: Optional[asyncio.Event] = None
        self.stats: Dict[str, int] = {
            "records": 0,
            "fsync_batches": 0,
            "compactions": 0,
            "segments": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> None:
        """Start a *new* segment after any existing ones.

        Never appends to an old segment: its tail may be torn, and a
        record glued onto a torn line would fail its CRC and be lost.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        indices = self._segment_indices()
        self._index = (indices[-1] + 1) if indices else 1
        self._open_segment()

    def _segment_indices(self) -> List[int]:
        out = []
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        for name in names:
            m = _SEGMENT_RE.match(name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def _segment_path(self, index: int) -> Path:
        return self.directory / _segment_name(index)

    def _open_segment(self) -> None:
        self._fd = os.open(
            self._segment_path(self._index),
            os.O_WRONLY | os.O_CREAT | os.O_APPEND,
            0o644,
        )
        self.stats["segments"] = len(self._segment_indices())

    def close(self, *, clean: bool = False) -> None:
        """Flush and close; ``clean=True`` journals an orderly shutdown."""
        if self._fd is None:
            return
        if clean:
            self.append("clean_close")
        self.flush()
        os.close(self._fd)
        self._fd = None

    def abort(self) -> None:
        """Drop buffered records and close without flushing.

        Test hook that models a crash: whatever ``commit`` never acked
        is allowed to vanish, exactly like a real kill -9.
        """
        self._buffer.clear()
        self._buffer_records = 0
        for fut in self._waiters:
            if not fut.done():
                fut.set_result(None)
        self._waiters.clear()
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    # -- appends -------------------------------------------------------------

    def append(self, record_type: str, **fields: Any) -> None:
        """Buffer one record; durable after the next flush/commit."""
        record = {"t": record_type, "ts": time.time(), **fields}
        self._buffer.append(frame_record(record))
        self._buffer_records += 1
        if self._buffer_records >= self.fsync_batch:
            self._signal()

    async def commit(self) -> None:
        """Return once everything appended so far is fsynced.

        Concurrent committers in one flush window share a single fsync
        (group commit); with an idle buffer this returns immediately.
        """
        if not self._buffer and not self._waiters:
            return
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(fut)
        self._signal()
        await fut

    def _signal(self) -> None:
        if self._wake is not None:
            self._wake.set()

    def flush(self) -> None:
        """Write and fsync the buffered batch; wake committers."""
        if self._fd is not None and self._buffer:
            data = b"".join(self._buffer)
            n = self._buffer_records
            self._buffer.clear()
            self._buffer_records = 0
            os.write(self._fd, data)
            os.fsync(self._fd)
            self.stats["records"] += n
            self.stats["fsync_batches"] += 1
            self._segment_records += n
            self._records_since_compact += n
            if TELEMETRY.active:
                TELEMETRY.metrics.counter("service.journal.records").inc(n)
                TELEMETRY.metrics.counter("service.journal.fsync_batches").inc()
            if self._segment_records >= self.segment_max_records:
                self._rotate()
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            if not fut.done():
                fut.set_result(None)

    def _rotate(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
        self._index += 1
        self._segment_records = 0
        self._open_segment()

    async def run_flusher(
        self, compact_hook: Optional[Callable[[], Iterable[Dict[str, Any]]]] = None
    ) -> None:
        """Group-commit loop: flush every ``fsync_interval`` seconds (or
        as soon as a committer or a full batch signals), compacting via
        ``compact_hook`` when enough records accumulate."""
        self._wake = asyncio.Event()
        try:
            while True:
                try:
                    await asyncio.wait_for(
                        self._wake.wait(), timeout=self.fsync_interval
                    )
                except asyncio.TimeoutError:
                    pass
                self._wake.clear()
                if self._fd is None:
                    return
                self.flush()
                if (
                    compact_hook is not None
                    and self._records_since_compact >= self.compact_threshold
                ):
                    self.compact(compact_hook())
        except asyncio.CancelledError:
            if self._fd is not None:
                self.flush()
            raise
        finally:
            self._wake = None

    # -- compaction ----------------------------------------------------------

    @property
    def records_since_compact(self) -> int:
        return self._records_since_compact + self._buffer_records

    def compact(self, snapshot_records: Iterable[Dict[str, Any]]) -> int:
        """Rewrite the journal to just the live snapshot, atomically.

        The snapshot segment is written complete and fsynced under a
        temporary name, renamed into place as the newest segment, and
        only then are the older segments deleted -- a crash at any point
        leaves either the old segments or the complete snapshot.
        Returns the number of snapshot records written.
        """
        self.flush()
        records = list(snapshot_records)
        new_index = self._index + 1
        path = self._segment_path(new_index)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            for rec in records:
                rec = dict(rec)
                rec.setdefault("t", "admit")
                rec.setdefault("ts", time.time())
                fh.write(frame_record(rec))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._fsync_dir()
        if self._fd is not None:
            os.close(self._fd)
        for index in self._segment_indices():
            if index < new_index:
                try:
                    self._segment_path(index).unlink()
                except OSError:  # pragma: no cover - racing cleanup
                    pass
        self._fsync_dir()
        self._index = new_index
        self._segment_records = len(records)
        self._records_since_compact = 0
        self._fd = os.open(path, os.O_WRONLY | os.O_APPEND, 0o644)
        self.stats["compactions"] += 1
        self.stats["records"] += len(records)
        self.stats["segments"] = len(self._segment_indices())
        if TELEMETRY.active:
            TELEMETRY.metrics.counter("service.journal.compactions").inc()
        log.info(
            "journal compacted to %d live record(s) in %s",
            len(records), path.name,
        )
        return len(records)

    def _fsync_dir(self) -> None:
        try:
            dir_fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover
            pass
        finally:
            os.close(dir_fd)

    # -- replay --------------------------------------------------------------

    @classmethod
    def replay(cls, directory: Union[Path, str]) -> JournalState:
        """Fold every readable record in every segment into a state.

        Corrupt or torn lines are skipped and counted, never fatal: the
        journal exists to survive crashes, and a crash is exactly when
        a torn tail appears.
        """
        state = JournalState()
        directory = Path(directory)
        if not directory.is_dir():
            return state
        names = sorted(
            name for name in os.listdir(directory) if _SEGMENT_RE.match(name)
        )
        state.segments = len(names)
        for name in names:
            with open(directory / name, "rb") as fh:
                for raw in fh:
                    rec = parse_line(raw)
                    if rec is None:
                        state.corrupt_lines += 1
                        continue
                    state.records += 1
                    state.apply(rec)
        if state.corrupt_lines:
            log.warning(
                "journal replay skipped %d corrupt/torn line(s) in %s",
                state.corrupt_lines, directory,
            )
        return state
