"""Asyncio client for the run service's JSON-lines protocol.

One :class:`ServiceClient` owns one socket and multiplexes any number of
concurrent requests over it: every request carries a client-assigned
``id``, a background reader task resolves the matching future when the
response line arrives, so ``await client.submit(...)`` from a hundred
tasks shares one connection without head-of-line blocking on the
server's side (the server pipelines too -- each request is served by its
own task).  This is what lets the load generator simulate thousands of
tenants over a handful of sockets.

Discovery: the server writes ``service.json`` next to its job ledger;
:func:`load_discovery` reads it so CLI clients can find a locally
running server without flags.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
from pathlib import Path
from typing import Any, Dict, Optional, Union

log = logging.getLogger(__name__)

__all__ = ["ServiceClient", "load_discovery"]

_STREAM_LIMIT = 16 * 1024 * 1024


def load_discovery(where: Union[Path, str]) -> Dict[str, Any]:
    """Read a service discovery document.

    ``where`` may be the discovery file itself or the directory the
    server wrote it into (the store's parent by default).
    """
    from repro.service.server import DISCOVERY_NAME, DISCOVERY_SCHEMA

    path = Path(where)
    if path.is_dir():
        path = path / DISCOVERY_NAME
    if not path.exists():
        raise FileNotFoundError(
            f"no service discovery file at {path} -- is `repro-io serve` "
            f"running with this state directory?"
        )
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != DISCOVERY_SCHEMA:
        raise ValueError(f"{path} is not a service discovery document")
    return doc


class ServiceClient:
    """One connection to a :class:`repro.service.RunService`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(), name="service-client-reader"
        )

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=_STREAM_LIMIT
        )
        return cls(reader, writer)

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        self._fail_pending(ConnectionError("client closed"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    log.warning("unparseable service response: %r", line[:200])
                    continue
                future = self._pending.pop(doc.pop("id", None), None)
                if future is None:
                    log.debug("unmatched service response: %r", doc)
                elif not future.done():
                    future.set_result(doc)
        except asyncio.CancelledError:
            raise
        except (ConnectionResetError, OSError) as exc:
            self._fail_pending(ConnectionError(str(exc)))
        else:
            self._fail_pending(ConnectionError("server closed the connection"))

    async def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one request and await its matched response document."""
        rid = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        payload = {"op": op, "id": rid, **params}
        data = json.dumps(payload).encode("utf-8") + b"\n"
        async with self._write_lock:
            self._writer.write(data)
            await self._writer.drain()
        return await future

    # -- convenience ops -----------------------------------------------------

    async def ping(self) -> Dict[str, Any]:
        return await self.request("ping")

    async def submit(
        self,
        scenario: Union[str, Dict[str, Any]],
        *,
        tenant: str = "anonymous",
        grid: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
        wait: bool = True,
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {
            "scenario": scenario, "tenant": tenant, "wait": wait,
        }
        if grid:
            params["grid"] = grid
        if seed is not None:
            params["seed"] = seed
        return await self.request("submit", **params)

    async def wait(self, job_id: str) -> Dict[str, Any]:
        return await self.request("wait", job_id=job_id)

    async def status(self, job_id: str) -> Dict[str, Any]:
        return await self.request("status", job_id=job_id)

    async def jobs(self, tenant: Optional[str] = None) -> Dict[str, Any]:
        params = {"tenant": tenant} if tenant is not None else {}
        return await self.request("jobs", **params)

    async def stats(self) -> Dict[str, Any]:
        return await self.request("stats")

    async def cancel(
        self,
        job_id: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {}
        if job_id is not None:
            params["job_id"] = job_id
        if tenant is not None:
            params["tenant"] = tenant
        return await self.request("cancel", **params)

    async def chaos_kill(self) -> Dict[str, Any]:
        return await self.request("chaos-kill")

    async def shutdown(self) -> Dict[str, Any]:
        return await self.request("shutdown")
